"""Data Upload / Data Retrieval chaincodes (paper §III-B b).

The split mirrors the paper's two snippets: the upload contract records a
data entry's IPFS CID plus extracted metadata on-chain under the uploading
transaction's id (``ctx.stub.getTxID()`` in the paper); the retrieval
contract reads that record back so the client can fetch the raw bytes from
IPFS by CID and verify them against the on-chain hash.

On top of the snippets, the upload path maintains composite-key secondary
indexes (by source, by camera, by time bucket, by vehicle class) — the
"efficient querying mechanisms" contribution — and records the raw-data
SHA-256 so retrieval can prove integrity, the provenance property §III-B c
calls out.
"""

from __future__ import annotations

import json

from repro.errors import ChaincodeError
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.util.serialization import canonical_json
from repro.util.clock import isoformat

_DATA_PREFIX = "data:"
# Composite index object types.
IDX_SOURCE = "data~source"
IDX_CAMERA = "data~camera"
IDX_TIME = "data~time"
IDX_CLASS = "data~class"
IDX_VIOLATION = "data~violation"

TIME_BUCKET_S = 600  # ten-minute buckets for time-range queries


def time_bucket(timestamp: float) -> str:
    """Zero-padded bucket id so lexicographic order is chronological."""
    return f"{int(timestamp // TIME_BUCKET_S):012d}"


class DataUploadChaincode(Chaincode):
    name = "data_upload"

    @staticmethod
    def _key(entry_id: str) -> str:
        return _DATA_PREFIX + entry_id

    def add_data(self, stub: ChaincodeStub, cid: str, data_hash: str, metadata_json: str):
        """Record a validated upload: CID + metadata, keyed by tx id.

        ``data_hash`` is the SHA-256 of the raw bytes stored off-chain;
        verification at retrieval compares the fetched bytes against it.
        """
        if not cid:
            raise ChaincodeError("cid must be non-empty")
        if len(data_hash) != 64:
            raise ChaincodeError("data_hash must be a sha-256 hex digest")
        try:
            metadata = json.loads(metadata_json)
        except json.JSONDecodeError as exc:
            raise ChaincodeError(f"metadata is not valid JSON: {exc}") from exc
        if not isinstance(metadata, dict):
            raise ChaincodeError("metadata must be a JSON object")
        entry_id = stub.get_tx_id()
        key = self._key(entry_id)
        if stub.get_state(key) is not None:
            raise ChaincodeError(f"data entry {entry_id} already exists")
        record = {
            "entry_id": entry_id,
            "cid": cid,
            "data_hash": data_hash,
            "metadata": metadata,
            "source_id": metadata.get("source_id", stub.get_creator().name),
            "created_at": isoformat(stub.get_timestamp()),
            "uploader": stub.get_creator().name,
            "uploader_org": stub.get_creator().org,
        }
        stub.put_state(key, canonical_json(record))
        self._index(stub, entry_id, record)
        stub.set_event(
            "DataStored",
            {"entry_id": entry_id, "cid": cid, "source_id": record["source_id"]},
        )
        return {"entry_id": entry_id, "cid": cid}

    def _index(self, stub: ChaincodeStub, entry_id: str, record: dict) -> None:
        metadata = record["metadata"]
        marker = b"\x01"  # composite index entries carry no payload
        stub.put_state(
            stub.create_composite_key(IDX_SOURCE, [record["source_id"], entry_id]), marker
        )
        camera = metadata.get("camera_id")
        if camera:
            stub.put_state(
                stub.create_composite_key(IDX_CAMERA, [str(camera), entry_id]), marker
            )
        ts = metadata.get("timestamp")
        if isinstance(ts, (int, float)):
            stub.put_state(
                stub.create_composite_key(IDX_TIME, [time_bucket(ts), entry_id]), marker
            )
        for detection in metadata.get("detections", []):
            cls = detection.get("vehicle_class")
            if cls:
                key = stub.create_composite_key(IDX_CLASS, [str(cls), entry_id])
                stub.put_state(key, marker)
        for violation in metadata.get("violations", []):
            vtype = violation.get("violation_type")
            if vtype:
                key = stub.create_composite_key(IDX_VIOLATION, [str(vtype), entry_id])
                stub.put_state(key, marker)

    # -- reads shared with the retrieval contract -------------------------------

    def get_data(self, stub: ChaincodeStub, entry_id: str):
        raw = stub.get_state(self._key(entry_id))
        if raw is None:
            raise ChaincodeError(f"No metadata found for transaction ID {entry_id}")
        return json.loads(raw)


class DataRetrievalChaincode(Chaincode):
    """The paper's retrieval contract: metadata lookup and index scans.

    The raw-bytes fetch from IPFS happens off-chain in the client (the
    paper's ``ipfsClient.get(metadata.cid)`` line is the client library's
    job here); this contract serves the on-chain half — the metadata, the
    CID, and the integrity hash.
    """

    name = "data_retrieval"

    @staticmethod
    def _key(entry_id: str) -> str:
        return _DATA_PREFIX + entry_id

    def get_data(self, stub: ChaincodeStub, entry_id: str):
        raw = stub.get_state(self._key(entry_id))
        if raw is None:
            raise ChaincodeError(f"No metadata found for transaction ID {entry_id}")
        return json.loads(raw)

    def get_cid(self, stub: ChaincodeStub, entry_id: str):
        return self.get_data(stub, entry_id)["cid"]

    def _ids_from_index(self, stub: ChaincodeStub, object_type: str, attrs: list[str]):
        rows = stub.get_state_by_partial_composite_key(object_type, attrs)
        ids = []
        for key, _ in rows:
            _, parts = stub.split_composite_key(key)
            ids.append(parts[-1])
        return ids

    def _load_many(self, stub: ChaincodeStub, ids: list[str]):
        out = []
        for entry_id in ids:
            raw = stub.get_state(self._key(entry_id))
            if raw is not None:
                out.append(json.loads(raw))
        return out

    def list_by_source(self, stub: ChaincodeStub, source_id: str):
        return self._load_many(stub, self._ids_from_index(stub, IDX_SOURCE, [source_id]))

    def list_by_camera(self, stub: ChaincodeStub, camera_id: str):
        return self._load_many(stub, self._ids_from_index(stub, IDX_CAMERA, [camera_id]))

    def list_by_vehicle_class(self, stub: ChaincodeStub, vehicle_class: str):
        return self._load_many(stub, self._ids_from_index(stub, IDX_CLASS, [vehicle_class]))

    def list_by_violation(self, stub: ChaincodeStub, violation_type: str):
        return self._load_many(stub, self._ids_from_index(stub, IDX_VIOLATION, [violation_type]))

    def list_by_time_range(self, stub: ChaincodeStub, start_ts: str, end_ts: str):
        """Entries whose metadata timestamp falls in [start_ts, end_ts)."""
        start, end = float(start_ts), float(end_ts)
        if end < start:
            raise ChaincodeError("time range end before start")
        ids: list[str] = []
        bucket = int(start // TIME_BUCKET_S)
        last_bucket = int(end // TIME_BUCKET_S)
        while bucket <= last_bucket:
            ids.extend(self._ids_from_index(stub, IDX_TIME, [f"{bucket:012d}"]))
            bucket += 1
        records = self._load_many(stub, ids)
        return [
            r
            for r in records
            if isinstance(r["metadata"].get("timestamp"), (int, float))
            and start <= r["metadata"]["timestamp"] < end
        ]

    def list_all(self, stub: ChaincodeStub):
        """Full scan of data records (the planner's fallback access path)."""
        rows = stub.get_state_by_range(_DATA_PREFIX, _DATA_PREFIX + "\x7f")
        return [json.loads(v) for _, v in rows]

    def history(self, stub: ChaincodeStub, entry_id: str):
        """Write history of a data record (audit trail)."""
        return [
            {
                "tx_id": e.tx_id,
                "deleted": e.is_delete,
                "block": e.version.block,
            }
            for e in stub.get_history_for_key(self._key(entry_id))
        ]
