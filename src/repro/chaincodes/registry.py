"""User Registration chaincode (paper §III-B: "registers users by
validating and recording their credentials for audits and accountability").

Every data source — trusted (cameras, drones) or untrusted (mobiles, social
platforms) — must be registered before the Data Upload chaincode accepts
its submissions. Registration records the source's public key and declared
tier on-chain, so validators can verify submission signatures against a
tamper-evident credential store.
"""

from __future__ import annotations

import json

from repro.errors import ChaincodeError
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.util.serialization import canonical_json
from repro.util.clock import isoformat

_USER_PREFIX = "user:"
_VALID_TIERS = ("trusted", "untrusted")


class UserRegistrationChaincode(Chaincode):
    name = "user_registration"

    @staticmethod
    def _key(user_id: str) -> str:
        return _USER_PREFIX + user_id

    def register_user(
        self,
        stub: ChaincodeStub,
        user_id: str,
        org: str,
        tier: str,
        public_key_hex: str,
    ):
        """Record a source's credentials; duplicate ids are rejected."""
        if not user_id:
            raise ChaincodeError("user id must be non-empty")
        if tier not in _VALID_TIERS:
            raise ChaincodeError(f"tier must be one of {_VALID_TIERS}, got {tier!r}")
        if not public_key_hex or len(public_key_hex) != 64:
            raise ChaincodeError("public key must be 32 bytes hex")
        if stub.get_state(self._key(user_id)) is not None:
            raise ChaincodeError(f"user {user_id} already registered")
        record = {
            "user_id": user_id,
            "org": org,
            "tier": tier,
            "public_key": public_key_hex,
            "registered_at": isoformat(stub.get_timestamp()),
            "registered_by": stub.get_creator().name,
            "active": True,
        }
        stub.put_state(self._key(user_id), canonical_json(record))
        stub.set_event("UserRegistered", {"user_id": user_id, "tier": tier})
        return record

    def get_user(self, stub: ChaincodeStub, user_id: str):
        raw = stub.get_state(self._key(user_id))
        if raw is None:
            raise ChaincodeError(f"user {user_id} not found")
        return json.loads(raw)

    def user_exists(self, stub: ChaincodeStub, user_id: str):
        return stub.get_state(self._key(user_id)) is not None

    def deactivate_user(self, stub: ChaincodeStub, user_id: str):
        record = self.get_user(stub, user_id)
        record["active"] = False
        stub.put_state(self._key(user_id), canonical_json(record))
        stub.set_event("UserDeactivated", {"user_id": user_id})
        return record

    def is_active(self, stub: ChaincodeStub, user_id: str):
        raw = stub.get_state(self._key(user_id))
        if raw is None:
            return False
        return bool(json.loads(raw).get("active", False))

    def list_users(self, stub: ChaincodeStub, tier: str = ""):
        rows = stub.get_state_by_range(_USER_PREFIX, _USER_PREFIX + "\x7f")
        users = [json.loads(v) for _, v in rows]
        if tier:
            users = [u for u in users if u["tier"] == tier]
        return users
