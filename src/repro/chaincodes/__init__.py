"""The paper's chaincodes (§III-B): admin enrollment, user registration,
data upload/retrieval with secondary indexes, hash-chained provenance, and
on-chain trust scores."""

from repro.chaincodes.access import AccessControlChaincode
from repro.chaincodes.admin import AdminEnrollmentChaincode
from repro.chaincodes.data import (
    DataRetrievalChaincode,
    DataUploadChaincode,
    IDX_CAMERA,
    IDX_CLASS,
    IDX_SOURCE,
    IDX_TIME,
    TIME_BUCKET_S,
    time_bucket,
)
from repro.chaincodes.provenance import GENESIS_HASH, ProvenanceChaincode
from repro.chaincodes.registry import UserRegistrationChaincode
from repro.chaincodes.trust_cc import TrustScoreChaincode

__all__ = [
    "AccessControlChaincode",
    "AdminEnrollmentChaincode",
    "DataRetrievalChaincode",
    "DataUploadChaincode",
    "IDX_CAMERA",
    "IDX_CLASS",
    "IDX_SOURCE",
    "IDX_TIME",
    "TIME_BUCKET_S",
    "time_bucket",
    "GENESIS_HASH",
    "ProvenanceChaincode",
    "UserRegistrationChaincode",
    "TrustScoreChaincode",
]
