"""Content identifiers (CIDs), the addresses of the IPFS-like substrate.

Two versions, matching IPFS:

* **CIDv0** — bare base58btc multihash of a dag-pb node (``Qm...``). Only
  valid for sha2-256 + dag-pb, exactly as in IPFS.
* **CIDv1** — ``<version><content-codec><multihash>`` rendered in multibase
  (lowercase base32 with ``b`` prefix).

The paper stores "a unique cryptographic identifier (CID)" per data entry on
the chain; these objects are what the DataUpload chaincode records.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.crypto.hashing import SHA2_256
from repro.crypto.multihash import CODE_SHA2_256, Multihash
from repro.errors import EncodingError
from repro.util.encoding import b32decode, b32encode, b58decode, b58encode
from repro.util.varint import decode_varint, encode_varint

# Multicodec content-type codes (multiformats registry).
CODEC_RAW = 0x55
CODEC_DAG_PB = 0x70
CODEC_DAG_JSON = 0x0129

_CODEC_NAMES = {CODEC_RAW: "raw", CODEC_DAG_PB: "dag-pb", CODEC_DAG_JSON: "dag-json"}


@total_ordering
@dataclass(frozen=True)
class CID:
    """Immutable content identifier; hashable, ordered, round-trippable."""

    version: int
    codec: int
    multihash: Multihash

    def __post_init__(self) -> None:
        if self.version == 0:
            if self.codec != CODEC_DAG_PB or self.multihash.code != CODE_SHA2_256:
                raise EncodingError("CIDv0 requires dag-pb + sha2-256")
        elif self.version != 1:
            raise EncodingError(f"unsupported CID version {self.version}")
        if self.codec not in _CODEC_NAMES:
            raise EncodingError(f"unknown codec 0x{self.codec:x}")

    # -- construction -------------------------------------------------------

    @classmethod
    def for_data(
        cls, data: bytes, codec: int = CODEC_RAW, version: int = 1, algo: str = SHA2_256
    ) -> "CID":
        """CID addressing ``data`` directly (hash of the bytes)."""
        return cls(version=version, codec=codec, multihash=Multihash.of(data, algo))

    @classmethod
    def parse(cls, text: str) -> "CID":
        """Parse either a CIDv0 (``Qm...``) or multibase CIDv1 (``b...``)."""
        if text.startswith("Qm") and len(text) == 46:
            mh = Multihash.decode(b58decode(text))
            return cls(version=0, codec=CODEC_DAG_PB, multihash=mh)
        if text.startswith("b"):
            raw = b32decode(text[1:])
            version, pos = decode_varint(raw)
            if version != 1:
                raise EncodingError(f"unsupported CID version {version}")
            codec, pos = decode_varint(raw, pos)
            mh, end = Multihash.decode_prefix(raw, pos)
            if end != len(raw):
                raise EncodingError("trailing bytes after CID")
            return cls(version=1, codec=codec, multihash=mh)
        raise EncodingError(f"unrecognized CID string {text!r}")

    # -- rendering ----------------------------------------------------------

    def encode(self) -> str:
        """Canonical string form (what goes on-chain)."""
        if self.version == 0:
            return b58encode(self.multihash.encode())
        raw = encode_varint(1) + encode_varint(self.codec) + self.multihash.encode()
        return "b" + b32encode(raw)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.encode()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CID({self.encode()!r})"

    def __lt__(self, other: "CID") -> bool:
        return self.encode() < other.encode()

    # -- semantics ----------------------------------------------------------

    @property
    def codec_name(self) -> str:
        return _CODEC_NAMES[self.codec]

    def verifies(self, data: bytes) -> bool:
        """Does ``data`` hash to this CID's digest?"""
        return self.multihash.matches(data)

    def to_v1(self) -> "CID":
        """Upgrade a CIDv0 to the equivalent CIDv1 (same hash, same codec)."""
        if self.version == 1:
            return self
        return CID(version=1, codec=self.codec, multihash=self.multihash)
