"""Cryptographic substrate: hashing, keys/signatures, Merkle trees,
multihash, and content identifiers (CIDs)."""

from repro.crypto.cid import CID, CODEC_DAG_JSON, CODEC_DAG_PB, CODEC_RAW
from repro.crypto.hashing import SHA2_256, SHA2_512, digest, digest_many, hexdigest
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, SIGNATURE_SIZE
from repro.crypto.merkle import MerkleProof, MerkleTree, ProofStep, merkle_root
from repro.crypto.multihash import CODE_SHA2_256, CODE_SHA2_512, Multihash

__all__ = [
    "CID",
    "CODEC_DAG_JSON",
    "CODEC_DAG_PB",
    "CODEC_RAW",
    "SHA2_256",
    "SHA2_512",
    "digest",
    "digest_many",
    "hexdigest",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "SIGNATURE_SIZE",
    "MerkleProof",
    "MerkleTree",
    "ProofStep",
    "merkle_root",
    "CODE_SHA2_256",
    "CODE_SHA2_512",
    "Multihash",
]
