"""Keypairs and digital signatures for framework identities.

Hyperledger Fabric identities sign proposals and transactions with ECDSA
certificates issued by an organization CA. This reproduction substitutes a
dependency-free HMAC-based scheme with the same *interface properties* the
framework relies on:

* a keypair with a private signing key and a public verification key,
* signatures bound to both the message and the keypair,
* verification that fails for any other key or tampered message.

The scheme: the private key is 32 random bytes; the public key is
``SHA-256("repro-pub" || private)``. A signature over message ``m`` is
``HMAC-SHA256(private, m)`` accompanied by a *verifier tag*
``SHA-256(public || signature || m)``. Verification recomputes the tag from
the public key. Because only the holder of ``private`` can produce the HMAC
whose tag matches, a forger without the private key must invert SHA-256.

This is **not** publicly verifiable asymmetric crypto (verification here
checks internal consistency, and honest verifiers in this framework also keep
a registry of public keys — exactly what Fabric's MSP does with certificates).
It deliberately preserves the framework-visible behaviour: per-identity
unforgeable signatures with constant size and O(message) signing cost, so the
timing shape of the paper's signing/validation path is intact.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.errors import SignatureError
from repro.obs.prof import profiled

_PUB_DOMAIN = b"repro-pub-v1"
SIGNATURE_SIZE = 64  # 32-byte HMAC + 32-byte verifier tag


@dataclass(frozen=True)
class PublicKey:
    """Verification half of a keypair; safe to share and store on-chain."""

    key_bytes: bytes

    def verify(self, message: bytes, signature: bytes) -> None:
        """Raise :class:`SignatureError` unless ``signature`` is valid.

        A valid signature's verifier tag must equal
        ``SHA-256(public || mac || message)``.
        """
        with profiled("crypto.verify", n_bytes=len(message)):
            if len(signature) != SIGNATURE_SIZE:
                raise SignatureError(
                    f"signature must be {SIGNATURE_SIZE} bytes, got {len(signature)}"
                )
            mac, tag = signature[:32], signature[32:]
            expected = hashlib.sha256(self.key_bytes + mac + message).digest()
            if not hmac.compare_digest(tag, expected):
                raise SignatureError("signature verification failed")

    def is_valid(self, message: bytes, signature: bytes) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(message, signature)
        except SignatureError:
            return False
        return True

    def fingerprint(self) -> str:
        """Short stable identifier for logs and on-chain identity records."""
        return hashlib.sha256(self.key_bytes).hexdigest()[:16]

    def hex(self) -> str:
        return self.key_bytes.hex()

    @classmethod
    def from_hex(cls, text: str) -> "PublicKey":
        return cls(bytes.fromhex(text))


@dataclass(frozen=True)
class PrivateKey:
    """Signing half of a keypair; never leaves the owning identity."""

    key_bytes: bytes

    def public_key(self) -> PublicKey:
        return PublicKey(hashlib.sha256(_PUB_DOMAIN + self.key_bytes).digest())

    def sign(self, message: bytes) -> bytes:
        """Sign ``message``; returns a 64-byte signature."""
        with profiled("crypto.sign", n_bytes=len(message)):
            mac = hmac.new(self.key_bytes, message, hashlib.sha256).digest()
            tag = hashlib.sha256(self.public_key().key_bytes + mac + message).digest()
            return mac + tag


@dataclass(frozen=True)
class KeyPair:
    """Convenience bundle of a private key and its public key."""

    private: PrivateKey
    public: PublicKey

    @classmethod
    def generate(cls) -> "KeyPair":
        """Generate a fresh random keypair (cryptographic randomness)."""
        priv = PrivateKey(secrets.token_bytes(32))
        return cls(private=priv, public=priv.public_key())

    @classmethod
    def from_seed(cls, seed: bytes | str) -> "KeyPair":
        """Deterministic keypair for tests and reproducible experiments."""
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        priv = PrivateKey(hashlib.sha256(b"repro-key-seed" + seed).digest())
        return cls(private=priv, public=priv.public_key())

    def sign(self, message: bytes) -> bytes:
        return self.private.sign(message)
