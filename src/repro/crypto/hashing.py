"""Hash primitives used across the framework.

SHA-256 is the workhorse: it addresses IPFS blocks (via multihash), chains
ledger blocks, and anchors provenance records. Helpers here centralize digest
creation so the choice of function is a single point of configuration.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.obs.prof import profiled

SHA2_256 = "sha2-256"
SHA2_512 = "sha2-512"

_ALGOS = {
    SHA2_256: hashlib.sha256,
    SHA2_512: hashlib.sha512,
}

DIGEST_SIZES = {SHA2_256: 32, SHA2_512: 64}


def digest(data: bytes, algo: str = SHA2_256) -> bytes:
    """Hash ``data`` with the named algorithm and return the raw digest."""
    with profiled("crypto.hash", n_bytes=len(data)):
        try:
            return _ALGOS[algo](data).digest()
        except KeyError:
            raise ValueError(f"unsupported hash algorithm {algo!r}") from None


def hexdigest(data: bytes, algo: str = SHA2_256) -> str:
    """Hex form of :func:`digest`."""
    return digest(data, algo).hex()


def digest_many(parts: Iterable[bytes], algo: str = SHA2_256) -> bytes:
    """Hash the concatenation of ``parts`` without materializing it."""
    with profiled("crypto.hash") as pf:
        try:
            h = _ALGOS[algo]()
        except KeyError:
            raise ValueError(f"unsupported hash algorithm {algo!r}") from None
        for part in parts:
            h.update(part)
            pf.add_bytes(len(part))
        return h.digest()
