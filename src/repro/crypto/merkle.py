"""Binary Merkle trees with inclusion proofs.

Ledger blocks commit to their transaction set through a Merkle root, so a
light client holding one transaction and a short proof can check membership
against the block header alone. Leaves are domain-separated from interior
nodes (0x00 / 0x01 prefixes) to rule out second-preimage attacks that splice
an interior node in as a leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.hashing import digest
from repro.errors import MerkleProofError
from repro.obs.prof import profiled

_LEAF = b"\x00"
_NODE = b"\x01"


def _leaf_hash(data: bytes) -> bytes:
    return digest(_LEAF + data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return digest(_NODE + left + right)


@dataclass(frozen=True)
class ProofStep:
    """One sibling on the path from a leaf to the root."""

    sibling: bytes
    sibling_on_left: bool


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof: the leaf index plus the sibling path to the root."""

    leaf_index: int
    steps: tuple[ProofStep, ...]

    def verify(self, leaf_data: bytes, root: bytes) -> None:
        """Raise :class:`MerkleProofError` unless the proof links leaf→root."""
        with profiled("crypto.merkle", n_bytes=len(leaf_data)):
            node = _leaf_hash(leaf_data)
            for step in self.steps:
                if step.sibling_on_left:
                    node = _node_hash(step.sibling, node)
                else:
                    node = _node_hash(node, step.sibling)
            if node != root:
                raise MerkleProofError("Merkle proof does not reconstruct the root")

    def is_valid(self, leaf_data: bytes, root: bytes) -> bool:
        try:
            self.verify(leaf_data, root)
        except MerkleProofError:
            return False
        return True


class MerkleTree:
    """Merkle tree over a fixed sequence of byte-string leaves.

    An odd node at any level is promoted unpaired (Certificate-Transparency
    style) rather than duplicated, so the tree of *n* leaves never commits to
    phantom data.
    """

    def __init__(self, leaves: Sequence[bytes]) -> None:
        if not leaves:
            raise ValueError("Merkle tree requires at least one leaf")
        with profiled("crypto.merkle") as pf:
            self._leaves = [bytes(leaf) for leaf in leaves]
            pf.add_bytes(sum(len(leaf) for leaf in self._leaves))
            # _levels[0] is the leaf-hash level; the last level is [root].
            self._levels: list[list[bytes]] = [[_leaf_hash(l) for l in self._leaves]]
            while len(self._levels[-1]) > 1:
                prev = self._levels[-1]
                nxt = [
                    _node_hash(prev[i], prev[i + 1]) if i + 1 < len(prev) else prev[i]
                    for i in range(0, len(prev), 2)
                ]
                self._levels.append(nxt)

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def proof(self, index: int) -> MerkleProof:
        """Build the inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        steps: list[ProofStep] = []
        pos = index
        for level in self._levels[:-1]:
            if pos % 2 == 0:
                if pos + 1 < len(level):
                    steps.append(ProofStep(sibling=level[pos + 1], sibling_on_left=False))
                # Unpaired node is promoted: no step at this level.
            else:
                steps.append(ProofStep(sibling=level[pos - 1], sibling_on_left=True))
            pos //= 2
        return MerkleProof(leaf_index=index, steps=tuple(steps))


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Root of the Merkle tree over ``leaves``; empty input hashes to the
    digest of the empty string under leaf domain separation."""
    if not leaves:
        return _leaf_hash(b"")
    return MerkleTree(leaves).root
