"""Multihash: self-describing hash digests (<fn-code><length><digest>).

CIDs wrap digests in multihash so the hash function is recoverable from the
identifier itself. Codes follow the multiformats registry (0x12 = sha2-256,
0x13 = sha2-512).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import DIGEST_SIZES, SHA2_256, SHA2_512, digest
from repro.errors import EncodingError
from repro.util.varint import decode_varint, encode_varint

CODE_SHA2_256 = 0x12
CODE_SHA2_512 = 0x13

_ALGO_TO_CODE = {SHA2_256: CODE_SHA2_256, SHA2_512: CODE_SHA2_512}
_CODE_TO_ALGO = {code: algo for algo, code in _ALGO_TO_CODE.items()}


@dataclass(frozen=True)
class Multihash:
    """A digest tagged with the function that produced it."""

    code: int
    digest: bytes

    @property
    def algo(self) -> str:
        return _CODE_TO_ALGO[self.code]

    def encode(self) -> bytes:
        """Serialize to ``<varint code><varint size><digest>``."""
        return encode_varint(self.code) + encode_varint(len(self.digest)) + self.digest

    @classmethod
    def decode(cls, data: bytes) -> "Multihash":
        mh, end = cls.decode_prefix(data)
        if end != len(data):
            raise EncodingError("trailing bytes after multihash")
        return mh

    @classmethod
    def decode_prefix(cls, data: bytes, offset: int = 0) -> tuple["Multihash", int]:
        """Decode a multihash at ``offset``; returns (multihash, next_offset)."""
        code, pos = decode_varint(data, offset)
        if code not in _CODE_TO_ALGO:
            raise EncodingError(f"unknown multihash code 0x{code:x}")
        size, pos = decode_varint(data, pos)
        if size != DIGEST_SIZES[_CODE_TO_ALGO[code]]:
            raise EncodingError(
                f"digest size {size} does not match {_CODE_TO_ALGO[code]}"
            )
        if pos + size > len(data):
            raise EncodingError("truncated multihash digest")
        return cls(code=code, digest=data[pos : pos + size]), pos + size

    @classmethod
    def of(cls, data: bytes, algo: str = SHA2_256) -> "Multihash":
        """Hash ``data`` and wrap the digest."""
        return cls(code=_ALGO_TO_CODE[algo], digest=digest(data, algo))

    def matches(self, data: bytes) -> bool:
        """Does ``data`` hash to this digest under this function?"""
        return digest(data, self.algo) == self.digest
