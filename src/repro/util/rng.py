"""Deterministic randomness helpers.

Every stochastic component (dataset generator, detector noise, network
latency, Byzantine scheduling) derives its generator from an explicit seed so
runs are reproducible. :func:`derive_seed` folds a parent seed with string
labels, letting one experiment seed fan out to independent sub-streams
without correlated sequences.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(parent: int, *labels: str) -> int:
    """Derive a child seed from ``parent`` and a label path.

    Uses SHA-256 over the parent seed and labels, so child streams for
    different labels are statistically independent and stable across runs.
    """
    h = hashlib.sha256(str(int(parent)).encode())
    for label in labels:
        h.update(b"/")
        h.update(label.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


def rng_for(parent: int, *labels: str) -> np.random.Generator:
    """A NumPy generator seeded from ``derive_seed(parent, *labels)``."""
    return np.random.default_rng(derive_seed(parent, *labels))
