"""Shared low-level utilities: varints, base encodings, canonical JSON,
clocks, and deterministic RNG derivation."""

from repro.util.clock import Clock, MonotonicClock, SimClock, WallClock, isoformat
from repro.util.encoding import b32decode, b32encode, b58decode, b58encode
from repro.util.parallel import DEFAULT_IO_WORKERS, effective_workers, parallel_map
from repro.util.rng import derive_seed, rng_for
from repro.util.serialization import canonical_json, from_canonical_json
from repro.util.varint import decode_varint, encode_varint

__all__ = [
    "Clock",
    "MonotonicClock",
    "SimClock",
    "WallClock",
    "isoformat",
    "b32decode",
    "b32encode",
    "b58decode",
    "b58encode",
    "DEFAULT_IO_WORKERS",
    "effective_workers",
    "parallel_map",
    "derive_seed",
    "rng_for",
    "canonical_json",
    "from_canonical_json",
    "decode_varint",
    "encode_varint",
]
