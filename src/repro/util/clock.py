"""Clock abstraction: wall-clock for benchmarks, simulated for determinism.

Components that need "now" (block timestamps, trust decay, provenance records)
take a :class:`Clock` so tests and the discrete-event network simulator can
drive time deterministically, while benchmarks use the real monotonic clock.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Minimal clock interface used throughout the framework."""

    def now(self) -> float:
        """Current time in (possibly simulated) seconds."""
        ...


class WallClock:
    """Real time, anchored to the epoch for human-readable timestamps."""

    def now(self) -> float:
        return time.time()


class MonotonicClock:
    """Real monotonic time; preferred for measuring durations."""

    def now(self) -> float:
        return time.monotonic()


class SimClock:
    """Manually advanced clock used by the discrete-event simulator.

    Time never moves on its own; :meth:`advance_to` / :meth:`advance` move it
    forward. Moving backwards is a programming error and raises ``ValueError``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"cannot move SimClock backwards: {t} < {self._now}")
        self._now = float(t)

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot advance SimClock by a negative delta")
        self._now += float(dt)


def isoformat(ts: float) -> str:
    """Render an epoch timestamp as a UTC ISO-8601 string (second precision).

    Used for the human-readable ``createdAt`` fields the paper's chaincode
    snippets store (``new Date().toISOString()``).
    """
    # Fixed-width ".3f" of an IEEE double is deterministic in CPython; the
    # rendered fraction is identical on every replica given the same ts.
    frac = f"{ts % 1:.3f}"[1:]  # ".123"  # reprolint: disable=FLOW506
    return time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(ts)) + frac + "Z"
