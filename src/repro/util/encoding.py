"""Base encodings used by CIDs and identities: base58btc, base32, hex.

base58btc is the Bitcoin alphabet used by CIDv0 (``Qm...`` identifiers);
lowercase base32 (RFC 4648, no padding) is the default multibase for CIDv1
(``b...`` identifiers). Both are implemented from scratch — the substrate is
dependency-free by design.
"""

from __future__ import annotations

from repro.errors import EncodingError

B58_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_B58_INDEX = {c: i for i, c in enumerate(B58_ALPHABET)}

B32_ALPHABET = "abcdefghijklmnopqrstuvwxyz234567"
_B32_INDEX = {c: i for i, c in enumerate(B32_ALPHABET)}


def b58encode(data: bytes) -> str:
    """Encode bytes as base58btc (Bitcoin alphabet)."""
    # Leading zero bytes encode as leading '1' characters.
    n_zeros = len(data) - len(data.lstrip(b"\x00"))
    num = int.from_bytes(data, "big")
    chars: list[str] = []
    while num:
        num, rem = divmod(num, 58)
        chars.append(B58_ALPHABET[rem])
    return "1" * n_zeros + "".join(reversed(chars))


def b58decode(text: str) -> bytes:
    """Decode a base58btc string to bytes."""
    num = 0
    for ch in text:
        try:
            num = num * 58 + _B58_INDEX[ch]
        except KeyError:
            raise EncodingError(f"invalid base58 character {ch!r}") from None
    n_zeros = len(text) - len(text.lstrip("1"))
    body = num.to_bytes((num.bit_length() + 7) // 8, "big") if num else b""
    return b"\x00" * n_zeros + body


def b32encode(data: bytes) -> str:
    """Encode bytes as lowercase unpadded base32 (RFC 4648 alphabet)."""
    bits = 0
    acc = 0
    out: list[str] = []
    for byte in data:
        acc = (acc << 8) | byte
        bits += 8
        while bits >= 5:
            bits -= 5
            out.append(B32_ALPHABET[(acc >> bits) & 0x1F])
    if bits:
        out.append(B32_ALPHABET[(acc << (5 - bits)) & 0x1F])
    return "".join(out)


def b32decode(text: str) -> bytes:
    """Decode lowercase unpadded base32 to bytes."""
    acc = 0
    bits = 0
    out = bytearray()
    for ch in text:
        try:
            acc = (acc << 5) | _B32_INDEX[ch]
        except KeyError:
            raise EncodingError(f"invalid base32 character {ch!r}") from None
        bits += 5
        if bits >= 8:
            bits -= 8
            out.append((acc >> bits) & 0xFF)
    # Trailing bits must be zero padding, otherwise the input is malformed.
    if acc & ((1 << bits) - 1):
        raise EncodingError("non-zero padding bits in base32 input")
    return bytes(out)
