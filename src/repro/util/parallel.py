"""Thread-pooled fan-out for off-chain I/O.

The storage/retrieval hot paths move many independent payloads through
chunking, hashing, replication, and fetch; :func:`parallel_map` overlaps
those per-item pipelines on a thread pool instead of serializing them.

Two properties matter for the rest of the system:

* **Order and errors match the serial path.** Results come back in input
  order, and the first failing item's exception propagates. Futures that
  have not started yet are *cancelled* at that point — like the serial
  path, items after the failure are not executed needlessly; tasks already
  running on a worker thread finish (Python threads cannot be interrupted)
  and are awaited so no work leaks past the call.
* **Tracing context propagates.** Each task runs inside a copy of the
  caller's :mod:`contextvars` context, so spans opened in worker threads
  parent correctly under the caller's span instead of becoming orphan
  roots — the per-stage breakdown keeps summing to the wall time.

When the cost-center profiler is enabled, each pooled task additionally
records its submit→start delay under the ``queue.wait`` center (detailed
per ``queue`` name), so pool saturation shows up as a first-class profile
row instead of vanishing into callers' wall time.

Single-item and ``max_workers<=1`` calls run inline (no pool, no thread
hop), which keeps the common interactive path allocation-free.
"""

from __future__ import annotations

import contextvars
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

from repro.obs.prof import get_profiler, run_queued

T = TypeVar("T")
R = TypeVar("R")

# Bounded: these are I/O-shaped tasks in a simulation; a small pool gives
# the overlap without drowning the scheduler on many-core hosts.
DEFAULT_IO_WORKERS = min(8, (os.cpu_count() or 2))


def effective_workers(n_items: int, max_workers: int | None = None) -> int:
    """How many workers :func:`parallel_map` would actually use."""
    if n_items <= 1:
        return 1
    limit = DEFAULT_IO_WORKERS if max_workers is None else max_workers
    return max(1, min(limit, n_items))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: int | None = None,
    queue: str = "parallel",
) -> list[R]:
    """Apply ``fn`` to every item, overlapping calls on a thread pool.

    Equivalent to ``[fn(x) for x in items]`` in results, ordering, and
    error behaviour; ``max_workers=1`` (or a single item) forces the
    serial path. ``queue`` names this pool in queue-wait telemetry when
    the profiler is on.
    """
    items = list(items)
    workers = effective_workers(len(items), max_workers)
    if workers <= 1:
        return [fn(item) for item in items]
    profiler = get_profiler()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        if profiler is None:
            futures = [
                # A fresh context copy per task: concurrent tasks must not
                # share one Context (contextvars forbids concurrent run()).
                pool.submit(contextvars.copy_context().run, fn, item)
                for item in items
            ]
        else:
            clock = profiler.clock
            futures = [
                pool.submit(
                    contextvars.copy_context().run, run_queued, queue, clock(), fn, item
                )
                for item in items
            ]
        results, first_error = [], None
        for future in futures:
            if first_error is not None:
                # First failure seen: stop work that hasn't started. A
                # cancelled future never runs; one already on a worker
                # thread runs to completion and is awaited here so nothing
                # leaks past the call.
                if not future.cancel():
                    try:
                        future.result()
                    except BaseException:  # noqa: BLE001  # reprolint: disable=HYG202
                        pass  # first error wins; this one is deliberately dropped
                continue
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                first_error = exc
        if first_error is not None:
            raise first_error
        return results
