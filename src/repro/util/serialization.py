"""Canonical serialization for hashed and signed structures.

Everything the framework hashes or signs (transactions, blocks, metadata
records, provenance entries) is first rendered to *canonical JSON*: UTF-8,
sorted keys, no whitespace, and a restricted value domain (no floats with
NaN/Inf, no non-string keys). Canonicality matters because two honest nodes
must derive the identical byte string — and hence identical hash — from the
same logical record; Python's default ``json.dumps`` does not guarantee that.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.errors import EncodingError
from repro.obs.prof import profiled

_SCALARS = (str, int, bool, type(None))


def _check(value: Any, depth: int = 0) -> None:
    if depth > 64:
        raise EncodingError("canonical JSON nesting exceeds 64 levels")
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise EncodingError("NaN/Inf are not canonically serializable")
        return
    if isinstance(value, _SCALARS):
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _check(item, depth + 1)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise EncodingError(f"non-string dict key {key!r}")
            _check(item, depth + 1)
        return
    raise EncodingError(f"type {type(value).__name__} is not canonically serializable")


def canonical_json(value: Any) -> bytes:
    """Render ``value`` to canonical JSON bytes (sorted keys, compact)."""
    with profiled("serialize.canonical_json") as pf:
        _check(value)
        out = json.dumps(
            value, sort_keys=True, separators=(",", ":"), ensure_ascii=False
        ).encode("utf-8")
        pf.add_bytes(len(out))
        return out


def from_canonical_json(data: bytes) -> Any:
    """Parse canonical JSON bytes back into Python values."""
    with profiled("serialize.decode", n_bytes=len(data)):
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise EncodingError(f"invalid canonical JSON: {exc}") from exc
