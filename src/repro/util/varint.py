"""Unsigned LEB128 varints, as used by multihash/CID and block framing.

The wire format stores 7 bits per byte, least-significant group first; the
high bit of each byte is a continuation flag. This matches the `unsigned
varint <https://github.com/multiformats/unsigned-varint>`_ spec used by the
multiformats stack (multihash, multicodec, CID), which this reproduction's
IPFS-like substrate follows.
"""

from __future__ import annotations

from repro.errors import EncodingError

# The multiformats spec caps varints at 9 bytes (63 bits) for practicality.
MAX_VARINT_BYTES = 9


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned LEB128 varint."""
    if value < 0:
        raise EncodingError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            break
    if len(out) > MAX_VARINT_BYTES:
        raise EncodingError("varint exceeds 9-byte maximum")
    return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``. Raises :class:`EncodingError` on
    truncated or over-long input.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise EncodingError("truncated varint")
        if pos - offset >= MAX_VARINT_BYTES:
            raise EncodingError("varint exceeds 9-byte maximum")
        byte = data[pos]
        result |= (byte & 0x7F) << shift
        pos += 1
        if not byte & 0x80:
            return result, pos
        shift += 7
