"""Figure 4: metadata extraction time vs record size (scatter).

The paper observes extraction times of roughly 0.002–0.01 s clustered at
small record sizes (< 0.5 KB), mostly increasing with size but with
outliers — "the time taken is not strictly linear with file size". Our
extractor reproduces that: cost tracks detection count and JSON encoding,
which correlate with — but are not determined by — the byte size.
"""

import numpy as np

from repro.bench import emit, emit_json, fig4_extraction_scatter, format_table
from repro.vision import MetadataExtractor, SimulatedYolo, TrafficDataset


def test_fig4_scatter(benchmark):
    points = benchmark.pedantic(
        fig4_extraction_scatter, kwargs={"n_frames": 60}, rounds=1, iterations=1
    )
    sizes = np.array([p[0] for p in points], dtype=float)
    times = np.array([p[1] for p in points], dtype=float)

    # Bucket the scatter for the text rendering.
    edges = [0, 256, 512, 1024, 2048, 1 << 30]
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (sizes >= lo) & (sizes < hi)
        if not mask.any():
            continue
        label = f"{lo}-{hi if hi < 1 << 30 else '…'} B"
        rows.append([
            label, int(mask.sum()),
            f"{times[mask].mean() * 1e3:.4f}", f"{times[mask].min() * 1e3:.4f}",
            f"{times[mask].max() * 1e3:.4f}",
        ])
    text = format_table(
        "Figure 4: metadata extraction time by record size",
        ["size bucket", "n", "mean ms", "min ms", "max ms"],
        rows,
    )
    emit("fig4_extraction_time", text)
    emit_json(
        "fig4_extraction_time",
        {
            "record_bytes": [float(s) for s in sizes],
            "extraction_time_s": [float(t) for t in times],
        },
        meta={"n_frames": 60},
        seed=17,
    )

    # Shape assertions: small records dominate; correlation positive but
    # visibly imperfect (the paper's outliers).
    assert (sizes < 1024).mean() > 0.4, "records should cluster at small sizes"
    if sizes.std() > 0 and times.std() > 0:
        r = float(np.corrcoef(sizes, times)[0, 1])
        assert r > 0.0, "time should loosely grow with record size"
        assert r < 0.999, "…but must not be a strict function of it"


def test_fig4_single_extraction(benchmark):
    """Hot path timed by pytest-benchmark for the record in the cluster."""
    dataset = TrafficDataset(seed=17, frames_per_video=1, n_videos=1)
    frame = dataset.static_clip(0).frames[0]
    detections = SimulatedYolo(seed=17).detect(frame)
    extractor = MetadataExtractor()
    record = benchmark(lambda: extractor.extract(frame, detections))
    assert record.size_bytes() > 0
