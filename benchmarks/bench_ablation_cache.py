"""Ablation: metadata query caching on the read path.

The paper's retrieval story leans on reads being cheap ("no gas costs");
analyst dashboards re-issue the same queries continuously. This bench
prices the height-invalidated query cache: repeated metadata queries with
and without it, plus the invalidation cost when new blocks land.
"""

import time

from repro.bench import emit, format_table
from repro.core import Client, Framework, FrameworkConfig
from repro.trust import SourceTier

N_RECORDS = 40
N_REPEATS = 50
QUERY = "vehicle_class = 'car' ORDER BY metadata.timestamp"


def _populated_client():
    framework = Framework(FrameworkConfig(consensus="solo", max_batch_size=8))
    client = Client(
        framework, framework.register_source("cache-cam", tier=SourceTier.TRUSTED)
    )
    for i in range(N_RECORDS):
        framework.channel.invoke_async(
            client.identity, "data_upload", "add_data",
            ["bafyfake" + str(i), "0" * 64,
             '{"timestamp": %f, "detections": [{"vehicle_class": "car", "confidence": 0.9}]}' % float(i)],
        )
    framework.channel.flush()
    return client


def _repeat_query(client, enabled: bool) -> float:
    client.engine.cache_enabled = enabled
    client.engine._cache.clear()
    client.query(QUERY)  # warm (fills cache when enabled)
    start = time.perf_counter()
    for _ in range(N_REPEATS):
        rows = client.query(QUERY)
    elapsed = (time.perf_counter() - start) / N_REPEATS
    assert len(rows) == N_RECORDS
    return elapsed


def test_ablation_query_cache(benchmark):
    def run():
        client = _populated_client()
        uncached = _repeat_query(client, enabled=False)
        cached = _repeat_query(client, enabled=True)
        hits = client.engine.stats.cache_hits
        return uncached, cached, hits

    uncached, cached, hits = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["uncached (chaincode scan each time)", f"{uncached * 1e6:.1f}"],
        ["cached (height-validated)", f"{cached * 1e6:.1f}"],
        ["speedup", f"{uncached / cached:.1f}x"],
    ]
    text = format_table(
        f"Ablation: metadata query cache ({N_RECORDS} records, {N_REPEATS} repeats)",
        ["configuration", "us per query"],
        rows,
    )
    emit("ablation_cache", text)

    assert hits == N_REPEATS
    assert cached < uncached