"""Ablation: hybrid storage (the paper's core design) vs all-on-chain.

The paper stores raw data off-chain in IPFS with only CIDs and metadata
on-chain "to minimize storage costs while preserving data integrity". This
bench quantifies that choice: store the same payloads (a) hybrid and (b)
naively on-chain (payload embedded in the transaction), and compare
per-transaction time and the resulting ledger footprint each peer carries.
"""

import base64
import time

from repro.bench import emit, format_table, human_size
from repro.core import Client, Framework, FrameworkConfig
from repro.trust import SourceTier
from repro.workloads.filesizes import payload

SIZES = (16 << 10, 256 << 10, 1 << 20)
N_PER_SIZE = 3


def _ledger_bytes(framework) -> int:
    peer = next(iter(framework.channel.peers.values()))
    return sum(
        len(tx.envelope_bytes())
        for block in peer.ledger.blocks()
        for tx in block.transactions
    )


def _run_hybrid():
    framework = Framework(FrameworkConfig(consensus="bft"))
    client = Client(framework, framework.register_source("hyb-cam", tier=SourceTier.TRUSTED))
    times = {}
    for size in SIZES:
        start = time.perf_counter()
        for i in range(N_PER_SIZE):
            client.submit(payload(size, seed=13, label=f"hyb-{i}"),
                          {"timestamp": float(i), "detections": []})
        times[size] = (time.perf_counter() - start) / N_PER_SIZE
    return times, _ledger_bytes(framework)


def _run_onchain():
    framework = Framework(FrameworkConfig(consensus="bft"))
    admin = framework.admin
    times = {}
    import json

    for size in SIZES:
        start = time.perf_counter()
        for i in range(N_PER_SIZE):
            blob = base64.b64encode(payload(size, seed=14, label=f"onc-{i}")).decode()
            # Naive design: the payload itself rides in the metadata record.
            framework.channel.invoke(
                admin, "data_upload", "add_data",
                ["inline", "0" * 64, json.dumps({"timestamp": float(i), "blob": blob})],
            )
        times[size] = (time.perf_counter() - start) / N_PER_SIZE
    return times, _ledger_bytes(framework)


def test_ablation_hybrid_vs_onchain(benchmark):
    def run():
        return _run_hybrid(), _run_onchain()

    (hybrid_times, hybrid_ledger), (onchain_times, onchain_ledger) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        [human_size(size), f"{hybrid_times[size] * 1e3:.2f}", f"{onchain_times[size] * 1e3:.2f}",
         f"{onchain_times[size] / hybrid_times[size]:.1f}x"]
        for size in SIZES
    ]
    rows.append(["ledger bytes/peer", human_size(hybrid_ledger), human_size(onchain_ledger),
                 f"{onchain_ledger / hybrid_ledger:.0f}x"])
    text = format_table(
        "Ablation: hybrid (IPFS + CID on-chain) vs all-on-chain (ms/tx)",
        ["size", "hybrid", "all-on-chain", "on-chain cost"],
        rows,
    )
    emit("ablation_hybrid", text)

    # The design claim: on-chain bloat explodes without the hybrid split.
    assert onchain_ledger > 20 * hybrid_ledger
    assert onchain_times[SIZES[-1]] > hybrid_times[SIZES[-1]]
