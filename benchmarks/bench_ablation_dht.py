"""Ablation: DHT routing cost vs swarm size.

The paper's deployment uses two IPFS nodes; a city-scale deployment would
run hundreds. Kademlia's promise is O(log n) lookup cost — this bench
measures provider-lookup hops across swarm sizes and checks the growth is
sublinear, the property that makes the decentralized retrieval path scale.
"""

import numpy as np

from repro.bench import emit, format_table
from repro.crypto.cid import CID
from repro.ipfs.dht import DhtRegistry

SWARM_SIZES = (8, 16, 32, 64, 128)
N_LOOKUPS = 12


def _build(n):
    registry = DhtRegistry(replication=8)
    bootstrap = None
    for i in range(n):
        registry.join(f"peer-{i}", bootstrap=bootstrap)
        if bootstrap is None:
            bootstrap = "peer-0"
    return registry


def _avg_lookup_hops(registry, n_peers):
    hops = []
    for i in range(N_LOOKUPS):
        cid = CID.for_data(f"content-{i}".encode())
        provider = f"peer-{(i * 7) % n_peers}"
        registry.provide(provider, cid)
        requester = f"peer-{(i * 13 + 1) % n_peers}"
        before = registry.lookup_hops
        found = registry.find_providers(requester, cid)
        hops.append(registry.lookup_hops - before)
        assert provider in found
    return float(np.mean(hops))


def test_ablation_dht_scaling(benchmark):
    def run():
        return {n: _avg_lookup_hops(_build(n), n) for n in SWARM_SIZES}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n, f"{hops:.1f}", f"{hops / n:.2f}"]
        for n, hops in results.items()
    ]
    text = format_table(
        "Ablation: DHT provider-lookup cost vs swarm size",
        ["peers", "avg hops per lookup", "hops / n"],
        rows,
    )
    emit("ablation_dht", text)

    # Sublinear growth: 16x more peers must cost far less than 16x hops.
    assert results[128] < 6 * results[8]
    # And the fraction of the swarm touched shrinks as the swarm grows.
    assert results[128] / 128 < results[8] / 8
