"""Ablation: ordering batch size vs ingestion throughput and consensus cost.

The paper's evaluation submits one transaction at a time; production
ingestion (a camera uploading footage) batches. This bench sweeps the
orderer's ``max_batch_size`` over a fixed frame workload and reports tx/s,
blocks cut, PBFT instances, and — the amortization claim — consensus
messages per committed transaction. One PBFT instance runs per cut block,
so msgs/tx must fall roughly with the batch factor; the regression gate
asserts batch 16 spends at most half the messages per transaction of
batch 1.

Runnable standalone for CI (``python benchmarks/bench_ablation_batching.py
--quick``): executes the sweep once without pytest-benchmark and enforces
the same gates, exiting non-zero on regression.
"""

from repro.bench import emit, emit_json, format_table
from repro.core import BatchIngestor, Framework, FrameworkConfig
from repro.trust import SourceTier
from repro.workloads.traffic import IngestItem

BATCH_SIZES = (1, 4, 16, 64)
N_ITEMS = 64
QUICK_BATCH_SIZES = (1, 16)
QUICK_N_ITEMS = 16


def make_items(n_items=N_ITEMS):
    return [
        IngestItem(
            source_id="batch-cam",
            payload=bytes([i % 256]) * 4096,
            metadata={"timestamp": float(i), "detections": []},
            observation=None,
        )
        for i in range(n_items)
    ]


def _run(batch_size: int, n_items: int = N_ITEMS):
    framework = Framework(
        FrameworkConfig(consensus="bft", max_batch_size=batch_size)
    )
    ingestor = BatchIngestor(framework, record_provenance=False)
    ingestor.register(framework.register_source("batch-cam", tier=SourceTier.TRUSTED))
    orderer = framework.channel.orderer
    msgs_before = orderer.consensus_messages
    txs_before = orderer.txs_ordered
    instances_before = orderer.batches_ordered
    report = ingestor.ingest(make_items(n_items))
    assert report.committed == n_items
    msgs = orderer.consensus_messages - msgs_before
    txs = orderer.txs_ordered - txs_before
    return {
        "report": report,
        "instances": orderer.batches_ordered - instances_before,
        "msgs_per_tx": msgs / txs,
    }


def _sweep(batch_sizes=BATCH_SIZES, n_items=N_ITEMS):
    return {b: _run(b, n_items) for b in batch_sizes}


def _check_gates(results, n_items):
    largest = max(results)
    # Deterministic claims: consensus rounds amortize — one PBFT instance
    # per cut block, one block per full batch.
    assert results[largest]["instances"] == -(-n_items // largest)
    assert results[1]["report"].blocks == n_items
    # Regression gate (CI): messages per committed tx at batch 16 must be
    # at most half of batch 1 — the whole point of batching consensus.
    assert results[16]["msgs_per_tx"] <= 0.5 * results[1]["msgs_per_tx"], (
        f"consensus amortization regressed: batch-16 spends "
        f"{results[16]['msgs_per_tx']:.1f} msgs/tx vs "
        f"{results[1]['msgs_per_tx']:.1f} at batch 1"
    )


def _emit(results, n_items, name="ablation_batching"):
    rows = [
        [
            b,
            f"{r['report'].tx_per_s:.0f}",
            r["report"].blocks,
            r["instances"],
            f"{r['msgs_per_tx']:.1f}",
            f"{r['report'].elapsed_s * 1e3 / n_items:.2f}",
        ]
        for b, r in results.items()
    ]
    text = format_table(
        f"Ablation: orderer batch size ({n_items} frames, BFT n=4)",
        ["batch size", "tx/s", "blocks cut", "pbft instances", "msgs/tx", "ms per item"],
        rows,
    )
    emit(name, text)
    emit_json(
        name,
        {
            "tx_per_s": [r["report"].tx_per_s for r in results.values()],
            "msgs_per_tx": [r["msgs_per_tx"] for r in results.values()],
            "pbft_instances": [float(r["instances"]) for r in results.values()],
        },
        meta={"batch_sizes": list(results), "n_items": n_items},
        seed=0,
    )


def _profile_quick():
    """Run the quick sweep under the cost-center profiler and emit the
    ``prof_batching_quick`` envelope the CI prof-gate diffs.

    ``<center>_calls`` series are seed-deterministic (the workload is
    fixed), so they gate EXACT; ``<center>_excl_s`` series gate at the
    wall-time tolerance. The profiler fingerprint (call counts only)
    rides in ``meta`` so two runs of this gate are comparable at a
    glance.
    """
    from repro import obs

    registry = obs.MetricsRegistry()
    obs.set_registry(registry)
    profiler = obs.enable_profiler(registry=registry)
    obs.enable(registry=registry)
    try:
        results = _sweep(QUICK_BATCH_SIZES, QUICK_N_ITEMS)
        _check_gates(results, QUICK_N_ITEMS)
        report = profiler.report()
        assert report.centers, "profiled sweep recorded no cost centers"
        emit_json(
            "prof_batching_quick",
            report.series(),
            meta={
                "batch_sizes": list(QUICK_BATCH_SIZES),
                "n_items": QUICK_N_ITEMS,
                "fingerprint": report.fingerprint,
            },
            seed=0,
        )
        print(f"profile fingerprint: {report.fingerprint}")
        print(f"cost centers       : {len(report.centers)} (node, center) rows")
    finally:
        obs.disable()
        obs.disable_profiler()


def test_ablation_batch_size(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    _emit(results, N_ITEMS)
    _check_gates(results, N_ITEMS)
    # Timing claim with noise headroom: batching never degrades throughput.
    assert results[16]["report"].tx_per_s > 0.9 * results[1]["report"].tx_per_s


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep (batch 1 vs 16 over 16 items) for the CI gate",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the quick sweep under the cost-center profiler and emit "
             "the prof_batching_quick envelope (CI prof-gate)",
    )
    args = parser.parse_args(argv)
    if args.profile:
        _profile_quick()
        return
    if args.quick:
        batch_sizes, n_items = QUICK_BATCH_SIZES, QUICK_N_ITEMS
    else:
        batch_sizes, n_items = BATCH_SIZES, N_ITEMS
    results = _sweep(batch_sizes, n_items)
    _emit(results, n_items, name="ablation_batching_quick" if args.quick else "ablation_batching")
    _check_gates(results, n_items)
    print(
        f"gate OK: msgs/tx {results[16]['msgs_per_tx']:.1f} (batch 16) "
        f"<= 0.5 x {results[1]['msgs_per_tx']:.1f} (batch 1)"
    )


if __name__ == "__main__":
    main()
