"""Ablation: ordering batch size vs ingestion throughput.

The paper's evaluation submits one transaction at a time; production
ingestion (a camera uploading footage) batches. This bench sweeps the
orderer's ``max_batch_size`` over a fixed frame workload and reports tx/s
and blocks cut — consensus rounds amortize across a batch, so throughput
should rise and then flatten once per-item work (hashing, endorsement)
dominates.
"""

from repro.bench import emit, format_table
from repro.core import BatchIngestor, Framework, FrameworkConfig
from repro.trust import SourceTier
from repro.workloads.traffic import IngestItem

BATCH_SIZES = (1, 4, 16, 64)
N_ITEMS = 64


def make_items():
    return [
        IngestItem(
            source_id="batch-cam",
            payload=bytes([i % 256]) * 4096,
            metadata={"timestamp": float(i), "detections": []},
            observation=None,
        )
        for i in range(N_ITEMS)
    ]


def _run(batch_size: int):
    framework = Framework(
        FrameworkConfig(consensus="bft", max_batch_size=batch_size)
    )
    ingestor = BatchIngestor(framework, record_provenance=False)
    ingestor.register(framework.register_source("batch-cam", tier=SourceTier.TRUSTED))
    report = ingestor.ingest(make_items())
    assert report.committed == N_ITEMS
    return report


def test_ablation_batch_size(benchmark):
    def run():
        return {b: _run(b) for b in BATCH_SIZES}

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [b, f"{r.tx_per_s:.0f}", r.blocks, f"{r.elapsed_s * 1e3 / N_ITEMS:.2f}"]
        for b, r in reports.items()
    ]
    text = format_table(
        f"Ablation: orderer batch size ({N_ITEMS} frames, BFT n=4)",
        ["batch size", "tx/s", "blocks cut", "ms per item"],
        rows,
    )
    emit("ablation_batching", text)

    # Deterministic claim: consensus rounds amortize (one block per batch).
    assert reports[64].blocks == 1 and reports[1].blocks == N_ITEMS
    # Timing claim with noise headroom: batching never degrades throughput.
    assert reports[16].tx_per_s > 0.9 * reports[1].tx_per_s
