"""Figure 5: storage time in IPFS across file sizes, with and without
blockchain overheads.

Paper: "Results show a nearly linear correlation between file size and
storage time in both cases, demonstrating that blockchain integration adds
minimal overhead." The sweep stores each size to the IPFS cluster alone,
then through the full path (IPFS + metadata transaction through BFT
ordering and commit), and checks both claims: linearity of the IPFS curve
and a near-constant blockchain increment.
"""

import numpy as np

from repro.bench import emit, emit_json, fig5_storage_times, format_table, human_size
from repro.bench.figures import _storage_framework
from repro.core import Client
from repro.trust import SourceTier
from repro.workloads.filesizes import payload

SIZES = (1 << 10, 8 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20)


def test_fig5_sweep(benchmark):
    timings = benchmark.pedantic(
        fig5_storage_times, kwargs={"sizes": SIZES, "repeats": 3}, rounds=1, iterations=1
    )
    rows = [
        [
            human_size(t.size),
            f"{t.ipfs_only_s * 1e3:.3f}",
            f"{t.with_blockchain_s * 1e3:.3f}",
            f"{t.overhead_s * 1e3:.3f}",
        ]
        for t in timings
    ]
    text = format_table(
        "Figure 5: storage time vs file size (ms)",
        ["size", "IPFS only", "IPFS + blockchain", "blockchain overhead"],
        rows,
    )
    emit("fig5_storage_time", text)
    emit_json(
        "fig5_storage_time",
        {
            "ipfs_only_s": [t.ipfs_only_s for t in timings],
            "with_blockchain_s": [t.with_blockchain_s for t in timings],
            "overhead_s": [t.overhead_s for t in timings],
        },
        meta={"sizes_bytes": list(SIZES), "repeats": 3},
        seed=0,
    )

    sizes = np.array([t.size for t in timings], dtype=float)
    ipfs = np.array([t.ipfs_only_s for t in timings])
    overhead = np.array([t.overhead_s for t in timings])

    # Near-linear IPFS scaling: strong size/time correlation on the sweep.
    r = float(np.corrcoef(sizes, ipfs)[0, 1])
    assert r > 0.9, f"IPFS storage should scale ~linearly with size (r={r:.3f})"
    # Minimal overhead: the blockchain increment must not grow with size —
    # compare its spread to the total large-file cost.
    large_total = timings[-1].with_blockchain_s
    assert np.median(overhead) < large_total, "overhead should not dominate large files"
    # Overhead at the largest size is a small fraction of total time there.
    assert timings[-1].overhead_s < 0.75 * timings[-1].with_blockchain_s


def test_fig5_store_1mib_ipfs_only(benchmark):
    framework = _storage_framework()
    data = payload(1 << 20, seed=3, label="bench-hot")
    benchmark(lambda: framework.ipfs.add(data))


def test_fig5_store_1mib_with_blockchain(benchmark):
    framework = _storage_framework()
    client = Client(framework, framework.register_source("hot-cam", tier=SourceTier.TRUSTED))
    data = payload(1 << 20, seed=4, label="bench-hot-chain")
    counter = iter(range(10_000_000))

    def run():
        return client.submit(data, {"timestamp": float(next(counter)), "detections": []})

    receipt = benchmark(run)
    assert receipt.ok
