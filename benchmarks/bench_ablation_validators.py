"""Ablation: validator-count scaling (the paper's future-work question
"assessing scalability … under various blockchain configurations").

Sweeps the BFT validator count and reports per-transaction latency and
consensus message volume. PBFT's all-to-all phases are O(n²) in messages,
so latency should grow smoothly — the framework degrades gracefully rather
than falling over.
"""

import time

from repro.bench import emit, format_table
from repro.core import Client, Framework, FrameworkConfig
from repro.trust import SourceTier
from repro.workloads.filesizes import payload

VALIDATOR_COUNTS = (4, 7, 10, 13)
N_TXS = 10
DATA = payload(8 << 10, seed=10)


def _run_config(n_validators: int):
    framework = Framework(FrameworkConfig(consensus="bft", n_validators=n_validators))
    client = Client(framework, framework.register_source("scale-cam", tier=SourceTier.TRUSTED))
    orderer = framework.channel.orderer
    msgs_before = orderer.consensus_messages
    start = time.perf_counter()
    for i in range(N_TXS):
        client.submit(DATA, {"timestamp": float(i), "detections": []})
    elapsed = (time.perf_counter() - start) / N_TXS
    # Client.submit issues several supporting txs (provenance etc.); count
    # messages per ordered transaction for a fair per-tx figure.
    ordered = orderer._cutter.txs_ordered
    msgs = (orderer.consensus_messages - msgs_before) / max(1, ordered)
    return elapsed, msgs


def test_ablation_validator_scaling(benchmark):
    def run():
        return [( n, *_run_config(n)) for n in VALIDATOR_COUNTS]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n, (n - 1) // 3, f"{ms * 1e3:.3f}", f"{msgs:.1f}"]
        for n, ms, msgs in results
    ]
    text = format_table(
        "Ablation: BFT validator count scaling",
        ["validators", "f tolerated", "ms per store-path tx", "consensus msgs/tx"],
        rows,
    )
    emit("ablation_validators", text)

    msgs = [m for _, _, m in results]
    # O(n^2) message growth: 13 validators >> 4 validators.
    assert msgs[-1] > 4 * msgs[0]
    # Still functional at every size (implicit: all submits committed).
