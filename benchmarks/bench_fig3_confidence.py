"""Figure 3: detection confidence, static cameras vs drone capture.

The paper: "static cameras yielded higher and more stable confidence
scores due to consistent capture conditions, while drone data showed
greater variability from motion blur, altitude changes, and environmental
factors." This bench regenerates both series over the synthetic corpus and
asserts that shape.
"""

import numpy as np

from repro.bench import emit, fig3_confidence, format_table
from repro.vision import SimulatedYolo, TrafficDataset


def test_fig3_confidence_series(benchmark):
    series = benchmark.pedantic(
        fig3_confidence,
        kwargs={"n_videos": 12, "frames_per_video": 4, "include_night": True},
        rounds=1,
        iterations=1,
    )
    static, drone = series["static"], series["drone"]

    rows = []
    for key in ("static", "drone", "static-night", "drone-night"):
        s = series[key]
        if not s.confidences:
            rows.append([s.kind, 0, "-", "-", "-", "-"])
            continue
        conf = np.array(s.confidences)
        rows.append([
            s.kind, len(conf), f"{s.mean:.3f}", f"{s.std:.3f}",
            f"{np.percentile(conf, 10):.3f}", f"{np.percentile(conf, 90):.3f}",
        ])
    text = format_table(
        "Figure 3: confidence scores, static vs drone (day + night)",
        ["source", "n", "mean", "std", "p10", "p90"],
        rows,
    )
    emit("fig3_confidence", text)

    # The paper's qualitative result must hold.
    assert static.mean > drone.mean, "static should out-score drone capture"
    assert static.std < drone.std, "drone spread should exceed static spread"
    assert len(static.confidences) > 50 and len(drone.confidences) > 20
    # Environmental factor: night degrades both sources.
    assert series["static-night"].mean < static.mean
    if series["drone-night"].confidences:
        assert series["drone-night"].mean < static.mean


def test_fig3_detection_throughput(benchmark):
    """Hot path: detector over one drone frame (the expensive case)."""
    dataset = TrafficDataset(seed=13, frames_per_video=1, n_videos=1)
    frame = dataset.drone_clip(0).frames[0]
    detector = SimulatedYolo(seed=13)
    benchmark(lambda: detector.detect(frame))
