"""Ablation: trust-scoring overhead on the validation path.

The paper argues its trust measures (historical reliability +
cross-validation) are "practical and efficient … with lower computational
costs than machine learning-based methods". This bench measures the store
path with trust bookkeeping (untrusted source: scoring + on-chain score
update) against the trusted-tier fast path, and microbenchmarks the trust
engine itself.
"""

import time

from repro.bench import emit, format_table
from repro.core import Client, Framework, FrameworkConfig
from repro.trust import SourceTier, TrustEngine
from repro.trust.crossval import Observation
from repro.workloads.filesizes import payload

N_TXS = 15
DATA = payload(32 << 10, seed=15)
META = {"timestamp": 1.0, "detections": []}


def _per_tx(framework, client):
    start = time.perf_counter()
    for i in range(N_TXS):
        client.submit(DATA, dict(META, timestamp=float(i)))
    return (time.perf_counter() - start) / N_TXS


def test_ablation_trust_overhead(benchmark):
    def run():
        f1 = Framework(FrameworkConfig(consensus="bft"))
        trusted = _per_tx(f1, Client(f1, f1.register_source("t-cam", tier=SourceTier.TRUSTED)))
        f2 = Framework(FrameworkConfig(consensus="bft"))
        untrusted = _per_tx(f2, Client(f2, f2.register_source("u-mob")))

        # Microbench: pure trust-engine update rate.
        engine = TrustEngine()
        engine.register_source("cam", SourceTier.TRUSTED)
        engine.register_source("mob")
        for i in range(200):
            engine.observe_trusted(
                Observation("cam", lat=12.9, lon=77.6, timestamp=float(i), counts={"car": 3})
            )
        obs = Observation("mob", lat=12.9, lon=77.6, timestamp=100.0, counts={"car": 3})
        start = time.perf_counter()
        n_updates = 2000
        for _ in range(n_updates):
            engine.record_validation("mob", True, 4, 0, observation=obs)
        engine_rate = n_updates / (time.perf_counter() - start)
        return trusted, untrusted, engine_rate

    trusted, untrusted, engine_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["trusted tier (no scoring)", f"{trusted * 1e3:.2f}"],
        ["untrusted (score + on-chain update)", f"{untrusted * 1e3:.2f}"],
        ["overhead", f"{(untrusted - trusted) * 1e3:.2f}"],
        ["trust-engine updates/s (incl. cross-val over 200 records)", f"{engine_rate:,.0f}"],
    ]
    text = format_table(
        "Ablation: trust scoring cost on the store path (ms/tx)",
        ["configuration", "value"],
        rows,
    )
    emit("ablation_trust", text)

    # The paper's efficiency claim: scoring itself is cheap (the on-chain
    # score write dominates, and even that stays within ~3x of the fast path).
    assert engine_rate > 2_000
    assert untrusted < 5 * trusted
