"""Index-query benchmark: sublinear retrieval vs full-scan, with parity.

The tentpole acceptance bar for the authenticated secondary index
(:mod:`repro.index`): equality queries answered through the index must stay
sublinear in ledger height while the chaincode full scan grows linearly,
and the two routes must return byte-identical answers.

Two tiers:

* **Synthetic scaling** — world states of growing height (up to 10^5
  records in the full run) with the camera population growing in
  proportion, so one camera's posting stays a fixed ~100 records. The
  ``indexed_rows_examined`` series is EXACT and must stay flat while
  ``scan_rows_examined`` is EXACT and equals the record count — the
  sublinearity evidence is in deterministic counts, with wall-clock
  series (TIMING) alongside.
* **Fabric parity** — a real deployment: every query shape runs through
  both the index route and the chaincode scan route and the answers must
  be byte-identical; verified answers' Merkle membership proofs must
  check out against the epoch root. Both counts are EXACT.

Runnable standalone for CI (``python benchmarks/bench_index_query.py
--quick``): smaller sizes, same gates, emits ``index_query_quick``.
"""

import time

from repro.bench import emit, emit_json, format_table
from repro.fabric.worldstate import Version, WorldState
from repro.index import PeerIndex, verify_answer_records
from repro.util.serialization import canonical_json

FULL_SIZES = (2_000, 20_000, 100_000)
QUICK_SIZES = (1_000, 8_000)
RECORDS_PER_CAMERA = 100
TXS_PER_BLOCK = 16
CLASSES = ("car", "truck", "bus", "motorcycle")


# -- tier 1: synthetic scaling -------------------------------------------------


def _build_world(n: int) -> tuple[WorldState, int]:
    """A committed world state of ``n`` data records, ``n / 100`` cameras."""
    world = WorldState()
    cameras = max(4, n // RECORDS_PER_CAMERA)
    for i in range(n):
        cam = f"cam-{i % cameras:05d}"
        entry_id = f"e{i:07d}"
        record = {
            "entry_id": entry_id,
            "cid": f"bafy-{i:07d}",
            "data_hash": "0" * 64,
            "metadata": {
                "camera_id": cam,
                "timestamp": float(i),
                "detections": [{"vehicle_class": CLASSES[i % len(CLASSES)]}],
            },
            "source_id": cam,
            "uploader": cam,
            "uploader_org": "org1",
        }
        world.apply_write(
            f"data:{entry_id}",
            canonical_json(record),
            Version(block=i // TXS_PER_BLOCK + 1, tx=i % TXS_PER_BLOCK),
            tx_id=f"tx-{i}",
            timestamp=0.0,
        )
    height = (n - 1) // TXS_PER_BLOCK + 2
    return world, height


def _scan(world: WorldState, camera: str) -> list[dict]:
    import json

    out = []
    for _, raw in world.range("data:", "data:\x7f"):
        record = json.loads(raw)
        if record["metadata"]["camera_id"] == camera:
            out.append(record)
    return out


def _indexed(world: WorldState, index: PeerIndex, camera: str) -> list[dict]:
    import json

    return [
        json.loads(world.get(f"data:{eid}"))
        for eid in index.lookup("camera", camera)
    ]


def _scaling_round(n: int) -> dict:
    world, height = _build_world(n)
    index = PeerIndex.from_world(world, height)
    # The probe camera sits mid-population so its posting is full-sized.
    cameras = max(4, n // RECORDS_PER_CAMERA)
    camera = f"cam-{cameras // 2:05d}"

    t0 = time.perf_counter()
    via_index = _indexed(world, index, camera)
    indexed_ms = (time.perf_counter() - t0) * 1e3
    t0 = time.perf_counter()
    via_scan = _scan(world, camera)
    scan_ms = (time.perf_counter() - t0) * 1e3

    assert canonical_json(sorted(via_index, key=lambda r: r["entry_id"])) == (
        canonical_json(sorted(via_scan, key=lambda r: r["entry_id"]))
    ), f"index answer diverged from scan at n={n}"
    proof = index.prove("camera", camera)
    verified = verify_answer_records(via_index, (proof,), index.root())
    assert verified == len(via_index)
    return {
        "n": n,
        "indexed_rows_examined": float(len(via_index)),
        "scan_rows_examined": float(n),
        "indexed_ms": indexed_ms,
        "scan_ms": scan_ms,
        "proof_verified_records": float(verified),
    }


# -- tier 2: fabric parity -----------------------------------------------------

_PARITY_QUERIES = (
    "source_id = 'par-cam-1'",
    "vehicle_class = 'truck'",
    "metadata.timestamp >= 0 AND metadata.timestamp < 1800",
    "vehicle_class = 'car' AND metadata.timestamp >= 600",
    "color = 'red'",  # no index route: exercises the fallback
)


def _parity_round() -> dict:
    from repro.core import Framework, FrameworkConfig
    from repro.query import QueryEngine
    from repro.trust import SourceTier

    framework = Framework(FrameworkConfig(consensus="solo"))
    identities = {}
    for cam in ("par-cam-1", "par-cam-2"):
        identities[cam] = framework.register_source(cam, tier=SourceTier.TRUSTED)
    for i in range(12):
        cam = f"par-cam-{i % 2 + 1}"
        meta = {
            "source_id": cam,
            "camera_id": cam,
            "timestamp": float(i * 200),
            "detections": [{"vehicle_class": CLASSES[i % len(CLASSES)]}],
        }
        framework.channel.invoke(
            identities[cam],
            "data_upload",
            "add_data",
            [f"bafy-par-{i}", "0" * 64, canonical_json(meta).decode()],
        )
    engine = QueryEngine(
        channel=framework.channel,
        cluster=framework.ipfs,
        identity=identities["par-cam-1"],
        cache_enabled=False,
    )
    parity_queries = 0
    proofs_verified = 0
    for text in _PARITY_QUERIES:
        engine.use_index = True
        indexed = [r.record for r in engine.run(text)]
        engine.use_index = False
        scanned = [r.record for r in engine.run(text)]
        assert canonical_json(indexed) == canonical_json(scanned), (
            f"parity violation for {text!r}"
        )
        parity_queries += 1
    engine.use_index = True
    for text in _PARITY_QUERIES[:4]:
        answer = engine.run_verified(text)
        answer.verify()
        proofs_verified += len(answer.proofs)
    return {
        "parity_queries": float(parity_queries),
        "proofs_verified": float(proofs_verified),
    }


# -- harness ---------------------------------------------------------------------


def _run(sizes) -> dict:
    rounds = [_scaling_round(n) for n in sizes]
    series = {}
    for r in rounds:
        n = int(r["n"])
        for key in ("indexed_rows_examined", "scan_rows_examined",
                    "indexed_ms", "scan_ms", "proof_verified_records"):
            name = f"{key}_n{n}"
            if key.endswith("_ms"):
                # _ms suffix keeps the trend taxonomy classifying it TIMING.
                name = f"{key[:-3]}_n{n}_ms"
            series[name] = [r[key]]
    parity = _parity_round()
    series["parity_queries"] = [parity["parity_queries"]]
    series["proofs_verified"] = [parity["proofs_verified"]]
    return series


def _gate(series: dict, sizes) -> None:
    lo, hi = sizes[0], sizes[-1]
    examined_lo = series[f"indexed_rows_examined_n{lo}"][0]
    examined_hi = series[f"indexed_rows_examined_n{hi}"][0]
    # Sublinearity, on exact counts: the chain grew hi/lo times, the
    # indexed route's work did not grow at all (fixed posting size).
    assert examined_hi == examined_lo, (
        f"indexed work grew with chain height: {examined_lo} -> {examined_hi}"
    )
    assert series[f"scan_rows_examined_n{hi}"][0] == float(hi)
    # Loose timing sanity at the largest size (counts are the real gate).
    assert series[f"indexed_n{hi}_ms"][0] < series[f"scan_n{hi}_ms"][0], (
        "indexed route slower than a full scan at the largest size"
    )
    assert series["parity_queries"][0] == float(len(_PARITY_QUERIES))


def _emit(series: dict, sizes, name: str) -> None:
    rows = []
    for n in sizes:
        rows.append([
            n,
            int(series[f"indexed_rows_examined_n{n}"][0]),
            int(series[f"scan_rows_examined_n{n}"][0]),
            f"{series[f'indexed_n{n}_ms'][0]:.2f}",
            f"{series[f'scan_n{n}_ms'][0]:.2f}",
        ])
    text = format_table(
        f"Indexed vs full-scan retrieval ({RECORDS_PER_CAMERA} records/camera)",
        ["records", "index rows", "scan rows", "index ms", "scan ms"],
        rows,
    )
    emit(name, text)
    emit_json(
        name,
        series,
        meta={
            "sizes": list(sizes),
            "records_per_camera": RECORDS_PER_CAMERA,
            "parity_queries": len(_PARITY_QUERIES),
        },
        seed=0,
    )


def test_index_query(benchmark):
    series = benchmark.pedantic(lambda: _run(QUICK_SIZES), rounds=1, iterations=1)
    _emit(series, QUICK_SIZES, "index_query_quick")
    _gate(series, QUICK_SIZES)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes for the CI index gate (emits index_query_quick)",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    series = _run(sizes)
    _emit(series, sizes, "index_query_quick" if args.quick else "index_query")
    _gate(series, sizes)
    hi = sizes[-1]
    print(
        f"gate OK: indexed route examined "
        f"{int(series[f'indexed_rows_examined_n{hi}'][0])} rows at height "
        f"{hi} (scan: {hi}), {int(series['parity_queries'][0])} queries "
        f"byte-identical across routes, "
        f"{int(series['proofs_verified'][0])} proofs verified"
    )


if __name__ == "__main__":
    main()
