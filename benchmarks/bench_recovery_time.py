"""Recovery-time benchmark: WAL replay and verified state transfer.

The durability acceptance bar: a crashed peer must come back to exact state
parity, and the *shape* of what it recovered from local durable state vs the
network must be deterministic. Each round builds a fresh durable deployment,
commits a fixed workload, then measures the two recovery paths:

* **WAL replay** — amnesia crash mid-checkpoint-interval: the peer adopts
  the last checkpoint and re-commits the WAL suffix through full validation.
* **State transfer** — a corrupted WAL: recovery falls back to a
  digest-verified snapshot from quorum-agreeing donors.

The count series (``replayed_blocks``, ``catchup_blocks``,
``state_transfer_blocks``, ``checkpoint_height``) are EXACT in the
bench-trend taxonomy — any drift is a behaviour change the `repro
bench-diff` gate must catch. The ``*_wall_s`` series are TIMING: one-sided,
tolerance-gated. Exits non-zero if a recovered peer fails state parity.

Runnable standalone for CI (``python benchmarks/bench_recovery_time.py
--quick``): one round, same gates.
"""

import time

from repro.bench import emit, emit_json, format_table
from repro.core import Framework, FrameworkConfig
from repro.fabric.snapshot import states_agree
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.storage import CORRUPT
from repro.trust import SourceTier

N_BLOCKS = 18          # committed workload height before the crashes
CHECKPOINT_INTERVAL = 8
ROUNDS = 3
CRASH_PEER = "peer1.org1"


def _deploy():
    set_registry(MetricsRegistry())
    framework = Framework(
        FrameworkConfig(
            consensus="bft",
            peers_per_org=2,
            durability=True,
            checkpoint_interval=CHECKPOINT_INTERVAL,
            wal_sync_every=1,
            resilience_seed=0,
        )
    )
    identity = framework.register_source("recovery-cam", tier=SourceTier.TRUSTED)
    channel = framework.channel
    base = channel.height()
    while channel.height() < base + N_BLOCKS:
        i = channel.height()
        channel.invoke(
            identity, "data_upload", "add_data", [f"cid-{i}", "a" * 64, "{}"]
        )
    return framework


def _parity(channel, peer_name):
    peer = channel.peers[peer_name]
    other = next(
        p for p in channel.peers.values() if p is not peer and p.online
    )
    assert peer.ledger.height == other.ledger.height, (
        f"recovered {peer_name} at height {peer.ledger.height}, "
        f"cluster at {other.ledger.height}"
    )
    assert states_agree(peer, other), f"{peer_name} failed post-recovery parity"


def _round():
    framework = _deploy()
    manager = framework.durability

    t0 = time.perf_counter()
    replay = manager.crash_and_recover(CRASH_PEER)
    recovery_wall_s = time.perf_counter() - t0
    assert replay.kind == "wal_replay", replay.detail()
    _parity(framework.channel, CRASH_PEER)

    manager.damage_wal(CRASH_PEER, CORRUPT)
    t0 = time.perf_counter()
    transfer = manager.crash_and_recover(CRASH_PEER)
    state_transfer_wall_s = time.perf_counter() - t0
    assert transfer.kind == "state_transfer", transfer.detail()
    _parity(framework.channel, CRASH_PEER)

    return {
        "replayed_blocks": float(replay.replayed_blocks),
        "catchup_blocks": float(replay.caught_up_blocks),
        "checkpoint_height": float(replay.checkpoint_height),
        "state_transfer_blocks": float(transfer.lag_blocks),
        "recovery_wall_s": recovery_wall_s,
        "state_transfer_wall_s": state_transfer_wall_s,
    }


def _run(rounds=ROUNDS):
    results = [_round() for _ in range(rounds)]
    series = {key: [r[key] for r in results] for key in results[0]}
    # The recovery shape is seed-determined: every round must agree exactly.
    for key in ("replayed_blocks", "catchup_blocks", "checkpoint_height",
                "state_transfer_blocks"):
        assert len(set(series[key])) == 1, f"nondeterministic {key}: {series[key]}"
    return series


def _emit(series, rounds):
    rows = [
        ["wal_replay", int(series["checkpoint_height"][0]),
         int(series["replayed_blocks"][0]), int(series["catchup_blocks"][0]),
         f"{sum(series['recovery_wall_s']) / rounds * 1e3:.1f}"],
        ["state_transfer", 0, 0, int(series["state_transfer_blocks"][0]),
         f"{sum(series['state_transfer_wall_s']) / rounds * 1e3:.1f}"],
    ]
    text = format_table(
        f"Recovery time ({N_BLOCKS} blocks, checkpoint every "
        f"{CHECKPOINT_INTERVAL}, {rounds} round(s))",
        ["path", "ckpt height", "replayed", "fetched", "mean ms"],
        rows,
    )
    emit("recovery_time", text)
    emit_json(
        "recovery_time",
        series,
        meta={
            "n_blocks": N_BLOCKS,
            "checkpoint_interval": CHECKPOINT_INTERVAL,
            "rounds": rounds,
            "crash_peer": CRASH_PEER,
        },
        seed=0,
    )


def test_recovery_time(benchmark):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    _emit(series, ROUNDS)
    # Replay must actually use the checkpoint: never more WAL blocks than
    # one checkpoint interval, and state transfer must fetch the full chain.
    assert series["replayed_blocks"][0] <= CHECKPOINT_INTERVAL
    assert series["state_transfer_blocks"][0] >= N_BLOCKS


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="single round for the CI recovery gate",
    )
    args = parser.parse_args(argv)
    rounds = 1 if args.quick else ROUNDS
    series = _run(rounds)
    _emit(series, rounds)
    assert series["replayed_blocks"][0] <= CHECKPOINT_INTERVAL
    assert series["state_transfer_blocks"][0] >= N_BLOCKS
    print(
        f"gate OK: replayed {int(series['replayed_blocks'][0])} from WAL "
        f"(ckpt {int(series['checkpoint_height'][0])}), state transfer "
        f"fetched {int(series['state_transfer_blocks'][0])} blocks, "
        f"parity held on both paths"
    )


if __name__ == "__main__":
    main()
