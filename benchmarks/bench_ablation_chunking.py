"""Ablation: chunking strategy (fixed-size vs content-defined).

The storage times of Figure 5 depend on the chunker. Fixed-size chunking
is cheapest per byte; content-defined chunking (CDC) pays a rolling-hash
pass but deduplicates shifted/overlapping content — relevant when sources
re-submit overlapping video segments. This bench prices both sides:
throughput on fresh data and dedup ratio on 50%-overlapping submissions.
"""

import time

from repro.bench import emit, format_table
from repro.ipfs import FixedSizeChunker, IpfsNode, RollingChunker
from repro.workloads.filesizes import payload

SIZE = 2 << 20  # 2 MiB
CHUNKERS = {
    "fixed 256 KiB": lambda: FixedSizeChunker(256 << 10),
    "fixed 64 KiB": lambda: FixedSizeChunker(64 << 10),
    "cdc ~64 KiB": lambda: RollingChunker(target_size=64 << 10),
    "cdc ~16 KiB": lambda: RollingChunker(target_size=16 << 10),
}


def _store_throughput(make_chunker) -> float:
    node = IpfsNode("bench", chunker=make_chunker())
    data = payload(SIZE, seed=11, label="chunk-fresh")
    start = time.perf_counter()
    node.add_bytes(data)
    return time.perf_counter() - start


def _dedup_ratio(make_chunker) -> float:
    """Store A, then B = shifted overlap of A; ratio of bytes NOT re-stored."""
    node = IpfsNode("bench", chunker=make_chunker())
    base = payload(SIZE, seed=12, label="chunk-overlap")
    node.add_bytes(base)
    written_before = node.blockstore.stats.bytes_written
    # Second submission: a prefix insertion shifts everything — the classic
    # fixed-chunking killer — while ~all content is shared.
    shifted = b"PREFIX-INSERTED" + base
    node.add_bytes(shifted)
    new_bytes = node.blockstore.stats.bytes_written - written_before
    return 1.0 - (new_bytes / len(shifted))


def test_ablation_chunking(benchmark):
    def run():
        return {
            name: (_store_throughput(make), _dedup_ratio(make))
            for name, make in CHUNKERS.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{(SIZE / (1 << 20)) / t:.1f}", f"{dedup * 100:.1f}%"]
        for name, (t, dedup) in results.items()
    ]
    text = format_table(
        "Ablation: chunker choice (2 MiB payload, shifted re-submission)",
        ["chunker", "store MiB/s", "dedup on shifted content"],
        rows,
    )
    emit("ablation_chunking", text)

    # Expected shape: CDC dedups shifted content; fixed chunking cannot.
    assert results["cdc ~64 KiB"][1] > 0.5
    assert results["fixed 64 KiB"][1] < 0.2
