"""Ablation: BFT ordering vs solo (CFT-free) ordering vs Raft.

Prices the paper's choice of BFT consensus: what does Byzantine tolerance
cost per transaction compared to a single sequencer, and how does the
message complexity compare to Raft's majority replication?
"""

import time

from repro.bench import emit, format_table
from repro.consensus import RaftCluster
from repro.core import Client, Framework, FrameworkConfig
from repro.net import ConstantLatency, SimNetwork
from repro.trust import SourceTier
from repro.workloads.filesizes import payload

N_TXS = 20
DATA = payload(16 << 10, seed=9)


def _submit_n(framework, n=N_TXS):
    client = Client(framework, framework.register_source("abl-cam", tier=SourceTier.TRUSTED))
    start = time.perf_counter()
    for i in range(n):
        client.submit(DATA, {"timestamp": float(i), "detections": []})
    return (time.perf_counter() - start) / n


def _raft_per_tx(n=N_TXS):
    net = SimNetwork(latency=ConstantLatency(base=0.0005))
    cluster = RaftCluster(n_nodes=5, network=net, seed=3)
    cluster.elect()
    start = time.perf_counter()
    for i in range(n):
        cluster.submit({"n": i})
    end_time = cluster.network.clock.now() + 1.0
    cluster.network.run(until=end_time)
    elapsed = time.perf_counter() - start
    assert len(cluster.committed_payloads()) == n
    return elapsed / n


def test_ablation_consensus_cost(benchmark):
    def run():
        solo = _submit_n(Framework(FrameworkConfig(consensus="solo")))
        bft4 = _submit_n(Framework(FrameworkConfig(consensus="bft", n_validators=4)))
        bft7 = _submit_n(Framework(FrameworkConfig(consensus="bft", n_validators=7)))
        raft = _raft_per_tx()
        return solo, bft4, bft7, raft

    solo, bft4, bft7, raft = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["solo orderer (no consensus)", f"{solo * 1e3:.3f}", "0", "none"],
        ["raft n=5 (CFT baseline)", f"{raft * 1e3:.3f}", "2 (minority crash)", "crash only"],
        ["pbft n=4 (paper config)", f"{bft4 * 1e3:.3f}", "1", "byzantine"],
        ["pbft n=7", f"{bft7 * 1e3:.3f}", "2", "byzantine"],
    ]
    text = format_table(
        "Ablation: per-transaction ordering cost by consensus",
        ["ordering", "ms/tx (full store path)", "faults tolerated", "fault model"],
        rows,
    )
    emit("ablation_consensus", text)

    # Expected shape: BFT costs more than solo; more validators cost more.
    assert bft4 > solo
    assert bft7 > bft4 * 0.9  # larger cluster at least comparable
