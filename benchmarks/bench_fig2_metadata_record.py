"""Figure 2: sample metadata record extracted from a traffic frame.

Regenerates the paper's example record (camera id, timestamp, location,
per-vehicle class/color/confidence) from a synthetic frame, and benchmarks
the detection + extraction step that produces it.
"""

import json

from repro.bench import emit, fig2_sample_record
from repro.vision import MetadataExtractor, SimulatedYolo, TrafficDataset


def test_fig2_record_table(benchmark):
    record = benchmark.pedantic(fig2_sample_record, rounds=1, iterations=1)
    text = "Figure 2: sample metadata record\n" + "=" * 40 + "\n"
    text += json.dumps(record, indent=2, sort_keys=True)
    emit("fig2_metadata_record", text)
    assert record["camera_id"].startswith("cam-")
    assert "lat" in record["location"]
    for det in record["detections"]:
        assert {"vehicle_class", "confidence", "color", "bbox"} <= set(det)


def test_fig2_extraction_throughput(benchmark):
    """Hot path: one frame through detect + extract."""
    dataset = TrafficDataset(seed=11, frames_per_video=1, n_videos=1)
    frame = dataset.static_clip(0).frames[0]
    detector = SimulatedYolo(seed=11)
    extractor = MetadataExtractor()

    def run():
        return extractor.extract(frame, detector.detect(frame))

    record = benchmark(run)
    assert record.camera_id == frame.camera_id
