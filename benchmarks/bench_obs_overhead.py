"""Overhead of the tracing and profiling layers, disabled and enabled.

The observability acceptance bar: with no tracer installed, an
instrumented call path costs one global read plus one ``is None`` check
and allocates nothing — the shared :data:`~repro.obs.span.NOOP_SPAN` is
handed back to every caller. The cost-center profiler holds the same bar
with its shared no-op probe. ``tracemalloc`` proves the zero-allocation
claims directly; pytest-benchmark bounds the per-call times against a
bare function call.
"""

import tracemalloc

from repro import obs
from repro.bench import emit_json
from repro.obs.prof import profiled
from repro.obs.tracer import span as obs_span

N = 10_000


def _instrumented():
    with obs_span("bench.overhead") as sp:
        sp.set_attr("k", 1)
    return sp


def _prof_instrumented():
    with profiled("bench.overhead") as pf:
        pf.add_bytes(1)
    return pf


def _bare():
    return None


def test_disabled_span_allocates_nothing():
    obs.disable()
    _instrumented()  # warm-up: interns, bytecode caches
    tracemalloc.start()
    for _ in range(N):
        _instrumented()
    current, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # Per-call allocation would show as >= N * sizeof(smallest object)
    # (~56 B * 10k = 560 KiB). A handful of bytes of interpreter noise is
    # the only tolerance.
    assert current < 2048, f"disabled tracing leaked {current} B over {N} calls"


def test_disabled_span_returns_shared_singleton():
    obs.disable()
    assert _instrumented() is _instrumented()


def test_disabled_span_call_time(benchmark):
    obs.disable()

    def loop():
        for _ in range(N):
            _instrumented()

    benchmark(loop)
    per_call_s = benchmark.stats.stats.mean / N
    emit_json(
        "obs_overhead_disabled",
        {"per_call_s": [per_call_s]},
        meta={"calls_per_round": N, "mode": "disabled"},
        seed=0,
    )
    # A guard check + context-manager protocol on a shared object: well
    # under a microsecond on any machine this runs on.
    assert per_call_s < 5e-6, f"disabled span cost {per_call_s * 1e9:.0f} ns/call"


def test_enabled_span_call_time(benchmark):
    tracer = obs.enable()

    def loop():
        for _ in range(N):
            _instrumented()
        tracer.clear()  # keep the finished list from growing across rounds

    benchmark(loop)
    obs.disable()
    per_call_s = benchmark.stats.stats.mean / N
    emit_json(
        "obs_overhead_enabled",
        {"per_call_s": [per_call_s]},
        meta={"calls_per_round": N, "mode": "enabled"},
        seed=0,
    )
    # Enabled tracing does real work (span object, clock reads, context
    # var); it just has to stay cheap relative to any instrumented stage.
    assert per_call_s < 1e-4


def test_disabled_profiler_allocates_nothing():
    obs.disable_profiler()
    _prof_instrumented()  # warm-up: interns, bytecode caches
    tracemalloc.start()
    for _ in range(N):
        _prof_instrumented()
    current, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert current < 2048, f"disabled profiling leaked {current} B over {N} calls"


def test_disabled_profiler_returns_shared_probe():
    obs.disable_profiler()
    assert _prof_instrumented() is _prof_instrumented()


def test_disabled_profiler_call_time(benchmark):
    obs.disable_profiler()

    def loop():
        for _ in range(N):
            _prof_instrumented()

    benchmark(loop)
    per_call_s = benchmark.stats.stats.mean / N
    emit_json(
        "obs_overhead_prof_disabled",
        {"per_call_s": [per_call_s]},
        meta={"calls_per_round": N, "mode": "prof_disabled"},
        seed=0,
    )
    # One global read, one `is None` check, a shared probe's CM protocol.
    assert per_call_s < 5e-6, f"disabled frame cost {per_call_s * 1e9:.0f} ns/call"


def test_enabled_profiler_call_time(benchmark):
    profiler = obs.enable_profiler()

    def loop():
        for _ in range(N):
            _prof_instrumented()

    benchmark(loop)
    obs.disable_profiler()
    per_call_s = benchmark.stats.stats.mean / N
    assert profiler.center_stats(), "enabled profiler recorded nothing"
    emit_json(
        "obs_overhead_prof_enabled",
        {"per_call_s": [per_call_s]},
        meta={"calls_per_round": N, "mode": "prof_enabled"},
        seed=0,
    )
    # An enabled frame does real work (two clock reads, a contextvar
    # set/reset, one locked dict update); it must stay cheap relative to
    # the cheapest instrumented operation (a ~µs hash call).
    assert per_call_s < 1e-4


def test_combined_artifact_written():
    """Fold the per-mode results into one ``BENCH_obs_overhead.json`` so
    the obs layer's perf trajectory is tracked as a single artifact.

    Runs after the two benchmark tests above (pytest preserves definition
    order), reading the files they just emitted.
    """
    import json

    from repro.bench.report import results_dir

    series = {}
    modes = ("disabled", "enabled", "prof_disabled", "prof_enabled")
    for mode in modes:
        path = results_dir() / f"BENCH_obs_overhead_{mode}.json"
        doc = json.loads(path.read_text())
        series[f"{mode}_per_call_s"] = doc["series"]["per_call_s"]["values"]
    out = emit_json(
        "obs_overhead",
        series,
        meta={"calls_per_round": N, "modes": list(modes)},
        seed=0,
    )
    assert out.exists()
