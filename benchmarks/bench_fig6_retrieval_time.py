"""Figure 6: retrieval time across file sizes, with and without blockchain
overheads.

Paper: "While retrieval time increases with file size, blockchain overhead
remains minimal … Since reading from the blockchain does not incur gas
costs, the process remains computationally inexpensive." The sweep fetches
each size directly by CID from IPFS, then through the full retrieval path
(on-chain metadata read + IPFS fetch + integrity verification), and checks
that reads never touch the ordering service.
"""

import numpy as np

from repro.bench import emit, emit_json, fig6_retrieval_times, format_table, human_size
from repro.bench.figures import _storage_framework
from repro.core import Client
from repro.crypto.cid import CID
from repro.trust import SourceTier
from repro.workloads.filesizes import payload

SIZES = (1 << 10, 8 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20)


def test_fig6_sweep(benchmark):
    timings = benchmark.pedantic(
        fig6_retrieval_times, kwargs={"sizes": SIZES, "repeats": 3}, rounds=1, iterations=1
    )
    rows = [
        [
            human_size(t.size),
            f"{t.ipfs_only_s * 1e3:.3f}",
            f"{t.with_blockchain_s * 1e3:.3f}",
            f"{t.overhead_s * 1e3:.3f}",
        ]
        for t in timings
    ]
    text = format_table(
        "Figure 6: retrieval time vs file size (ms)",
        ["size", "IPFS by CID", "chain metadata + IPFS + verify", "blockchain overhead"],
        rows,
    )
    emit("fig6_retrieval_time", text)
    emit_json(
        "fig6_retrieval_time",
        {
            "ipfs_only_s": [t.ipfs_only_s for t in timings],
            "with_blockchain_s": [t.with_blockchain_s for t in timings],
            "overhead_s": [t.overhead_s for t in timings],
        },
        meta={"sizes_bytes": list(SIZES), "repeats": 3},
        seed=0,
    )

    sizes = np.array([t.size for t in timings], dtype=float)
    full = np.array([t.with_blockchain_s for t in timings])
    r = float(np.corrcoef(sizes, full)[0, 1])
    assert r > 0.9, f"retrieval should grow with file size (r={r:.3f})"
    # The on-chain read adds little on large files.
    assert timings[-1].overhead_s < 0.75 * timings[-1].with_blockchain_s


def test_fig6_reads_bypass_consensus(benchmark):
    """Reads must not generate ordering work — the no-gas-cost property."""
    framework = _storage_framework()
    client = Client(framework, framework.register_source("read-cam", tier=SourceTier.TRUSTED))
    receipt = client.submit(payload(64 << 10, seed=5), {"timestamp": 1.0, "detections": []})
    orderer = framework.channel.orderer
    blocks_before = orderer.blocks_cut
    benchmark(lambda: client.engine.get(receipt.entry_id, fetch_data=True))
    assert orderer.blocks_cut == blocks_before


def test_fig6_retrieve_1mib_full_path(benchmark):
    framework = _storage_framework()
    client = Client(framework, framework.register_source("hot-ret", tier=SourceTier.TRUSTED))
    data = payload(1 << 20, seed=6, label="bench-ret")
    receipt = client.submit(data, {"timestamp": 2.0, "detections": []})

    def run():
        return client.engine.get(receipt.entry_id, fetch_data=True, verify=True)

    row = benchmark(run)
    assert row.data == data


def test_fig6_retrieve_1mib_cid_only(benchmark):
    framework = _storage_framework()
    data = payload(1 << 20, seed=7, label="bench-ret-cid")
    result = framework.ipfs.add(data)
    cid = result.cid

    fetched = benchmark(lambda: framework.ipfs.cat(cid))
    assert fetched == data
