"""Ablation: Byzantine validator fraction vs the 2/3 quorum claim.

Paper §III-A: "The BFT mechanism allows the network to tolerate up to
one-third of malicious validators." This bench injects increasing numbers
of corrupt validators (endorsing everything, rejecting everything, or
silent) into an n=7 cluster (f=2) and records whether valid transactions
still commit and how long consensus takes — the claim holds up to f and
breaks past it.
"""

import time

from repro.bench import emit, format_table
from repro.consensus import Behaviour, BftCluster
from repro.net import ConstantLatency, SimNetwork

N = 7  # f = 2
N_REQS = 5


def _run_with_faults(n_faulty: int, behaviour: Behaviour):
    behaviours = {f"validator-{N - 1 - i}": behaviour for i in range(n_faulty)}
    cluster = BftCluster(
        n_replicas=N,
        network=SimNetwork(latency=ConstantLatency(base=0.001)),
        behaviours=behaviours,
        view_timeout=0.5,
    )
    start = time.perf_counter()
    requests = [cluster.submit({"n": i}) for i in range(N_REQS)]
    cluster.run(until=20.0)
    elapsed = time.perf_counter() - start
    agreed = sum(1 for r in requests if cluster.agreement_reached(r.request_id))
    accepted = sum(
        1
        for d in cluster.decided_log()
        if d.accepted and any(d.request.request_id == r.request_id for r in requests)
    )
    return agreed, accepted, elapsed


def test_ablation_byzantine_fraction(benchmark):
    def run():
        out = []
        for n_faulty in (0, 1, 2, 3):  # f=2; 3 exceeds the bound
            for behaviour in (Behaviour.SILENT, Behaviour.ALWAYS_INVALID):
                agreed, accepted, elapsed = _run_with_faults(n_faulty, behaviour)
                out.append((n_faulty, behaviour.value, agreed, accepted, elapsed))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n, b, f"{agreed}/{N_REQS}", f"{accepted}/{N_REQS}", f"{el * 1e3:.1f}"]
        for n, b, agreed, accepted, el in results
    ]
    text = format_table(
        f"Ablation: Byzantine validators in n={N} (f=2) PBFT",
        ["faulty", "behaviour", "agreement", "accepted", "wall ms"],
        rows,
    )
    emit("ablation_byzantine", text)

    by_key = {(n, b): (agreed, accepted) for n, b, agreed, accepted, _ in results}
    # Within the bound: full agreement and acceptance.
    for n_faulty in (0, 1, 2):
        for behaviour in ("silent", "always-invalid"):
            agreed, accepted = by_key[(n_faulty, behaviour)]
            assert agreed == N_REQS, f"{n_faulty} {behaviour}: agreement lost within bound"
            assert accepted == N_REQS, f"{n_faulty} {behaviour}: valid txs rejected within bound"
    # Past the bound: silent majority-breaking stalls liveness entirely.
    agreed_past, _ = by_key[(3, "silent")]
    assert agreed_past < N_REQS, "3 silent of 7 must break the 2f+1 quorum"
