"""Overhead of the resilience layer on the happy path.

The resilience acceptance bar: wrapping a call in :func:`repro.resilience.retry`
or a :class:`repro.resilience.CircuitBreaker` must cost almost nothing when the
dependency is healthy — a first-attempt success allocates no RNG and touches no
metrics registry, and a closed breaker is one state check per call. The
end-to-end figure compares ``Framework.resilient_invoke`` against a raw
``channel.invoke`` on the same deployment.
"""

from repro.bench import emit_json
from repro.core import Framework, FrameworkConfig
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.resilience import CircuitBreaker, retry
from repro.trust import SourceTier

N = 5_000


def _bare():
    return 42


def test_retry_happy_path_overhead(benchmark):
    set_registry(MetricsRegistry())

    def loop():
        for _ in range(N):
            retry(_bare, op="bench")

    benchmark(loop)
    per_call_s = benchmark.stats.stats.mean / N
    emit_json(
        "resilience_overhead",
        {"retry_happy_per_call_s": [per_call_s]},
        meta={"calls_per_round": N, "path": "retry, first-attempt success"},
        seed=0,
    )
    # One try/except frame around the call: must stay in the microsecond
    # range, far below any real dependency call it will ever wrap.
    assert per_call_s < 2e-5, f"retry wrapper cost {per_call_s * 1e9:.0f} ns/call"


def test_closed_breaker_overhead(benchmark):
    set_registry(MetricsRegistry())
    breaker = CircuitBreaker("bench", failure_threshold=5, cooldown_s=1.0)

    def loop():
        for _ in range(N):
            breaker.call(_bare)

    benchmark(loop)
    per_call_s = benchmark.stats.stats.mean / N
    emit_json(
        "resilience_overhead_breaker",
        {"closed_breaker_per_call_s": [per_call_s]},
        meta={"calls_per_round": N, "path": "closed breaker, success"},
        seed=0,
    )
    assert per_call_s < 2e-5, f"closed breaker cost {per_call_s * 1e9:.0f} ns/call"


def test_resilient_invoke_vs_raw_invoke(benchmark):
    """End-to-end: the hardened submit path vs the raw channel call."""
    import time

    set_registry(MetricsRegistry())
    framework = Framework(FrameworkConfig(consensus="solo"))
    identity = framework.register_source("bench-cam", tier=SourceTier.TRUSTED)
    rounds = 50

    # Raw baseline, measured inline (same deployment, interleaving keeps
    # ledger-growth effects comparable between the two series).
    raw_s = []
    for i in range(rounds):
        t0 = time.perf_counter()
        framework.channel.invoke(
            identity, "data_upload", "add_data", [f"cid-raw-{i}", "a" * 64, "{}"],
        )
        raw_s.append(time.perf_counter() - t0)

    state = {"i": 0}

    def hardened():
        i = state["i"] = state["i"] + 1
        framework.resilient_invoke(
            identity, "data_upload", "add_data", [f"cid-res-{i}", "b" * 64, "{}"],
        )

    benchmark(hardened)
    hardened_s = benchmark.stats.stats.mean
    raw_mean = sum(raw_s) / len(raw_s)
    emit_json(
        "resilience_overhead_invoke",
        {"raw_invoke_s": raw_s, "resilient_invoke_s": [hardened_s]},
        meta={
            "rounds": rounds,
            "overhead_ratio": hardened_s / raw_mean if raw_mean else 0.0,
        },
        seed=0,
    )
    # The wrapper adds a breaker check + closure per call on top of a full
    # endorse/order/validate round trip; it must stay within 2x raw.
    assert hardened_s < raw_mean * 2 + 1e-3
