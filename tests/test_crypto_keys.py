"""Tests for keypairs and the HMAC-based signature scheme."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.keys import SIGNATURE_SIZE, KeyPair, PublicKey
from repro.errors import SignatureError


class TestKeyPair:
    def test_generate_produces_distinct_pairs(self):
        assert KeyPair.generate().public != KeyPair.generate().public

    def test_from_seed_deterministic(self):
        assert KeyPair.from_seed("alice").public == KeyPair.from_seed("alice").public

    def test_from_seed_distinct_seeds(self):
        assert KeyPair.from_seed("alice").public != KeyPair.from_seed("bob").public

    def test_from_seed_accepts_bytes(self):
        assert KeyPair.from_seed(b"alice").public == KeyPair.from_seed("alice").public

    def test_public_derivable_from_private(self):
        kp = KeyPair.from_seed("x")
        assert kp.private.public_key() == kp.public


class TestSignatures:
    def test_sign_verify_roundtrip(self):
        kp = KeyPair.from_seed("signer")
        sig = kp.sign(b"message")
        kp.public.verify(b"message", sig)  # must not raise
        assert kp.public.is_valid(b"message", sig)

    def test_signature_size_constant(self):
        kp = KeyPair.from_seed("signer")
        assert len(kp.sign(b"")) == SIGNATURE_SIZE
        assert len(kp.sign(b"x" * 10000)) == SIGNATURE_SIZE

    def test_tampered_message_rejected(self):
        kp = KeyPair.from_seed("signer")
        sig = kp.sign(b"message")
        assert not kp.public.is_valid(b"messagE", sig)

    def test_tampered_signature_rejected(self):
        kp = KeyPair.from_seed("signer")
        sig = bytearray(kp.sign(b"message"))
        sig[0] ^= 0x01
        assert not kp.public.is_valid(b"message", bytes(sig))

    def test_wrong_key_rejected(self):
        sig = KeyPair.from_seed("alice").sign(b"message")
        assert not KeyPair.from_seed("bob").public.is_valid(b"message", sig)

    def test_verify_raises_signature_error(self):
        kp = KeyPair.from_seed("signer")
        with pytest.raises(SignatureError):
            kp.public.verify(b"message", b"\x00" * SIGNATURE_SIZE)

    def test_short_signature_rejected(self):
        kp = KeyPair.from_seed("signer")
        with pytest.raises(SignatureError):
            kp.public.verify(b"message", b"short")

    def test_signature_deterministic_for_seeded_keys(self):
        a = KeyPair.from_seed("alice").sign(b"m")
        b = KeyPair.from_seed("alice").sign(b"m")
        assert a == b


class TestPublicKeySerialization:
    def test_hex_roundtrip(self):
        pub = KeyPair.from_seed("alice").public
        assert PublicKey.from_hex(pub.hex()) == pub

    def test_fingerprint_stable_and_short(self):
        pub = KeyPair.from_seed("alice").public
        assert pub.fingerprint() == pub.fingerprint()
        assert len(pub.fingerprint()) == 16


@given(st.binary(max_size=256), st.text(min_size=1, max_size=10))
def test_property_sign_verify(message, seed):
    kp = KeyPair.from_seed(seed)
    assert kp.public.is_valid(message, kp.sign(message))


@given(st.binary(max_size=64), st.binary(max_size=64))
def test_property_cross_message_rejection(m1, m2):
    kp = KeyPair.from_seed("prop")
    sig = kp.sign(m1)
    if m1 != m2:
        assert not kp.public.is_valid(m2, sig)
