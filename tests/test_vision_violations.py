"""Tests for violation detection and its on-chain indexing/query path."""

import json

import pytest

from repro.core import Client, Framework, FrameworkConfig
from repro.trust import SourceTier
from repro.vision import (
    SceneGenerator,
    StaticCamera,
    TrafficDataset,
    ViolationDetector,
    ViolationRecord,
    attach_violations,
)
from repro.vision.dataset import VideoClip


def make_clip(seed=31, density=4.0, frames=5, dt=0.5):
    gen = SceneGenerator(seed=seed, density=density)
    camera = StaticCamera(f"cam-v{seed}")
    scene = gen.scene("violations")
    captured = []
    for _ in range(frames):
        captured.append(camera.capture(scene))
        scene = scene.advance(dt)
    return VideoClip(
        video_id="clip", camera_id=camera.camera_id, source_kind="static",
        frames=tuple(captured),
    )


class TestViolationDetector:
    def test_speeding_detected_with_low_limit(self):
        """Vehicles move 2–14 m/s; a 10 km/h limit must catch some."""
        detector = ViolationDetector(speed_limit_kmh=10.0)
        violations = detector.detect_clip(make_clip())
        speeders = [v for v in violations if v.violation_type == "speeding"]
        assert speeders
        for v in speeders:
            assert v.measured > v.limit
            assert 0.0 < v.confidence <= 0.99

    def test_no_speeding_with_generous_limit(self):
        detector = ViolationDetector(speed_limit_kmh=200.0)
        violations = detector.detect_clip(make_clip())
        assert not [v for v in violations if v.violation_type == "speeding"]

    def test_enforcement_margin_respected(self):
        """Measured speeds within the margin above the limit are not cited."""
        strict = ViolationDetector(speed_limit_kmh=10.0, enforcement_margin_kmh=0.0)
        lenient = ViolationDetector(speed_limit_kmh=10.0, enforcement_margin_kmh=30.0)
        clip = make_clip()
        assert len(strict.detect_clip(clip)) >= len(lenient.detect_clip(clip))

    def test_restricted_class_cited_once_per_vehicle(self):
        detector = ViolationDetector(
            speed_limit_kmh=500.0, restricted_classes=frozenset({"truck", "bus"})
        )
        clip = make_clip(seed=33, density=6.0)
        violations = detector.detect_clip(clip)
        cited = [v for v in violations if v.violation_type == "restricted-class"]
        truth_restricted = {
            b.vehicle.vehicle_id
            for f in clip.frames
            for b in f.truth
            if b.vehicle.vehicle_class in ("truck", "bus")
        }
        assert len(cited) == len(truth_restricted)

    def test_static_evidence_confidence_beats_drone(self):
        from repro.vision import DroneCamera

        gen = SceneGenerator(seed=35, density=4.0)
        scene = gen.scene("evidence")
        static = StaticCamera("s").capture(scene)
        drone_cam = DroneCamera("d", seed=3)
        drones = [drone_cam.capture(scene) for _ in range(10)]
        s_conf = ViolationDetector._evidence_confidence(static)
        d_confs = [ViolationDetector._evidence_confidence(f) for f in drones]
        assert s_conf >= max(d_confs)

    def test_record_serialization(self):
        record = ViolationRecord(
            violation_type="speeding", vehicle_class="car", frame_id="f1",
            measured=55.2345, limit=40.0, confidence=0.91,
        )
        doc = record.to_dict()
        assert doc["measured"] == 55.23
        assert doc["violation_type"] == "speeding"

    def test_attach_violations_filters_by_frame(self):
        v1 = ViolationRecord("speeding", "car", "frame-A", 50.0, 40.0, 0.9)
        v2 = ViolationRecord("speeding", "car", "frame-B", 60.0, 40.0, 0.9)
        meta = attach_violations({"timestamp": 1.0}, [v1, v2], "frame-A")
        assert len(meta["violations"]) == 1
        assert meta["violations"][0]["frame_id"] == "frame-A"


class TestViolationsOnChain:
    @pytest.fixture()
    def populated(self):
        framework = Framework(FrameworkConfig(consensus="solo"))
        client = Client(
            framework, framework.register_source("enforce-cam", tier=SourceTier.TRUSTED)
        )
        dataset = TrafficDataset(seed=37, frames_per_video=4, n_videos=1)
        clip = dataset.static_clip(0)
        detector = ViolationDetector(speed_limit_kmh=10.0)
        violations = detector.detect_clip(clip)
        n_with = 0
        for frame in clip.frames:
            metadata = {
                "timestamp": frame.timestamp,
                "camera_id": frame.camera_id,
                "detections": [],
            }
            metadata = attach_violations(metadata, violations, frame.frame_id)
            if metadata["violations"]:
                n_with += 1
            client.submit(frame.to_bytes(), metadata)
        return framework, client, n_with

    def test_query_by_violation_type_uses_index(self, populated):
        framework, client, n_with = populated
        plan = client.engine.plan("violation_type = 'speeding'")
        assert not plan.full_scan
        assert "by_violation" in plan.explain()
        rows = client.query("violation_type = 'speeding'")
        assert len(rows) == n_with
        assert n_with > 0

    def test_violation_payload_on_chain(self, populated):
        framework, client, _ = populated
        rows = client.query("violation_type = 'speeding' LIMIT 1")
        violation = rows[0].record["metadata"]["violations"][0]
        assert violation["measured"] > violation["limit"]

    def test_chaincode_list_by_violation(self, populated):
        framework, client, n_with = populated
        raw = framework.channel.query(
            client.identity, "data_retrieval", "list_by_violation", ["speeding"]
        )
        assert len(json.loads(raw)) == n_with
