"""Tests for identities, MSPs, and endorsement policies."""

import pytest

from repro.errors import IdentityError, SignatureError
from repro.fabric import (
    AllOf,
    AnyOf,
    Identity,
    IdentityInfo,
    MajorityOf,
    MSPRegistry,
    OutOf,
    Role,
    SignedBy,
)
from repro.fabric.policy import And, Or


class TestIdentity:
    def test_deterministic_identity(self):
        a = Identity.create("alice", "org1")
        b = Identity.create("alice", "org1")
        assert a.keypair.public == b.keypair.public

    def test_org_scoped_keys(self):
        assert (
            Identity.create("alice", "org1").keypair.public
            != Identity.create("alice", "org2").keypair.public
        )

    def test_info_roundtrip(self):
        info = Identity.create("alice", "org1", Role.ADMIN).info()
        assert IdentityInfo.from_dict(info.to_dict()) == info

    def test_sign_matches_info_key(self):
        identity = Identity.create("alice", "org1")
        sig = identity.sign(b"msg")
        identity.info().public_key.verify(b"msg", sig)


class TestMSP:
    def make(self):
        registry = MSPRegistry()
        registry.add_org("org1")
        registry.add_org("org2")
        return registry

    def test_enroll_and_validate(self):
        registry = self.make()
        alice = Identity.create("alice", "org1")
        registry.enroll(alice)
        registry.validate_identity(alice.info())  # must not raise

    def test_unenrolled_rejected(self):
        registry = self.make()
        mallory = Identity.create("mallory", "org1")
        with pytest.raises(IdentityError):
            registry.validate_identity(mallory.info())

    def test_unknown_org_rejected(self):
        registry = self.make()
        ghost = Identity.create("x", "org9")
        with pytest.raises(IdentityError):
            registry.validate_identity(ghost.info())

    def test_duplicate_enrollment_rejected(self):
        registry = self.make()
        alice = Identity.create("alice", "org1")
        registry.enroll(alice)
        with pytest.raises(IdentityError):
            registry.enroll(alice)

    def test_cross_org_enrollment_rejected(self):
        registry = self.make()
        alice = Identity.create("alice", "org1")
        with pytest.raises(IdentityError):
            registry.msp("org2").enroll(alice)

    def test_revocation(self):
        registry = self.make()
        alice = Identity.create("alice", "org1")
        registry.enroll(alice)
        registry.msp("org1").revoke("alice")
        with pytest.raises(IdentityError):
            registry.validate_identity(alice.info())
        registry.msp("org1").reinstate("alice")
        registry.validate_identity(alice.info())

    def test_key_substitution_detected(self):
        """An attacker presenting alice's name with their own key fails."""
        registry = self.make()
        alice = Identity.create("alice", "org1")
        registry.enroll(alice)
        mallory = Identity.create("mallory", "org1")
        forged = IdentityInfo(
            name="alice",
            org="org1",
            role=Role.CLIENT,
            public_key_hex=mallory.keypair.public.hex(),
        )
        with pytest.raises(IdentityError):
            registry.validate_identity(forged)

    def test_verify_signature_end_to_end(self):
        registry = self.make()
        alice = Identity.create("alice", "org1")
        registry.enroll(alice)
        sig = alice.sign(b"payload")
        registry.verify_signature(alice.info(), b"payload", sig)
        with pytest.raises(SignatureError):
            registry.verify_signature(alice.info(), b"tampered", sig)

    def test_members_by_role(self):
        registry = self.make()
        registry.enroll(Identity.create("alice", "org1", Role.CLIENT))
        registry.enroll(Identity.create("peer0", "org1", Role.PEER))
        assert len(registry.msp("org1").members(Role.PEER)) == 1


class TestPolicies:
    def test_signed_by(self):
        assert SignedBy("org1").satisfied_by({"org1"})
        assert not SignedBy("org1").satisfied_by({"org2"})

    def test_and(self):
        policy = And(SignedBy("org1"), SignedBy("org2"))
        assert policy.satisfied_by({"org1", "org2"})
        assert not policy.satisfied_by({"org1"})

    def test_or(self):
        policy = Or(SignedBy("org1"), SignedBy("org2"))
        assert policy.satisfied_by({"org2"})
        assert not policy.satisfied_by({"org3"})

    def test_out_of(self):
        policy = OutOf(2, SignedBy("a"), SignedBy("b"), SignedBy("c"))
        assert policy.satisfied_by({"a", "c"})
        assert not policy.satisfied_by({"a"})

    def test_out_of_bounds_validated(self):
        with pytest.raises(ValueError):
            OutOf(0, SignedBy("a"))
        with pytest.raises(ValueError):
            OutOf(3, SignedBy("a"), SignedBy("b"))

    def test_majority(self):
        policy = MajorityOf("a", "b", "c")
        assert policy.satisfied_by({"a", "b"})
        assert not policy.satisfied_by({"a"})

    def test_nested(self):
        policy = And(SignedBy("gov"), Or(SignedBy("org1"), SignedBy("org2")))
        assert policy.satisfied_by({"gov", "org2"})
        assert not policy.satisfied_by({"org1", "org2"})

    def test_required_orgs(self):
        policy = AllOf("a", "b")
        assert policy.required_orgs() == {"a", "b"}
        assert AnyOf("x", "y").required_orgs() == {"x", "y"}
