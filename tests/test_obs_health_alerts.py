"""Health checks, SLIs, and the alert engine — including the full
fire→resolve lifecycle under the seeded standard chaos scenario."""

import pytest

from repro.chaos import get_scenario
from repro.core import Client, Framework, FrameworkConfig
from repro.errors import ObservabilityError
from repro.obs.alerts import (
    EXPECTED_ALERTS,
    AlertEngine,
    AlertRule,
    ChaosAlertProbe,
    standard_rules,
)
from repro.obs.health import HealthMonitor, HealthReport, HealthStatus
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.trust import SourceTier


@pytest.fixture(autouse=True)
def _fresh_registry():
    set_registry(MetricsRegistry())
    yield
    set_registry(MetricsRegistry())


def make_framework(**overrides):
    config = FrameworkConfig(
        consensus="bft", peers_per_org=2, n_ipfs_nodes=3, **overrides
    )
    return Framework(config)


class TestHealthMonitor:
    def test_clean_deployment_is_healthy(self):
        framework = make_framework()
        client = Client(
            framework, framework.register_source("hcam", tier=SourceTier.TRUSTED)
        )
        for i in range(3):
            client.submit(b"x" * 256, {"timestamp": float(i), "detections": []})
        report = HealthMonitor(framework, registry=MetricsRegistry()).check()
        assert report.healthy
        assert report.status is HealthStatus.HEALTHY
        names = {c.component for c in report.components}
        assert names == {
            "fabric.peers",
            "fabric.orderer",
            "consensus.validators",
            "ipfs.nodes",
            "ipfs.dht",
            "resilience.breakers",
        }
        assert report.slis["tx_failure_rate"] == 0.0
        assert report.slis["consensus_msgs_per_tx"] > 0

    def test_component_failures_degrade_the_report(self):
        framework = make_framework()
        monitor = HealthMonitor(framework, registry=MetricsRegistry())
        framework.ipfs.crash_node("ipfs-1")
        framework.channel.peers["peer0.org1"].online = False
        report = monitor.check()
        assert not report.healthy
        assert report.component("ipfs.nodes").status is HealthStatus.DEGRADED
        assert report.component("fabric.peers").status is HealthStatus.DEGRADED
        assert "ipfs-1" in report.component("ipfs.nodes").detail
        assert "peer0.org1" in report.component("fabric.peers").detail

    def test_validator_quorum_loss_is_unhealthy(self):
        framework = make_framework()
        cluster = framework.channel.orderer.cluster
        cluster.network.set_node_up("validator-2", False)
        cluster.network.set_node_up("validator-3", False)
        report = HealthMonitor(framework, registry=MetricsRegistry()).check()
        validators = report.component("consensus.validators")
        assert validators.status is HealthStatus.UNHEALTHY
        assert report.status is HealthStatus.UNHEALTHY

    def test_solo_deployment_reports_healthy_orderer(self):
        framework = Framework(FrameworkConfig(consensus="solo"))
        report = HealthMonitor(framework, registry=MetricsRegistry()).check()
        assert report.component("fabric.orderer").status is HealthStatus.HEALTHY
        assert "solo" in report.component("fabric.orderer").detail

    def test_signal_resolution(self):
        framework = make_framework()
        report = HealthMonitor(framework, registry=MetricsRegistry()).check()
        assert report.signal("component:ipfs.nodes") == 0.0
        assert report.signal("component:nope") is None
        assert report.signal("sli:tx_failure_rate") is not None
        assert report.signal("sli:nope") is None
        assert report.signal("garbage") is None

    def test_health_gauges_exported(self):
        framework = make_framework()
        registry = MetricsRegistry()
        HealthMonitor(framework, registry=registry).check()
        text = registry.render()
        assert 'health_status{component="ipfs.nodes"}' in text
        assert 'sli{name="consensus_msgs_per_tx"}' in text
        assert "repro_health_overall" in text


class TestAlertEngine:
    def _report(self, tick, value):
        return HealthReport(
            tick=tick, components=[], slis={"metric": value}
        )

    def _engine(self, for_ticks=1, op=">", threshold=0.5):
        rule = AlertRule(
            name="r", signal="sli:metric", op=op, threshold=threshold,
            for_ticks=for_ticks, severity="critical",
        )
        return AlertEngine([rule], registry=MetricsRegistry())

    def test_fire_and_resolve(self):
        engine = self._engine()
        assert engine.evaluate(self._report(0, 0.1)) == []
        events = engine.evaluate(self._report(1, 0.9))
        assert [e.state for e in events] == ["firing"]
        assert engine.active() == ["r"]
        events = engine.evaluate(self._report(2, 0.2))
        assert [e.state for e in events] == ["resolved"]
        assert engine.active() == []
        assert engine.fired() == {"r"}

    def test_for_ticks_debounces(self):
        engine = self._engine(for_ticks=3)
        engine.evaluate(self._report(0, 0.9))
        engine.evaluate(self._report(1, 0.9))
        assert engine.active() == []  # 2 consecutive < 3
        engine.evaluate(self._report(2, 0.9))
        assert engine.active() == ["r"]
        # A single dip resets the streak and resolves.
        engine.evaluate(self._report(3, 0.1))
        assert engine.active() == []

    def test_missing_signal_is_not_an_outage(self):
        engine = self._engine()
        events = engine.evaluate(HealthReport(tick=0, components=[], slis={}))
        assert events == []
        assert engine.active() == []

    def test_duplicate_rule_names_rejected(self):
        rule = AlertRule(name="dup", signal="sli:x", op=">", threshold=0)
        with pytest.raises(ObservabilityError):
            AlertEngine([rule, rule], registry=MetricsRegistry())

    def test_bad_rule_parameters_rejected(self):
        with pytest.raises(ObservabilityError):
            AlertRule(name="bad", signal="sli:x", op="~", threshold=0)
        with pytest.raises(ObservabilityError):
            AlertRule(name="bad", signal="sli:x", op=">", threshold=0, for_ticks=0)

    def test_alert_gauges_exported(self):
        registry = MetricsRegistry()
        rule = AlertRule(
            name="hot", signal="sli:metric", op=">", threshold=0.5,
            severity="critical",
        )
        engine = AlertEngine([rule], registry=registry)
        engine.evaluate(self._report(0, 0.9))
        text = registry.render()
        assert 'alert_state{name="hot"} 1' in text
        assert 'alerts_firing{severity="critical"} 1' in text
        assert 'alerts_fired_total{name="hot"} 1' in text


class TestChaosAlertLifecycle:
    """The acceptance contract: the standard scenario fires one alert per
    injected fault class and resolves every one after heal, and the alert
    log fingerprint is stable under a fixed seed."""

    def _run(self, seed=0):
        set_registry(MetricsRegistry())
        probe = ChaosAlertProbe()
        scenario = get_scenario("standard", seed=seed)
        scenario.on_cycle = probe
        report = scenario.run()
        return report, probe

    def test_expected_alerts_fire_and_all_resolve(self):
        report, probe = self._run()
        assert report.data_loss == 0
        ok, problems = probe.verify("standard")
        assert ok, problems
        assert EXPECTED_ALERTS["standard"] <= probe.engine.fired()
        assert probe.engine.active() == []
        # The log records both halves of the lifecycle for every fired rule.
        states = {}
        for event in probe.engine.log:
            states.setdefault(event.rule, []).append(event.state)
        for rule, sequence in states.items():
            assert sequence[0] == "firing"
            assert sequence[-1] == "resolved", rule

    def test_alert_fingerprint_is_deterministic(self):
        _, first = self._run(seed=0)
        _, second = self._run(seed=0)
        assert first.engine.fingerprint() == second.engine.fingerprint()
        assert [e.to_dict() for e in first.engine.log] == [
            e.to_dict() for e in second.engine.log
        ]

    def test_standard_rules_reference_deterministic_signals_only(self):
        # Latency SLIs are wall-clock; a rule over them would break the
        # fingerprint contract. Keep the standard set off them.
        for rule in standard_rules():
            assert not rule.signal.startswith("sli:commit_latency"), rule.name

    def test_probe_without_cycles_fails_verification(self):
        probe = ChaosAlertProbe()
        ok, problems = probe.verify("standard")
        assert not ok and problems
