"""Tests for staleness decay of trust scores."""

import pytest

from repro.errors import TrustError
from repro.trust import SourceTier, TrustEngine, TrustScore
from repro.trust.score import HistoricalReliability


class TestHistoricalDecay:
    def test_decay_toward_prior_moves_to_half(self):
        h = HistoricalReliability()
        for _ in range(30):
            h.record(True)
        high = h.score
        h.decay_toward_prior(0.1)
        assert 0.5 < h.score < high

    def test_full_decay_restores_prior(self):
        h = HistoricalReliability()
        for _ in range(10):
            h.record(False)
        h.decay_toward_prior(1e-9)
        assert h.score == pytest.approx(0.5, abs=1e-3)
        assert h.confidence == pytest.approx(0.0, abs=1e-3)

    def test_factor_one_is_noop(self):
        h = HistoricalReliability()
        h.record(True)
        before = (h.alpha, h.beta)
        h.decay_toward_prior(1.0)
        assert (h.alpha, h.beta) == before

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            HistoricalReliability().decay_toward_prior(0.0)
        with pytest.raises(ValueError):
            HistoricalReliability().decay_toward_prior(1.5)


class TestScoreDecay:
    def test_all_signals_fade_toward_neutral(self):
        t = TrustScore("s")
        for _ in range(20):
            t.update(True, cross_validation=0.95, endorsement=0.9)
        high = t.value
        t.decay_toward_neutral(0.2)
        assert 0.5 < t.value < high
        assert t.last_cross_validation < 0.95

    def test_bad_reputation_also_fades(self):
        t = TrustScore("s")
        for _ in range(20):
            t.update(False, cross_validation=0.05, endorsement=0.1)
        low = t.value
        t.decay_toward_neutral(0.2)
        assert low < t.value < 0.5


class TestEngineTimeDecay:
    def make(self):
        engine = TrustEngine()
        engine.register_source("cam", SourceTier.TRUSTED)
        engine.register_source("mob")
        return engine

    def test_idle_source_decays(self):
        engine = self.make()
        for i in range(20):
            engine.record_validation("mob", True, 4, 0, now=float(i))
        fresh = engine.score("mob")
        updated = engine.apply_time_decay(now=19.0 + 14 * 86400.0, half_life_s=7 * 86400.0)
        assert "mob" in updated
        assert 0.5 < engine.score("mob") < fresh

    def test_active_source_untouched(self):
        engine = self.make()
        engine.record_validation("mob", True, 4, 0, now=100.0)
        updated = engine.apply_time_decay(now=100.0)
        assert updated == {}

    def test_trusted_sources_never_decay(self):
        engine = self.make()
        engine.apply_time_decay(now=1e9)
        assert engine.score("cam") == 1.0

    def test_decay_does_not_release_quarantine(self):
        engine = self.make()
        for i in range(30):
            engine.record_validation("mob", False, 0, 4, now=float(i))
        assert engine.tier("mob") is SourceTier.QUARANTINED
        engine.apply_time_decay(now=30.0 + 365 * 86400.0)
        # The score has faded toward neutral, but the tier stands.
        assert engine.tier("mob") is SourceTier.QUARANTINED
        assert not engine.admit("mob").admitted

    def test_half_life_math(self):
        engine = self.make()
        engine.record_validation("mob", True, 4, 0, now=0.0)
        engine._scores["mob"].last_cross_validation = 1.0
        engine.apply_time_decay(now=86400.0, half_life_s=86400.0)
        # One half-life: the cv signal moved halfway to 0.5.
        assert engine._scores["mob"].last_cross_validation == pytest.approx(0.75)

    def test_invalid_half_life(self):
        with pytest.raises(TrustError):
            self.make().apply_time_decay(now=1.0, half_life_s=0.0)
