"""Tests for repro.analysis.flow — call graph, taint, concurrency, engine.

Fixture trees are written under ``tmp_path`` as a small package and analyzed
through the same entry point the CLI uses, so resolution runs the full
import-alias path (the fixtures are *packages*, not single modules).
"""

import ast
import time

import pytest

from repro.analysis import astcache
from repro.analysis.flow import analyze_paths, build_program
from repro.analysis.flow.callgraph import module_name_for
from pathlib import Path


def write_tree(root, files: dict):
    pkg = root / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    for name, source in files.items():
        target = pkg / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return str(pkg)


def rule_ids(report):
    return [f.rule_id for f in report.findings]


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------


class TestCallGraph:
    def test_module_naming_is_rooted_at_scan_parent(self):
        assert module_name_for(Path("src/repro/util/clock.py"), Path("src/repro")) \
            == "repro.util.clock"
        assert module_name_for(Path("src/repro/__init__.py"), Path("src/repro")) \
            == "repro"

    def test_direct_and_aliased_calls_resolve(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "a.py": "def helper():\n    return 1\n",
            "b.py": (
                "from .a import helper as h\n"
                "def caller():\n"
                "    return h()\n"
            ),
        })
        program = build_program([pkg])
        assert ("pkg.a.helper", False) in program.edges["pkg.b.caller"]

    def test_method_resolves_through_base_class(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "m.py": (
                "class Base:\n"
                "    def shared_thing(self):\n"
                "        return 1\n"
                "class Child(Base):\n"
                "    def go(self):\n"
                "        return self.shared_thing()\n"
            ),
        })
        program = build_program([pkg])
        assert ("pkg.m.Base.shared_thing", False) in program.edges["pkg.m.Child.go"]

    def test_nested_function_indexed_and_resolved(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "n.py": (
                "def outer():\n"
                "    def inner():\n"
                "        return 2\n"
                "    return inner()\n"
            ),
        })
        program = build_program([pkg])
        assert "pkg.n.outer.<locals>.inner" in program.functions
        assert ("pkg.n.outer.<locals>.inner", False) in program.edges["pkg.n.outer"]

    def test_thread_entry_edges(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "t.py": (
                "import threading\n"
                "def worker():\n"
                "    return 1\n"
                "def helper(x):\n"
                "    return x\n"
                "def spawn():\n"
                "    t = threading.Thread(target=worker)\n"
                "    t.start()\n"
                "def fan(parallel_map, items):\n"
                "    return parallel_map(lambda x: helper(x), items)\n"
            ),
        })
        program = build_program([pkg])
        entries = program.thread_entries()
        assert "pkg.t.worker" in entries
        assert "pkg.t.helper" in entries  # through the lambda body

    def test_callgraph_dict_is_json_shaped(self, tmp_path):
        pkg = write_tree(tmp_path, {"a.py": "def f():\n    return 0\n"})
        raw = build_program([pkg]).to_dict()
        assert set(raw) == {"modules", "functions", "edges", "thread_entries"}
        assert "pkg.a.f" in raw["functions"]


# ---------------------------------------------------------------------------
# Taint pass (FLOW5xx)
# ---------------------------------------------------------------------------


SINK = "import json\n\ndef canonical_json(v):\n    return json.dumps(v, sort_keys=True).encode()\n"


class TestTaint:
    def test_acceptance_helper_two_calls_upstream(self, tmp_path):
        """The ISSUE's acceptance case (a): time.time() two calls upstream of
        canonical_json yields exactly one finding with the full chain."""
        pkg = write_tree(tmp_path, {
            "codec.py": SINK,
            "util.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
                "def mk_meta():\n"
                "    return {'at': stamp()}\n"
            ),
            "block.py": (
                "from .codec import canonical_json\n"
                "from .util import mk_meta\n"
                "def seal(payload):\n"
                "    meta = mk_meta()\n"
                "    return canonical_json({'p': payload, 'meta': meta})\n"
            ),
        })
        report = analyze_paths([pkg])
        assert rule_ids(report) == ["FLOW501"]
        (finding,) = report.findings
        assert finding.path.endswith("block.py")
        # Full interprocedural witness: source, both hops, sink.
        trace = "\n".join(finding.trace)
        assert "time.time() [wall clock]" in trace
        assert "stamp()" in trace and "mk_meta()" in trace
        assert "canonical_json() [sink]" in trace
        # And the JSON view carries the same chain.
        assert finding.to_dict()["trace"] == list(finding.trace)

    def test_each_taint_kind_maps_to_its_rule(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "codec.py": SINK,
            "m.py": (
                "import os\n"
                "import random\n"
                "import uuid\n"
                "from .codec import canonical_json\n"
                "def f_random():\n"
                "    return canonical_json(random.random())\n"
                "def f_uuid():\n"
                "    return canonical_json(str(uuid.uuid4()))\n"
                "def f_env():\n"
                "    return canonical_json(os.getenv('HOME'))\n"
                "def f_set(items):\n"
                "    s = set(items)\n"
                "    return canonical_json([x for x in s])\n"
                "def f_float(v):\n"
                "    return canonical_json(f'{v:.2f}')\n"
            ),
        })
        report = analyze_paths([pkg])
        assert sorted(set(rule_ids(report))) == [
            "FLOW502", "FLOW503", "FLOW504", "FLOW505", "FLOW506",
        ]

    def test_sorted_kills_set_order_taint(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "codec.py": SINK,
            "m.py": (
                "from .codec import canonical_json\n"
                "def ok(items):\n"
                "    s = set(items)\n"
                "    return canonical_json(sorted(s))\n"
            ),
        })
        assert analyze_paths([pkg]).findings == []

    def test_len_kills_value_taint(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "codec.py": SINK,
            "m.py": (
                "import os\n"
                "from .codec import canonical_json\n"
                "def ok():\n"
                "    return canonical_json(len(os.getenv('HOME') or ''))\n"
            ),
        })
        assert analyze_paths([pkg]).findings == []

    def test_gmtime_with_argument_is_a_pure_conversion(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "codec.py": SINK,
            "m.py": (
                "import time\n"
                "from .codec import canonical_json\n"
                "def render(ts):\n"
                "    return canonical_json(time.strftime('%Y', time.gmtime(ts)))\n"
            ),
        })
        assert analyze_paths([pkg]).findings == []

    def test_gmtime_without_argument_reads_the_clock(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "codec.py": SINK,
            "m.py": (
                "import time\n"
                "from .codec import canonical_json\n"
                "def render():\n"
                "    return canonical_json(time.strftime('%Y', time.gmtime()))\n"
            ),
        })
        assert rule_ids(analyze_paths([pkg])) == ["FLOW501"]

    def test_taint_through_class_field(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "codec.py": SINK,
            "m.py": (
                "import time\n"
                "from .codec import canonical_json\n"
                "class Node:\n"
                "    def observe(self):\n"
                "        self.last_seen = time.time()\n"
                "    def digestable(self):\n"
                "    	return canonical_json({'seen': self.last_seen})\n"
            ),
        })
        report = analyze_paths([pkg])
        assert rule_ids(report) == ["FLOW501"]
        trace = "\n".join(report.findings[0].trace)
        assert "stored into field self.last_seen" in trace

    def test_taint_through_sink_wrapper(self, tmp_path):
        """A helper that forwards its argument into the sink counts as a
        sink for its callers (param→sink summary)."""
        pkg = write_tree(tmp_path, {
            "codec.py": SINK,
            "m.py": (
                "import time\n"
                "from .codec import canonical_json\n"
                "def persist(doc):\n"
                "    return canonical_json(doc)\n"
                "def bad():\n"
                "    return persist({'t': time.time()})\n"
            ),
        })
        report = analyze_paths([pkg])
        assert rule_ids(report) == ["FLOW501"]
        assert report.findings[0].path.endswith("m.py")
        assert "persist" in "\n".join(report.findings[0].trace)

    def test_pragma_at_sink_line_suppresses(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "codec.py": SINK,
            "m.py": (
                "import time\n"
                "from .codec import canonical_json\n"
                "def bad():\n"
                "    return canonical_json(time.time())  # reprolint: disable=FLOW501\n"
            ),
        })
        assert analyze_paths([pkg]).findings == []

    def test_pragma_at_source_line_suppresses_downstream(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "codec.py": SINK,
            "util.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()  # reprolint: disable=FLOW501\n"
            ),
            "m.py": (
                "from .codec import canonical_json\n"
                "from .util import stamp\n"
                "def bad():\n"
                "    return canonical_json(stamp())\n"
            ),
        })
        assert analyze_paths([pkg]).findings == []

    def test_put_state_is_a_sink_by_method_name(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "m.py": (
                "import uuid\n"
                "def cc(stub):\n"
                "    stub.put_state('k', str(uuid.uuid4()))\n"
            ),
        })
        assert rule_ids(analyze_paths([pkg])) == ["FLOW503"]


# ---------------------------------------------------------------------------
# Concurrency pass (FLOW6xx)
# ---------------------------------------------------------------------------


class TestConcurrency:
    def test_acceptance_lock_order_inversion_across_modules(self, tmp_path):
        """The ISSUE's acceptance case (b): an inversion between two modules
        yields exactly one finding with both directions in the trace."""
        pkg = write_tree(tmp_path, {
            "locks_a.py": (
                "import threading\n"
                "LOCK_A = threading.Lock()\n"
                "def do_a(other):\n"
                "    with LOCK_A:\n"
                "        other.enter_b()\n"
            ),
            "locks_b.py": (
                "import threading\n"
                "from .locks_a import LOCK_A\n"
                "LOCK_B = threading.Lock()\n"
                "class B:\n"
                "    def enter_b(self):\n"
                "        with LOCK_B:\n"
                "            pass\n"
                "    def inverted(self):\n"
                "        with LOCK_B:\n"
                "            with LOCK_A:\n"
                "                pass\n"
            ),
        })
        report = analyze_paths([pkg])
        assert rule_ids(report) == ["FLOW601"]
        (finding,) = report.findings
        assert "lock-order cycle" in finding.message
        trace = "\n".join(finding.trace)
        assert "LOCK_A" in trace and "LOCK_B" in trace
        assert "while holding" in trace

    def test_consistent_lock_order_is_clean(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "m.py": (
                "import threading\n"
                "A = threading.Lock()\n"
                "B = threading.Lock()\n"
                "def one():\n"
                "    with A:\n"
                "        with B:\n"
                "            pass\n"
                "def two():\n"
                "    with A:\n"
                "        with B:\n"
                "            pass\n"
            ),
        })
        assert analyze_paths([pkg]).findings == []

    def test_unguarded_write_on_thread_path(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "m.py": (
                "class Engine:\n"
                "    def __init__(self, parallel_map):\n"
                "        self.hits = 0\n"
                "        self.pm = parallel_map\n"
                "    def fetch(self, item):\n"
                "        self.hits += 1\n"
                "        return item\n"
                "    def fetch_all(self, items):\n"
                "        return self.pm.parallel_map(lambda i: self.fetch(i), items)\n"
            ),
        })
        report = analyze_paths([pkg])
        assert rule_ids(report) == ["FLOW602"]
        assert "self.hits" in report.findings[0].message
        assert "spawned thread" in "\n".join(report.findings[0].trace)

    def test_guarded_write_on_thread_path_is_clean(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "m.py": (
                "import threading\n"
                "class Engine:\n"
                "    def __init__(self, parallel_map):\n"
                "        self.hits = 0\n"
                "        self._lock = threading.Lock()\n"
                "        self.pm = parallel_map\n"
                "    def fetch(self, item):\n"
                "        with self._lock:\n"
                "            self.hits += 1\n"
                "        return item\n"
                "    def fetch_all(self, items):\n"
                "        return self.pm.parallel_map(lambda i: self.fetch(i), items)\n"
            ),
        })
        assert analyze_paths([pkg]).findings == []

    def test_blocking_call_under_lock(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "m.py": (
                "import threading\n"
                "import time\n"
                "LOCK = threading.Lock()\n"
                "def slow():\n"
                "    with LOCK:\n"
                "        time.sleep(0.5)\n"
            ),
        })
        report = analyze_paths([pkg])
        assert rule_ids(report) == ["FLOW603"]
        assert "time.sleep" in report.findings[0].message

    def test_transitive_blocking_under_lock(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "m.py": (
                "import threading\n"
                "import time\n"
                "LOCK = threading.Lock()\n"
                "def wait_for_it():\n"
                "    time.sleep(1)\n"
                "def critical():\n"
                "    with LOCK:\n"
                "        wait_for_it()\n"
            ),
        })
        report = analyze_paths([pkg])
        assert rule_ids(report) == ["FLOW603"]
        trace = "\n".join(report.findings[0].trace)
        assert "critical() calls wait_for_it()" in trace

    def test_future_result_under_lock(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "m.py": (
                "import threading\n"
                "LOCK = threading.Lock()\n"
                "def collect(futures):\n"
                "    with LOCK:\n"
                "        return [f.result() for f in futures]\n"
            ),
        })
        assert rule_ids(analyze_paths([pkg])) == ["FLOW603"]

    def test_dataclass_field_lock_is_recognized(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "m.py": (
                "import threading\n"
                "import time\n"
                "from dataclasses import dataclass, field\n"
                "@dataclass\n"
                "class S:\n"
                "    guard: threading.Lock = field(\n"
                "        default_factory=threading.Lock)\n"
                "    def tick(self):\n"
                "        with self.guard:\n"
                "            time.sleep(1)\n"
            ),
        })
        report = analyze_paths([pkg])
        # The with-region is understood as a lock hold -> FLOW603 fires.
        assert rule_ids(report) == ["FLOW603"]
        assert "S.guard" in report.findings[0].message


# ---------------------------------------------------------------------------
# Engine / repository acceptance
# ---------------------------------------------------------------------------


class TestEngine:
    def test_repo_is_flow_clean_and_fast(self):
        started = time.monotonic()
        report = analyze_paths(["src/repro"])
        elapsed = time.monotonic() - started
        assert report.findings == []
        assert elapsed < 30.0  # acceptance bound; typically a few seconds
        assert report.stats["modules"] > 100
        assert report.stats["thread_entries"] >= 1

    def test_findings_are_sorted_deterministically(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "codec.py": SINK,
            "z.py": (
                "import time\n"
                "from .codec import canonical_json\n"
                "def z():\n"
                "    return canonical_json(time.time())\n"
            ),
            "a.py": (
                "import time\n"
                "from .codec import canonical_json\n"
                "def a():\n"
                "    return canonical_json(time.time())\n"
            ),
        })
        report = analyze_paths([pkg])
        paths = [f.path for f in report.findings]
        assert paths == sorted(paths)


# ---------------------------------------------------------------------------
# AST cache
# ---------------------------------------------------------------------------


class TestAstCache:
    def test_memo_hits_by_content(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n", encoding="utf-8")
        first = astcache.parse_module(target)
        second = astcache.parse_module(target)
        assert second.tree is first.tree  # same object: memo hit
        target.write_text("x = 2\n", encoding="utf-8")
        third = astcache.parse_module(target)
        assert third.tree is not first.tree

    def test_disk_cache_round_trip(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "astcache"
        monkeypatch.setenv("REPRO_AST_CACHE", str(cache_dir))
        target = tmp_path / "m.py"
        target.write_text("def f():\n    return 41\n", encoding="utf-8")
        parsed = astcache.parse_module(target)
        entries = list(cache_dir.glob("*.astpkl"))
        assert len(entries) == 1
        # A second process would load from disk; simulate by clearing memo.
        astcache.clear_memo()
        again = astcache.parse_module(target)
        assert ast.dump(again.tree) == ast.dump(parsed.tree)

    def test_corrupt_disk_entry_falls_back_to_parse(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "astcache"
        monkeypatch.setenv("REPRO_AST_CACHE", str(cache_dir))
        target = tmp_path / "m.py"
        target.write_text("y = 3\n", encoding="utf-8")
        astcache.parse_module(target)
        (entry,) = cache_dir.glob("*.astpkl")
        entry.write_bytes(b"not a pickle")
        astcache.clear_memo()
        parsed = astcache.parse_module(target)  # must not raise
        assert isinstance(parsed.tree, ast.Module)

    def test_syntax_error_is_typed(self, tmp_path):
        from repro.errors import AnalysisError

        target = tmp_path / "bad.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        with pytest.raises(AnalysisError):
            astcache.parse_module(target)
