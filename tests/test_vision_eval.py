"""Tests for detector evaluation against ground truth."""

import pytest

from repro.vision import DroneCamera, SceneGenerator, SimulatedYolo, StaticCamera
from repro.vision.camera import BBox
from repro.vision.eval import EvalResult, evaluate_frame, evaluate_frames, iou
from repro.vision.scene import Vehicle


def make_truth_box(x0, y0, x1, y1, cls="car"):
    vehicle = Vehicle(
        vehicle_id=0, vehicle_class=cls, color_name="white", rgb=(255, 255, 255),
        x=0.0, lane=0, speed=5.0,
    )
    return BBox(x0=x0, y0=y0, x1=x1, y1=y1, vehicle=vehicle)


class TestIoU:
    def test_identical_boxes(self):
        truth = make_truth_box(0, 0, 10, 10)
        assert iou((0, 0, 10, 10), truth) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        truth = make_truth_box(0, 0, 10, 10)
        assert iou((20, 20, 30, 30), truth) == 0.0

    def test_half_overlap(self):
        truth = make_truth_box(0, 0, 10, 10)
        assert iou((5, 0, 15, 10), truth) == pytest.approx(50 / 150)


class TestEvalResult:
    def test_metric_formulas(self):
        r = EvalResult(true_positives=8, false_positives=2, false_negatives=4, correct_class=6)
        assert r.precision == pytest.approx(0.8)
        assert r.recall == pytest.approx(8 / 12)
        assert r.classification_accuracy == pytest.approx(0.75)
        assert 0 < r.f1 < 1

    def test_empty_is_zero(self):
        r = EvalResult()
        assert r.precision == r.recall == r.f1 == r.classification_accuracy == 0.0


class TestFrameEvaluation:
    def make_frames(self, kind="static", n=10, seed=51):
        gen = SceneGenerator(seed=seed, density=4.0)
        if kind == "static":
            camera = StaticCamera("eval-cam")
        else:
            # High-altitude profile: the regime where drone capture pays.
            camera = DroneCamera("eval-drone", seed=seed, base_altitude_m=90.0)
        frames = []
        scene = gen.scene(f"eval-{seed}")
        for _ in range(n):
            frames.append(camera.capture(scene))
            scene = scene.advance(0.5)
        return frames

    def _pooled(self, kind, yolo_seed=5):
        """Aggregate over several scenes for statistically stable metrics."""
        total = EvalResult()
        for seed in (51, 52, 53):
            partial = evaluate_frames(
                self.make_frames(kind, seed=seed), SimulatedYolo(seed=yolo_seed)
            )
            total.true_positives += partial.true_positives
            total.false_positives += partial.false_positives
            total.false_negatives += partial.false_negatives
            total.correct_class += partial.correct_class
        return total

    def test_static_detector_high_precision(self):
        frames = self.make_frames("static")
        result = evaluate_frames(frames, SimulatedYolo(seed=5))
        # The simulated detector never hallucinates boxes, so precision
        # is 1.0 by construction; recall is the interesting number.
        assert result.precision == pytest.approx(1.0)
        assert result.recall > 0.5

    def test_static_recall_beats_drone(self):
        static = self._pooled("static")
        drone = self._pooled("drone")
        assert static.recall > drone.recall

    def test_static_classification_beats_drone(self):
        static = self._pooled("static", yolo_seed=6)
        drone = self._pooled("drone", yolo_seed=6)
        assert static.classification_accuracy >= drone.classification_accuracy

    def test_confusion_diagonal_dominates(self):
        frames = self.make_frames("static")
        result = evaluate_frames(frames, SimulatedYolo(seed=7))
        diagonal = sum(c for (t, p), c in result.confusion.items() if t == p)
        off = sum(c for (t, p), c in result.confusion.items() if t != p)
        assert diagonal > off

    def test_empty_frame(self):
        gen = SceneGenerator(seed=52, density=0.0001)
        frame = StaticCamera("empty").capture(gen.scene("empty"))
        if not frame.truth:
            result = evaluate_frame(frame, [])
            assert result.true_positives == 0
            assert result.false_negatives == 0

    def test_counts_balance(self):
        frames = self.make_frames("static", n=5)
        yolo = SimulatedYolo(seed=8)
        result = evaluate_frames(frames, yolo)
        n_truth = sum(len(f.truth) for f in frames)
        assert result.true_positives + result.false_negatives == n_truth
