"""Tests for multihash and CID encoding/parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.cid import CID, CODEC_DAG_PB, CODEC_RAW
from repro.crypto.hashing import SHA2_256, SHA2_512, digest
from repro.crypto.multihash import CODE_SHA2_256, Multihash
from repro.errors import EncodingError


class TestMultihash:
    def test_of_computes_correct_digest(self):
        mh = Multihash.of(b"hello")
        assert mh.code == CODE_SHA2_256
        assert mh.digest == digest(b"hello")

    def test_encode_structure(self):
        mh = Multihash.of(b"hello")
        encoded = mh.encode()
        assert encoded[0] == 0x12  # sha2-256 code
        assert encoded[1] == 32  # digest length
        assert len(encoded) == 34

    def test_roundtrip(self):
        mh = Multihash.of(b"data")
        assert Multihash.decode(mh.encode()) == mh

    def test_sha512_roundtrip(self):
        mh = Multihash.of(b"data", algo=SHA2_512)
        assert Multihash.decode(mh.encode()) == mh
        assert mh.algo == SHA2_512

    def test_matches(self):
        mh = Multihash.of(b"data")
        assert mh.matches(b"data")
        assert not mh.matches(b"Data")

    def test_unknown_code_rejected(self):
        with pytest.raises(EncodingError):
            Multihash.decode(b"\x99\x20" + b"\x00" * 32)

    def test_wrong_size_rejected(self):
        with pytest.raises(EncodingError):
            Multihash.decode(b"\x12\x10" + b"\x00" * 16)

    def test_truncated_digest_rejected(self):
        with pytest.raises(EncodingError):
            Multihash.decode(b"\x12\x20" + b"\x00" * 10)

    def test_trailing_bytes_rejected(self):
        mh = Multihash.of(b"x")
        with pytest.raises(EncodingError):
            Multihash.decode(mh.encode() + b"\x00")


class TestCIDv0:
    def test_starts_with_qm(self):
        cid = CID.for_data(b"block", codec=CODEC_DAG_PB, version=0)
        assert cid.encode().startswith("Qm")
        assert len(cid.encode()) == 46

    def test_parse_roundtrip(self):
        cid = CID.for_data(b"block", codec=CODEC_DAG_PB, version=0)
        assert CID.parse(cid.encode()) == cid

    def test_v0_requires_dag_pb(self):
        with pytest.raises(EncodingError):
            CID.for_data(b"x", codec=CODEC_RAW, version=0)

    def test_v0_requires_sha256(self):
        with pytest.raises(EncodingError):
            CID.for_data(b"x", codec=CODEC_DAG_PB, version=0, algo=SHA2_512)

    def test_to_v1_preserves_hash(self):
        v0 = CID.for_data(b"block", codec=CODEC_DAG_PB, version=0)
        v1 = v0.to_v1()
        assert v1.version == 1
        assert v1.multihash == v0.multihash
        assert v1.encode().startswith("b")


class TestCIDv1:
    def test_starts_with_b(self):
        assert CID.for_data(b"raw bytes").encode().startswith("b")

    def test_parse_roundtrip(self):
        cid = CID.for_data(b"raw bytes")
        assert CID.parse(cid.encode()) == cid

    def test_same_data_same_cid(self):
        assert CID.for_data(b"x") == CID.for_data(b"x")

    def test_different_data_different_cid(self):
        assert CID.for_data(b"x") != CID.for_data(b"y")

    def test_codec_distinguishes_cids(self):
        assert CID.for_data(b"x", codec=CODEC_RAW) != CID.for_data(b"x", codec=CODEC_DAG_PB)

    def test_verifies(self):
        cid = CID.for_data(b"payload")
        assert cid.verifies(b"payload")
        assert not cid.verifies(b"other")

    def test_hashable_and_ordered(self):
        a, b = CID.for_data(b"a"), CID.for_data(b"b")
        assert len({a, b, CID.for_data(b"a")}) == 2
        assert (a < b) or (b < a)

    def test_unrecognized_string_rejected(self):
        with pytest.raises(EncodingError):
            CID.parse("zNotACid")

    def test_garbage_base32_rejected(self):
        with pytest.raises(EncodingError):
            CID.parse("b0123!!")

    def test_codec_name(self):
        assert CID.for_data(b"x").codec_name == "raw"


@given(st.binary(max_size=256))
def test_property_cid_roundtrip(data):
    cid = CID.for_data(data)
    parsed = CID.parse(cid.encode())
    assert parsed == cid
    assert parsed.verifies(data)


@given(st.binary(max_size=64), st.binary(max_size=64))
def test_property_cid_injective(d1, d2):
    if d1 != d2:
        assert CID.for_data(d1) != CID.for_data(d2)
