"""Tests for anomaly detection and multi-source consensus."""

import pytest

from repro.errors import TrustError
from repro.trust import (
    AnomalyDetector,
    MultiSourceConsensus,
    SourceTier,
    TrustEngine,
)
from repro.trust.crossval import Observation


def obs(source="s", t=0.0, lat=12.97, lon=77.59, **counts):
    return Observation(source_id=source, lat=lat, lon=lon, timestamp=t, counts=counts)


class TestAnomalyDetector:
    def feed_normal(self, det, source="s", n=20, cars=4):
        for i in range(n):
            report = det.observe(obs(source=source, t=100.0 * i, car=cars + (i % 2)))
        return report

    def test_no_baseline_passes_everything(self):
        det = AnomalyDetector()
        report = det.observe(obs(car=1000))
        assert not report.is_anomalous  # first observation, no history

    def test_normal_traffic_not_flagged(self):
        det = AnomalyDetector()
        report = self.feed_normal(det)
        assert not report.is_anomalous
        assert report.max_z < 4.0

    def test_count_spike_flagged(self):
        det = AnomalyDetector()
        self.feed_normal(det)
        report = det.observe(obs(t=5000.0, car=60))
        assert report.is_anomalous
        assert any("count[car]" in r for r in report.reasons)

    def test_phantom_class_flagged(self):
        det = AnomalyDetector()
        self.feed_normal(det)
        report = det.observe(obs(t=5000.0, car=4, truck=25))
        assert report.is_anomalous
        assert any("count[truck]" in r for r in report.reasons)

    def test_burst_flagged_without_baseline(self):
        det = AnomalyDetector(burst_max_reports=5, burst_window_s=10.0)
        report = None
        for i in range(8):
            report = det.observe(obs(t=1000.0 + i * 0.5, car=3))
        assert report.is_anomalous
        assert any("burst" in r for r in report.reasons)

    def test_sources_isolated(self):
        det = AnomalyDetector()
        self.feed_normal(det, source="steady")
        # A different source with no history is not judged by steady's norm.
        report = det.observe(obs(source="newcomer", car=50))
        assert not report.is_anomalous

    def test_window_bounds_history(self):
        det = AnomalyDetector(window=10)
        self.feed_normal(det, n=50)
        assert det.history_len("s") == 10

    def test_recovery_after_regime_change(self):
        """A legitimately busier road stops being 'anomalous' as the
        window refills with the new normal."""
        det = AnomalyDetector(window=12, min_history=8)
        self.feed_normal(det, n=15, cars=3)
        flagged = det.observe(obs(t=9000.0, car=30)).is_anomalous
        assert flagged
        for i in range(15):
            det.observe(obs(t=10000.0 + 100 * i, car=30))
        assert not det.observe(obs(t=30000.0, car=31)).is_anomalous


class TestMultiSourceConsensus:
    def test_requires_min_sources(self):
        msc = MultiSourceConsensus()
        with pytest.raises(TrustError):
            msc.evaluate([obs(source="a", car=3), obs(source="b", car=3)])

    def test_agreeing_sources_no_outliers(self):
        msc = MultiSourceConsensus()
        result = msc.evaluate([
            obs(source="a", car=4), obs(source="b", car=4), obs(source="c", car=5),
        ])
        assert result.outliers == ()
        assert result.consensus_counts["car"] == 4.0

    def test_single_liar_outvoted(self):
        msc = MultiSourceConsensus()
        result = msc.evaluate([
            obs(source="a", car=4),
            obs(source="b", car=5),
            obs(source="c", car=4),
            obs(source="liar", car=0, truck=12),
        ])
        assert result.outliers == ("liar",)
        assert result.consensus_counts["car"] == 4.0
        assert result.consensus_counts["truck"] == 0.0

    def test_latest_observation_per_source_wins(self):
        msc = MultiSourceConsensus()
        result = msc.evaluate([
            obs(source="a", t=0.0, car=100),  # superseded
            obs(source="a", t=1.0, car=4),
            obs(source="b", car=4),
            obs(source="c", car=4),
        ])
        assert result.n_sources == 3
        assert result.outliers == ()

    def test_empty_counts_all_agree(self):
        msc = MultiSourceConsensus()
        result = msc.evaluate([obs(source=s) for s in "abc"])
        assert result.outliers == ()

    def test_apply_to_trust_penalizes_outlier(self):
        engine = TrustEngine()
        for s in ("a", "b", "c", "liar"):
            engine.register_source(s)
        msc = MultiSourceConsensus()
        before = engine.score("liar")
        for round_no in range(10):
            result = msc.evaluate([
                obs(source="a", t=float(round_no), car=4),
                obs(source="b", t=float(round_no), car=4),
                obs(source="c", t=float(round_no), car=5),
                obs(source="liar", t=float(round_no), car=0, truck=9),
            ])
            msc.apply_to_trust(engine, result)
        assert engine.score("liar") < before
        assert engine.score("a") > engine.score("liar")

    def test_apply_skips_trusted_and_unregistered(self):
        engine = TrustEngine()
        engine.register_source("cam", SourceTier.TRUSTED)
        engine.register_source("m")
        msc = MultiSourceConsensus()
        result = msc.evaluate([
            obs(source="cam", car=4), obs(source="m", car=4), obs(source="ghost", car=4),
        ])
        updated = msc.apply_to_trust(engine, result)
        assert set(updated) == {"m"}
