"""Tests for the vision pipeline: scenes, cameras, detector, metadata."""

import json

import numpy as np
import pytest

from repro.vision import (
    DroneCamera,
    MetadataExtractor,
    SceneGenerator,
    SimulatedYolo,
    StaticCamera,
    TrafficDataset,
    VEHICLE_CLASSES,
)


class TestSceneGenerator:
    def test_deterministic(self):
        gen = SceneGenerator(seed=1)
        s1 = gen.scene("a")
        s2 = SceneGenerator(seed=1).scene("a")
        assert s1.vehicles == s2.vehicles

    def test_different_scenes_differ(self):
        gen = SceneGenerator(seed=1)
        assert gen.scene("a").vehicles != gen.scene("b").vehicles

    def test_density_scales_vehicle_count(self):
        sparse = SceneGenerator(seed=1, density=1.0)
        dense = SceneGenerator(seed=1, density=8.0)
        n_sparse = np.mean([len(sparse.scene(f"s{i}").vehicles) for i in range(20)])
        n_dense = np.mean([len(dense.scene(f"s{i}").vehicles) for i in range(20)])
        assert n_dense > 3 * n_sparse

    def test_vehicle_classes_valid(self):
        scene = SceneGenerator(seed=2, density=6.0).scene("x")
        assert all(v.vehicle_class in VEHICLE_CLASSES for v in scene.vehicles)

    def test_advance_moves_and_wraps(self):
        scene = SceneGenerator(seed=3, density=5.0).scene("x")
        later = scene.advance(10.0)
        assert later.timestamp == scene.timestamp + 10.0
        assert all(0 <= v.x < scene.road_length for v in later.vehicles)
        moved = sum(
            1 for a, b in zip(scene.vehicles, later.vehicles) if a.x != b.x
        )
        assert moved == len(scene.vehicles)

    def test_counts(self):
        scene = SceneGenerator(seed=4, density=5.0).scene("x")
        counts = scene.counts()
        assert sum(counts.values()) == len(scene.vehicles)


class TestCameras:
    def scene(self):
        return SceneGenerator(seed=5, density=4.0).scene("cam-test")

    def test_static_frame_shape_and_type(self):
        frame = StaticCamera("cam-1").capture(self.scene())
        assert frame.image.shape == (108, 192, 3)
        assert frame.image.dtype == np.uint8
        assert frame.source_kind == "static"
        assert frame.blur_px == 0.0

    def test_static_capture_renders_vehicles(self):
        frame = StaticCamera("cam-1").capture(self.scene())
        assert len(frame.truth) > 0
        box = frame.truth[0]
        patch = frame.image[box.y0 : box.y1, box.x0 : box.x1]
        # Rendered patch should be closer to the vehicle color than the road.
        target = np.array(box.vehicle.rgb, dtype=np.float32)
        assert np.linalg.norm(patch.reshape(-1, 3).mean(axis=0) - target) < 60

    def test_drone_frames_blurrier_and_coarser(self):
        scene = self.scene()
        drone = DroneCamera("d-1", seed=1)
        drone_frames = [drone.capture(scene) for _ in range(20)]
        assert any(f.blur_px > 0 for f in drone_frames)
        assert all(f.meters_per_px > 0.05 for f in drone_frames)
        # Altitude wanders: GSD is not constant.
        assert len({round(f.meters_per_px, 4) for f in drone_frames}) > 1

    def test_drone_altitude_bounded(self):
        drone = DroneCamera("d-2", seed=2)
        for _ in range(50):
            drone.capture(self.scene())
        assert 25.0 <= drone._altitude <= 140.0

    def test_frame_ids_unique(self):
        cam = StaticCamera("cam-1")
        scene = self.scene()
        ids = {cam.capture(scene).frame_id for _ in range(5)}
        assert len(ids) == 5

    def test_frame_bytes(self):
        frame = StaticCamera("cam-1").capture(self.scene())
        assert len(frame.to_bytes()) == 108 * 192 * 3


class TestSimulatedYolo:
    def test_detects_most_vehicles_in_clean_frames(self):
        scene = SceneGenerator(seed=6, density=4.0).scene("det")
        frame = StaticCamera("cam-1").capture(scene)
        detections = SimulatedYolo(seed=1).detect(frame)
        assert len(detections) >= 0.5 * len(frame.truth)

    def test_static_confidences_high(self):
        scene = SceneGenerator(seed=7, density=4.0).scene("det2")
        frame = StaticCamera("cam-1").capture(scene)
        detections = SimulatedYolo(seed=1).detect(frame)
        stats = SimulatedYolo(seed=1).confidence_stats(detections)
        assert stats["mean"] > 0.6

    def test_figure3_shape_static_beats_drone(self):
        """The Figure 3 claim: static capture yields higher, more stable
        confidence than drone capture of comparable scenes."""
        gen = SceneGenerator(seed=8, density=4.0)
        yolo = SimulatedYolo(seed=2)
        static_conf, drone_conf = [], []
        for i in range(15):
            scene = gen.scene(f"cmp-{i}")
            static_conf += [d.confidence for d in yolo.detect(StaticCamera("c", seed=i).capture(scene))]
            drone_conf += [d.confidence for d in yolo.detect(DroneCamera("d", seed=i).capture(scene))]
        assert np.mean(static_conf) > np.mean(drone_conf)
        assert np.std(static_conf) < np.std(drone_conf)

    def test_confidence_bounds(self):
        scene = SceneGenerator(seed=9, density=6.0).scene("b")
        frame = DroneCamera("d", seed=3).capture(scene)
        for d in SimulatedYolo(seed=3).detect(frame):
            assert 0.0 < d.confidence < 1.0

    def test_deterministic_per_seed(self):
        scene = SceneGenerator(seed=10, density=4.0).scene("d")
        frame = StaticCamera("cam", seed=5).capture(scene)
        d1 = SimulatedYolo(seed=4).detect(frame)
        d2 = SimulatedYolo(seed=4).detect(frame)
        assert d1 == d2

    def test_empty_frame_no_detections(self):
        scene = SceneGenerator(seed=11, density=0.0001).scene("empty")
        frame = StaticCamera("cam").capture(scene)
        if not frame.truth:
            assert SimulatedYolo().detect(frame) == []

    def test_stats_empty(self):
        assert SimulatedYolo().confidence_stats([])["n"] == 0


class TestMetadataExtractor:
    def make_record(self):
        scene = SceneGenerator(seed=12, density=4.0).scene("meta")
        frame = StaticCamera("cam-7").capture(scene)
        detections = SimulatedYolo(seed=5).detect(frame)
        return MetadataExtractor().extract(frame, detections), frame, detections

    def test_figure2_record_shape(self):
        record, frame, detections = self.make_record()
        doc = record.to_dict()
        assert doc["camera_id"] == "cam-7"
        assert "lat" in doc["location"] and "lon" in doc["location"]
        assert len(doc["detections"]) == len(detections)
        if detections:
            det = doc["detections"][0]
            assert set(det) == {"vehicle_class", "confidence", "color", "bbox"}
        assert sum(doc["counts"].values()) == len(detections)

    def test_json_roundtrip(self):
        record, _, _ = self.make_record()
        parsed = json.loads(record.to_json())
        assert parsed == record.to_dict()

    def test_data_hash_binds_frame(self):
        record, frame, detections = self.make_record()
        import hashlib

        assert record.data_hash == hashlib.sha256(frame.to_bytes()).hexdigest()

    def test_extraction_time_recorded(self):
        record, _, _ = self.make_record()
        assert record.extraction_ms > 0

    def test_size_grows_with_detections(self):
        scene = SceneGenerator(seed=13, density=8.0).scene("big")
        empty_scene = SceneGenerator(seed=13, density=0.0001).scene("small")
        cam = StaticCamera("cam")
        yolo = SimulatedYolo(seed=6)
        extractor = MetadataExtractor()
        big = extractor.extract(cam.capture(scene), yolo.detect(cam.capture(scene)))
        small = extractor.extract(cam.capture(empty_scene), yolo.detect(cam.capture(empty_scene)))
        assert big.size_bytes() >= small.size_bytes()

    def test_observation_bridge(self):
        record, _, _ = self.make_record()
        obs = MetadataExtractor().to_observation(record)
        assert obs.source_id == "cam-7"
        assert obs.counts == record.counts


class TestTrafficDataset:
    def test_52_videos_default(self):
        assert TrafficDataset().n_videos == 52

    def test_clip_shape(self):
        ds = TrafficDataset(seed=1, frames_per_video=4)
        clip = ds.static_clip(0)
        assert len(clip) == 4
        assert clip.source_kind == "static"
        assert clip.camera_id == "cam-00"

    def test_deterministic(self):
        c1 = TrafficDataset(seed=2, frames_per_video=2).static_clip(3)
        c2 = TrafficDataset(seed=2, frames_per_video=2).static_clip(3)
        assert (c1.frames[0].image == c2.frames[0].image).all()

    def test_different_indices_different_sites(self):
        ds = TrafficDataset(seed=3, frames_per_video=1)
        a, b = ds.static_clip(0), ds.static_clip(1)
        assert (a.frames[0].lat, a.frames[0].lon) != (b.frames[0].lat, b.frames[0].lon)

    def test_drone_clips(self):
        ds = TrafficDataset(seed=4, frames_per_video=2)
        clip = ds.drone_clip(0)
        assert clip.source_kind == "drone"

    def test_index_bounds(self):
        ds = TrafficDataset(seed=5)
        with pytest.raises(IndexError):
            ds.static_clip(52)
        with pytest.raises(IndexError):
            ds.drone_clip(-1)

    def test_iterator_count(self):
        ds = TrafficDataset(seed=6, frames_per_video=1)
        assert len(list(ds.static_clips(3))) == 3
