"""Direct tests for the ordering services (batching, dedup, delivery)."""

import pytest

from repro.errors import OrderingError
from repro.fabric import BftOrderer, SoloOrderer
from repro.fabric.orderer import _BatchCutter
from repro.util.clock import SimClock

from tests.fabric_helpers import make_network


class TestBatchCutter:
    def test_invalid_batch_size(self):
        with pytest.raises(OrderingError):
            _BatchCutter(0, SimClock())

    def test_cut_on_empty_is_noop(self):
        cutter = _BatchCutter(4, SimClock())
        delivered = []
        cutter.register_delivery(lambda b, r: delivered.append(b))
        cutter.cut()
        assert delivered == []
        assert cutter.blocks_cut == 0


class TestSoloOrderer:
    def test_batch_boundary_cuts_automatically(self):
        net, channel, alice = make_network(max_batch_size=3)
        for i in range(7):
            channel.invoke_async(alice, "kv", "put", [f"k{i}", "v"])
        # Two full blocks cut automatically; one pending transaction.
        assert channel.orderer.blocks_cut == 2
        channel.flush()
        assert channel.orderer.blocks_cut == 3
        assert channel.height() == 3

    def test_flush_idempotent(self):
        net, channel, alice = make_network()
        channel.invoke(alice, "kv", "put", ["k", "v"])
        before = channel.orderer.blocks_cut
        channel.flush()
        channel.flush()
        assert channel.orderer.blocks_cut == before

    def test_blocks_chain_across_batches(self):
        net, channel, alice = make_network(max_batch_size=2)
        for i in range(4):
            channel.invoke_async(alice, "kv", "put", [f"k{i}", "v"])
        channel.flush()
        peer = next(iter(channel.peers.values()))
        peer.ledger.verify_chain()
        assert peer.ledger.height == 2


class TestBftOrderer:
    def test_duplicate_submission_rejected(self):
        net, channel, alice = make_network(consensus="bft")
        proposal, responses = channel.endorse(alice, "kv", "put", ["k", "v"])
        tx = channel.assemble(proposal, responses)
        channel.orderer.submit(tx)
        with pytest.raises(OrderingError, match="already submitted"):
            channel.orderer.submit(tx)

    def test_decisions_recorded_per_tx(self):
        net, channel, alice = make_network(consensus="bft")
        result = channel.invoke(alice, "kv", "put", ["k", "v"])
        decision = channel.orderer.decisions[result.tx_id]
        assert decision.accepted
        assert len(decision.votes) >= 3

    def test_multiple_channels_isolated(self):
        """Two channels on one network share nothing."""
        from repro.fabric import FabricNetwork

        from tests.fabric_helpers import KvChaincode

        net = FabricNetwork()
        ch1 = net.create_channel("one", orgs=["org1"])
        ch2 = net.create_channel("two", orgs=["org1"])
        ch1.install_chaincode(KvChaincode())
        ch2.install_chaincode(KvChaincode())
        alice = net.register_identity("alice", "org1")
        ch1.invoke(alice, "kv", "put", ["shared-key", "one"])
        ch2.invoke(alice, "kv", "put", ["shared-key", "two"])
        import json

        assert json.loads(ch1.query(alice, "kv", "get", ["shared-key"]))["value"] == "one"
        assert json.loads(ch2.query(alice, "kv", "get", ["shared-key"]))["value"] == "two"
        assert ch1.height() == 1 and ch2.height() == 1
