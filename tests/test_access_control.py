"""Tests for the access-control chaincode and its retrieval-path enforcement."""

import json

import pytest

from repro.core import Client, Framework, FrameworkConfig
from repro.errors import AccessDeniedError, ChaincodeError
from repro.trust import SourceTier

META = {"timestamp": 1.0, "detections": []}


@pytest.fixture(scope="module")
def env():
    framework = Framework(FrameworkConfig(consensus="solo", orgs=("police", "city")))
    police = Client(
        framework, framework.register_source("police-cam", org="police", tier=SourceTier.TRUSTED)
    )
    city = Client(
        framework, framework.register_source("city-analyst", org="city", tier=SourceTier.TRUSTED)
    )
    return framework, police, city


class TestAclChaincode:
    def test_open_entry_readable_by_anyone(self, env):
        framework, police, city = env
        receipt = police.submit(b"open frame", dict(META))
        assert city.retrieve(receipt.entry_id).data == b"open frame"

    def test_restricted_entry_denied_to_outsider(self, env):
        framework, police, city = env
        receipt = police.submit(b"sensitive frame", dict(META))
        police.restrict(receipt.entry_id, ["police"])
        with pytest.raises(AccessDeniedError):
            city.retrieve(receipt.entry_id)
        # Owner still reads it.
        assert police.retrieve(receipt.entry_id).data == b"sensitive frame"

    def test_denial_is_audited_on_chain(self, env):
        framework, police, city = env
        receipt = police.submit(b"audited frame", dict(META))
        police.restrict(receipt.entry_id, ["police"])
        with pytest.raises(AccessDeniedError):
            city.retrieve(receipt.entry_id)
        log = police.access_log(receipt.entry_id)
        assert any(e["org"] == "city" and e["outcome"] == "denied" for e in log)

    def test_grant_widens_access(self, env):
        framework, police, city = env
        receipt = police.submit(b"later shared", dict(META))
        police.restrict(receipt.entry_id, ["police"])
        with pytest.raises(AccessDeniedError):
            city.retrieve(receipt.entry_id)
        police.restrict(receipt.entry_id, ["police", "city"])
        assert city.retrieve(receipt.entry_id).data == b"later shared"

    def test_only_owner_org_may_change_acl(self, env):
        framework, police, city = env
        receipt = police.submit(b"mine", dict(META))
        police.restrict(receipt.entry_id, ["police"])
        with pytest.raises(ChaincodeError, match="only owner org"):
            city.restrict(receipt.entry_id, ["city"])

    def test_owner_always_in_allowed_set(self, env):
        framework, police, city = env
        receipt = police.submit(b"self-lockout-guard", dict(META))
        acl = police.restrict(receipt.entry_id, ["city"])  # forgot themselves
        assert "police" in acl["allowed_orgs"]
        assert police.retrieve(receipt.entry_id).verified

    def test_acl_validation(self, env):
        framework, police, _ = env
        receipt = police.submit(b"x", dict(META))
        with pytest.raises(ChaincodeError):
            police.restrict(receipt.entry_id, [])
        with pytest.raises(ChaincodeError):
            framework.channel.invoke(
                police.identity, "access_control", "set_acl", [receipt.entry_id, "{bad"]
            )

    def test_check_access_query(self, env):
        framework, police, _ = env
        receipt = police.submit(b"q", dict(META))
        police.restrict(receipt.entry_id, ["police"])
        out = json.loads(
            framework.channel.query(
                police.identity, "access_control", "check_access",
                [receipt.entry_id, "city"],
            )
        )
        assert out["allowed"] is False

    def test_log_access_outcome_validated(self, env):
        framework, police, _ = env
        with pytest.raises(ChaincodeError, match="granted.*denied|'granted' or 'denied'"):
            framework.channel.invoke(
                police.identity, "access_control", "log_access", ["e", "maybe"]
            )
