"""Cross-cutting failure-injection tests: the system under partial failure."""

import json

import pytest

from repro.consensus import Behaviour
from repro.core import Client, Framework, FrameworkConfig
from repro.errors import BlockNotFoundError, EndorsementError
from repro.fabric.snapshot import states_agree
from repro.ipfs import FixedSizeChunker, IpfsCluster
from repro.ipfs.replication import ReplicationManager
from repro.trust import SourceTier
from repro.util.rng import rng_for

from tests.fabric_helpers import make_network

META = {"timestamp": 1.0, "detections": []}


class TestEndorsementFailures:
    def test_offline_org_peer_fails_endorsement_cleanly(self):
        net, channel, alice = make_network()
        for peer in channel.org_peers("org2"):
            peer.online = False
        # AnyOf policy: org1 alone satisfies it; explicit org2 demand fails.
        with pytest.raises(EndorsementError):
            channel.endorse(alice, "kv", "put", ["k", "v"], endorsing_orgs=["org2"])

    def test_surviving_org_keeps_channel_alive(self):
        net, channel, alice = make_network(peers_per_org=2)
        for peer in channel.org_peers("org2"):
            peer.online = False
        result = channel.invoke(alice, "kv", "put", ["k", "v"], endorsing_orgs=["org1"])
        assert result.ok

    def test_second_peer_of_org_takes_over(self):
        net, channel, alice = make_network(peers_per_org=2)
        first = channel.org_peers("org1")[0]
        first.online = False
        result = channel.invoke(alice, "kv", "put", ["k", "v"])
        assert result.ok


class TestCommitOutageRecovery:
    def test_peer_down_across_many_blocks_catches_up(self):
        net, channel, alice = make_network(peers_per_org=2)
        lagging = list(channel.peers.values())[2]
        lagging.online = False
        for i in range(6):
            channel.invoke(alice, "kv", "put", [f"k{i}", str(i)])
        lagging.online = True
        channel.anti_entropy()
        reference = list(channel.peers.values())[0]
        assert lagging.ledger.height == reference.ledger.height
        assert states_agree(lagging, reference)

    def test_catchup_replays_mvcc_identically(self):
        net, channel, alice = make_network(peers_per_org=2, max_batch_size=2)
        lagging = list(channel.peers.values())[3]
        lagging.online = False
        # Create a block containing a known MVCC conflict.
        channel.invoke(alice, "kv", "put", ["c", "0"])
        channel.invoke_async(alice, "kv", "increment", ["c"])
        channel.invoke_async(alice, "kv", "increment", ["c"])
        channel.flush()
        lagging.online = True
        channel.anti_entropy()
        reference = list(channel.peers.values())[0]
        # The lagging peer re-validated and reached the same per-tx codes.
        for num in range(reference.ledger.height):
            assert (
                lagging.ledger.block(num).validation_codes
                == reference.ledger.block(num).validation_codes
            )


class TestBftValidatorFailuresMidstream:
    def test_validator_crash_mid_stream(self):
        framework = Framework(FrameworkConfig(consensus="bft", n_validators=4))
        client = Client(
            framework, framework.register_source("mid-cam", tier=SourceTier.TRUSTED)
        )
        client.submit(b"before crash", dict(META))
        # Crash one validator (f=1): subsequent submissions must still commit.
        orderer = framework.channel.orderer
        orderer.cluster.network.set_node_up("validator-2", False)
        receipt = client.submit(b"after crash", dict(META))
        assert receipt.ok

    def test_byzantine_validator_from_genesis(self):
        framework = Framework(FrameworkConfig(consensus="bft", n_validators=4))
        orderer = framework.channel.orderer
        orderer.cluster.replicas["validator-1"].behaviour = Behaviour.WRONG_DIGEST
        client = Client(
            framework, framework.register_source("byz-cam", tier=SourceTier.TRUSTED)
        )
        receipt = client.submit(b"tolerated", dict(META))
        assert receipt.ok


class TestIpfsFailures:
    def test_provider_loss_makes_content_unreachable_then_repair_restores(self):
        cluster = IpfsCluster(n_nodes=4, chunker=FixedSizeChunker(200))
        mgr = ReplicationManager(cluster, replication_factor=2)
        data = rng_for(1, "fail").bytes(1500)
        root = cluster.add(data, node="ipfs-0").cid
        mgr.replicate(root)
        # Kill every current holder but one; repair from the survivor.
        holders = mgr.status(root).holders
        for victim in holders[:-1]:
            cluster.remove_node(victim)
        assert mgr.repair()  # did work
        status = mgr.status(root)
        assert status.healthy
        assert cluster.node(status.holders[0]).cat_local(root) == data

    def test_all_holders_lost_is_a_hard_failure(self):
        cluster = IpfsCluster(n_nodes=3, chunker=FixedSizeChunker(200))
        data = rng_for(2, "fail").bytes(800)
        root = cluster.add(data, node="ipfs-0").cid  # only ipfs-0 holds it
        cluster.remove_node("ipfs-0")
        with pytest.raises(BlockNotFoundError):
            cluster.cat(root, node="ipfs-1")

    def test_retrieval_survives_one_ipfs_node_loss_with_framework(self):
        framework = Framework(FrameworkConfig(consensus="solo", n_ipfs_nodes=3))
        client = Client(
            framework, framework.register_source("ha-cam", tier=SourceTier.TRUSTED)
        )
        receipt = client.submit(b"replicate me" * 100, dict(META))
        from repro.crypto.cid import CID

        mgr = ReplicationManager(framework.ipfs, replication_factor=2)
        status = mgr.replicate(CID.parse(receipt.cid))
        # Lose one replica; retrieval still verifies.
        framework.ipfs.remove_node(status.holders[0])
        result = client.retrieve(receipt.entry_id)
        assert result.verified and result.data == b"replicate me" * 100


class TestNetworkPartitionDuringConsensus:
    def test_partition_stalls_then_heal_recovers(self):
        from repro.consensus import BftCluster
        from repro.net import ConstantLatency, SimNetwork

        net = SimNetwork(latency=ConstantLatency(base=0.001))
        cluster = BftCluster(n_replicas=4, network=net, view_timeout=0.5)
        # Split 2/2: no side has a 2f+1=3 quorum.
        net.partition(["validator-0", "validator-1"], ["validator-2", "validator-3"])
        request = cluster.submit("partitioned")
        cluster.run(until=2.0)
        assert not cluster.agreement_reached(request.request_id)
        net.heal()
        retry = cluster.submit("after heal")
        cluster.run(until=20.0)
        assert cluster.agreement_reached(retry.request_id)
