"""Cross-cutting failure-injection tests: the system under partial failure."""

import json

import pytest

from repro.consensus import Behaviour
from repro.core import Client, Framework, FrameworkConfig
from repro.errors import BlockNotFoundError, EndorsementError
from repro.fabric.snapshot import states_agree
from repro.ipfs import FixedSizeChunker, IpfsCluster
from repro.ipfs.replication import ReplicationManager
from repro.trust import SourceTier
from repro.util.rng import rng_for

from tests.fabric_helpers import make_network

META = {"timestamp": 1.0, "detections": []}


class TestEndorsementFailures:
    def test_offline_org_peer_fails_endorsement_cleanly(self):
        net, channel, alice = make_network()
        for peer in channel.org_peers("org2"):
            peer.online = False
        # AnyOf policy: org1 alone satisfies it; explicit org2 demand fails.
        with pytest.raises(EndorsementError):
            channel.endorse(alice, "kv", "put", ["k", "v"], endorsing_orgs=["org2"])

    def test_surviving_org_keeps_channel_alive(self):
        net, channel, alice = make_network(peers_per_org=2)
        for peer in channel.org_peers("org2"):
            peer.online = False
        result = channel.invoke(alice, "kv", "put", ["k", "v"], endorsing_orgs=["org1"])
        assert result.ok

    def test_second_peer_of_org_takes_over(self):
        net, channel, alice = make_network(peers_per_org=2)
        first = channel.org_peers("org1")[0]
        first.online = False
        result = channel.invoke(alice, "kv", "put", ["k", "v"])
        assert result.ok


class TestCommitOutageRecovery:
    def test_peer_down_across_many_blocks_catches_up(self):
        net, channel, alice = make_network(peers_per_org=2)
        lagging = list(channel.peers.values())[2]
        lagging.online = False
        for i in range(6):
            channel.invoke(alice, "kv", "put", [f"k{i}", str(i)])
        lagging.online = True
        channel.anti_entropy()
        reference = list(channel.peers.values())[0]
        assert lagging.ledger.height == reference.ledger.height
        assert states_agree(lagging, reference)

    def test_catchup_replays_mvcc_identically(self):
        net, channel, alice = make_network(peers_per_org=2, max_batch_size=2)
        lagging = list(channel.peers.values())[3]
        lagging.online = False
        # Create a block containing a known MVCC conflict.
        channel.invoke(alice, "kv", "put", ["c", "0"])
        channel.invoke_async(alice, "kv", "increment", ["c"])
        channel.invoke_async(alice, "kv", "increment", ["c"])
        channel.flush()
        lagging.online = True
        channel.anti_entropy()
        reference = list(channel.peers.values())[0]
        # The lagging peer re-validated and reached the same per-tx codes.
        for num in range(reference.ledger.height):
            assert (
                lagging.ledger.block(num).validation_codes
                == reference.ledger.block(num).validation_codes
            )


class TestBftValidatorFailuresMidstream:
    def test_validator_crash_mid_stream(self):
        framework = Framework(FrameworkConfig(consensus="bft", n_validators=4))
        client = Client(
            framework, framework.register_source("mid-cam", tier=SourceTier.TRUSTED)
        )
        client.submit(b"before crash", dict(META))
        # Crash one validator (f=1): subsequent submissions must still commit.
        orderer = framework.channel.orderer
        orderer.cluster.network.set_node_up("validator-2", False)
        receipt = client.submit(b"after crash", dict(META))
        assert receipt.ok

    def test_byzantine_validator_from_genesis(self):
        framework = Framework(FrameworkConfig(consensus="bft", n_validators=4))
        orderer = framework.channel.orderer
        orderer.cluster.replicas["validator-1"].behaviour = Behaviour.WRONG_DIGEST
        client = Client(
            framework, framework.register_source("byz-cam", tier=SourceTier.TRUSTED)
        )
        receipt = client.submit(b"tolerated", dict(META))
        assert receipt.ok


class TestIpfsFailures:
    def test_provider_loss_makes_content_unreachable_then_repair_restores(self):
        cluster = IpfsCluster(n_nodes=4, chunker=FixedSizeChunker(200))
        mgr = ReplicationManager(cluster, replication_factor=2)
        data = rng_for(1, "fail").bytes(1500)
        root = cluster.add(data, node="ipfs-0").cid
        mgr.replicate(root)
        # Kill every current holder but one; repair from the survivor.
        holders = mgr.status(root).holders
        for victim in holders[:-1]:
            cluster.remove_node(victim)
        assert mgr.repair()  # did work
        status = mgr.status(root)
        assert status.healthy
        assert cluster.node(status.holders[0]).cat_local(root) == data

    def test_all_holders_lost_is_a_hard_failure(self):
        cluster = IpfsCluster(n_nodes=3, chunker=FixedSizeChunker(200))
        data = rng_for(2, "fail").bytes(800)
        root = cluster.add(data, node="ipfs-0").cid  # only ipfs-0 holds it
        cluster.remove_node("ipfs-0")
        with pytest.raises(BlockNotFoundError):
            cluster.cat(root, node="ipfs-1")

    def test_retrieval_survives_one_ipfs_node_loss_with_framework(self):
        framework = Framework(FrameworkConfig(consensus="solo", n_ipfs_nodes=3))
        client = Client(
            framework, framework.register_source("ha-cam", tier=SourceTier.TRUSTED)
        )
        receipt = client.submit(b"replicate me" * 100, dict(META))
        from repro.crypto.cid import CID

        mgr = ReplicationManager(framework.ipfs, replication_factor=2)
        status = mgr.replicate(CID.parse(receipt.cid))
        # Lose one replica; retrieval still verifies.
        framework.ipfs.remove_node(status.holders[0])
        result = client.retrieve(receipt.entry_id)
        assert result.verified and result.data == b"replicate me" * 100


class TestNetworkPartitionDuringConsensus:
    def test_partition_stalls_then_heal_recovers(self):
        from repro.consensus import BftCluster
        from repro.net import ConstantLatency, SimNetwork

        net = SimNetwork(latency=ConstantLatency(base=0.001))
        cluster = BftCluster(n_replicas=4, network=net, view_timeout=0.5)
        # Split 2/2: no side has a 2f+1=3 quorum.
        net.partition(["validator-0", "validator-1"], ["validator-2", "validator-3"])
        request = cluster.submit("partitioned")
        cluster.run(until=2.0)
        assert not cluster.agreement_reached(request.request_id)
        net.heal()
        retry = cluster.submit("after heal")
        cluster.run(until=20.0)
        assert cluster.agreement_reached(retry.request_id)


class TestChaosScenarioDriven:
    """End-to-end failure injection through the ChaosScenario runner: the
    same seeded fault schedules the CLI and CI run, asserted in-process."""

    def _fresh_registry(self):
        from repro.obs.metrics import MetricsRegistry, set_registry

        registry = MetricsRegistry()
        set_registry(registry)
        return registry

    def test_partition_heal_anti_entropy_catches_everyone_up(self):
        from repro.chaos import ChaosScenario, HealPartition, Partition

        self._fresh_registry()
        scenario = ChaosScenario(
            name="partition-heal",
            config=FrameworkConfig(consensus="bft", peers_per_org=2, resilience_seed=1),
            faults=[
                Partition(
                    at_cycle=4,
                    sides=(("validator-0", "validator-1"),
                           ("validator-2", "validator-3")),
                ),
                HealPartition(at_cycle=7),
            ],
            n_cycles=16,
            seed=1,
        )
        report = scenario.run()
        assert report.data_loss == 0
        by_cycle = {c.cycle: c for c in report.cycles}
        assert not by_cycle[4].submitted        # no quorum on either side
        assert by_cycle[15].submitted           # healed and drained
        # After the run every cycle's own retrieve agreed with its payload,
        # and the final sweep (which runs anti_entropy first) saw no loss —
        # the lagging peers caught up.

    def test_ipfs_crash_mid_run_fails_over_to_replicas(self):
        from repro.chaos import ChaosScenario, IpfsNodeCrash

        registry = self._fresh_registry()
        scenario = ChaosScenario(
            name="crash-failover",
            config=FrameworkConfig(n_ipfs_nodes=3, resilience_seed=2),
            faults=[
                IpfsNodeCrash(at_cycle=2, peer_id="ipfs-0"),
                IpfsNodeCrash(at_cycle=5, peer_id="ipfs-1"),
            ],
            n_cycles=10,
            seed=2,
        )
        report = scenario.run()
        # Entries written before the crashes are re-read afterwards from
        # the surviving replicas — nothing degrades, nothing is lost.
        assert report.data_loss == 0
        assert all(not c.degraded for c in report.cycles)
        assert report.submitted_ok == 10

    def test_mvcc_conflict_storm_retries_to_success(self):
        from repro.chaos import ChaosScenario, MessageChaosOn

        registry = self._fresh_registry()
        scenario = ChaosScenario(
            name="retry-storm",
            config=FrameworkConfig(
                consensus="bft", peers_per_org=2, n_ipfs_nodes=3, resilience_seed=3
            ),
            faults=[
                MessageChaosOn(at_cycle=2, seed=3, drop_rate=0.45),
                MessageChaosOn(at_cycle=8, seed=4, drop_rate=0.0),
            ],
            n_cycles=14,
            seed=3,
        )
        report = scenario.run()
        assert report.data_loss == 0
        counters = registry.snapshot()["counters"]
        assert any(k.startswith("retries_total") for k in counters)
        # Once the storm lifts, submissions recover.
        assert all(c.submitted for c in report.cycles if c.cycle >= 11)

    def test_breaker_opens_under_sustained_failure_then_half_opens(self):
        from repro.chaos import ChaosScenario, ValidatorCrash, ValidatorRestart

        registry = self._fresh_registry()
        scenario = ChaosScenario(
            name="breaker-cycle",
            config=FrameworkConfig(
                consensus="bft", resilience_seed=4,
                retry_max_attempts=2, breaker_failure_threshold=4,
            ),
            faults=[
                # Losing 2 of 4 validators destroys the 2f+1 quorum: every
                # submit fails until the restarts, tripping the breaker.
                ValidatorCrash(at_cycle=3, name="validator-2"),
                ValidatorCrash(at_cycle=3, name="validator-3"),
                ValidatorRestart(at_cycle=9, name="validator-2"),
                ValidatorRestart(at_cycle=9, name="validator-3"),
            ],
            n_cycles=18,
            seed=4,
        )
        report = scenario.run()
        counters = registry.snapshot()["counters"]
        assert counters.get('circuit_transitions_total{dep="fabric",to="open"}', 0) >= 1
        assert counters.get(
            'circuit_transitions_total{dep="fabric",to="half_open"}', 0
        ) >= 1
        assert counters.get('circuit_transitions_total{dep="fabric",to="closed"}', 0) >= 1
        assert report.data_loss == 0
        assert report.cycles[-1].submitted      # recovered after restart

    def test_same_seed_reproduces_the_same_recovery_trace(self):
        from repro.chaos import ChaosScenario, IpfsNodeCrash, MessageChaosOn

        def run_once():
            self._fresh_registry()
            return ChaosScenario(
                name="repro-trace",
                config=FrameworkConfig(
                    consensus="bft", peers_per_org=2, n_ipfs_nodes=3,
                    resilience_seed=6,
                ),
                faults=[
                    MessageChaosOn(at_cycle=1, seed=6, drop_rate=0.3),
                    IpfsNodeCrash(at_cycle=4, peer_id="ipfs-2"),
                ],
                n_cycles=12,
                seed=6,
            ).run()

        first, second = run_once(), run_once()
        assert first.fingerprint() == second.fingerprint()
        assert [c.key() for c in first.cycles] == [c.key() for c in second.cycles]
