"""Chaos engineering: seeded fault injection drives the whole stack and the
system must come back — zero data loss, deterministic recovery traces."""

import pytest

from repro.chaos import (
    ChaosScenario,
    IpfsNodeCrash,
    MessageChaosOn,
    NetChaosInjector,
    get_scenario,
)
from repro.core import FrameworkConfig
from repro.errors import ReproError
from repro.net import FaultAction
from repro.net.message import Message
from repro.net.simnet import SimNetwork
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry


@pytest.fixture(autouse=True)
def _fresh_registry():
    set_registry(MetricsRegistry())
    yield
    set_registry(MetricsRegistry())


def _msg(i=0):
    return Message(src="a", dst="b", payload=i)


class TestNetChaosInjector:
    def test_same_seed_same_decision_stream(self):
        a = NetChaosInjector(3, drop_rate=0.2, duplicate_rate=0.1, delay_rate=0.1)
        b = NetChaosInjector(3, drop_rate=0.2, duplicate_rate=0.1, delay_rate=0.1)
        assert [a(_msg(i)) for i in range(200)] == [b(_msg(i)) for i in range(200)]

    def test_different_seeds_diverge(self):
        a = NetChaosInjector(3, drop_rate=0.5)
        b = NetChaosInjector(4, drop_rate=0.5)
        assert [a(_msg(i)) for i in range(64)] != [b(_msg(i)) for i in range(64)]

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            NetChaosInjector(0, drop_rate=0.6, duplicate_rate=0.6)

    def test_zero_rates_never_fault(self):
        injector = NetChaosInjector(0)
        assert all(not a.drop and not a.duplicate and a.extra_delay_s == 0.0
                   for a in (injector(_msg(i)) for i in range(50)))


class TestSimnetFaultInjection:
    def _network_pair(self):
        net = SimNetwork()
        inbox = []
        net.register("a", lambda m: None)
        net.register("b", inbox.append)
        return net, inbox

    def test_drop_action_suppresses_delivery(self):
        net, inbox = self._network_pair()
        net.fault_injector = lambda m: FaultAction(drop=True)
        net.send("a", "b", 0)
        net.run()
        assert inbox == []
        assert net.stats.dropped_chaos == 1

    def test_duplicate_action_delivers_twice(self):
        net, inbox = self._network_pair()
        net.fault_injector = lambda m: FaultAction(duplicate=True)
        net.send("a", "b", 0)
        net.run()
        assert len(inbox) == 2
        assert net.stats.duplicated_chaos == 1

    def test_delay_action_postpones_delivery(self):
        net, inbox = self._network_pair()
        net.fault_injector = lambda m: FaultAction(extra_delay_s=5.0)
        net.send("a", "b", 0)
        net.run(until=1.0)
        assert inbox == []
        net.run()
        assert len(inbox) == 1
        assert net.stats.delayed_chaos == 1

    def test_removing_the_injector_restores_clean_delivery(self):
        net, inbox = self._network_pair()
        net.fault_injector = lambda m: FaultAction(drop=True)
        net.send("a", "b", 0)
        net.fault_injector = None
        net.send("a", "b", 1)
        net.run()
        assert len(inbox) == 1


class TestStandardScenario:
    """The acceptance scenario: 1 of 3 IPFS nodes down, 1 fabric peer per
    org offline, 10% message drops (with a brief 50% storm) — 50 cycles."""

    @pytest.fixture(scope="class")
    def run(self):
        registry = MetricsRegistry()
        set_registry(registry)
        return get_scenario("standard", seed=0, n_cycles=50).run(), registry

    @pytest.fixture()
    def report(self, run):
        return run[0]

    def test_zero_data_loss(self, report):
        assert report.data_loss == 0
        assert report.stored == report.submitted_ok

    def test_most_cycles_submit_despite_faults(self, report):
        assert report.submitted_ok >= 40

    def test_recovers_after_the_drop_storm(self, report):
        # The storm window (cycles 20-23) may fail; the tail must recover.
        tail = [c for c in report.cycles if c.cycle >= 30]
        assert all(c.submitted and c.retrieved for c in tail)

    def test_failures_are_typed_never_uncaught(self, report):
        for c in report.cycles:
            for err in (c.submit_error, c.retrieve_error, c.repair_error):
                assert err == "" or err.endswith("Error")

    def test_retries_and_breaker_transitions_are_visible(self, run):
        counters = run[1].snapshot()["counters"]
        assert any(k.startswith("retries_total") for k in counters)
        assert counters.get('circuit_transitions_total{dep="fabric",to="open"}', 0) >= 1
        assert counters.get('circuit_transitions_total{dep="fabric",to="closed"}', 0) >= 1
        assert counters.get('chaos_faults_total{kind="MessageChaosOn"}', 0) == 3


class TestDeterminism:
    def test_same_seed_reproduces_the_identical_fingerprint(self):
        fingerprints = []
        for _ in range(2):
            set_registry(MetricsRegistry())  # metrics must not leak between runs
            report = get_scenario("standard", seed=11, n_cycles=30).run()
            fingerprints.append(report.fingerprint())
        assert fingerprints[0] == fingerprints[1]

    def test_fault_schedule_is_part_of_the_fingerprint(self):
        set_registry(MetricsRegistry())
        with_faults = get_scenario("standard", seed=0, n_cycles=10).run()
        set_registry(MetricsRegistry())
        quiet = ChaosScenario(
            name="standard",
            config=FrameworkConfig(
                consensus="bft", peers_per_org=2, n_ipfs_nodes=3, resilience_seed=0
            ),
            faults=[],
            n_cycles=10,
            seed=0,
        )
        assert with_faults.fingerprint() != quiet.run().fingerprint()


class TestRecoveryScenarios:
    def test_corruption_is_quarantined_and_refetched(self):
        report = get_scenario("corruption", seed=0, n_cycles=15).run()
        assert report.data_loss == 0
        counters = get_registry().snapshot()["counters"]
        assert counters.get("ipfs_quarantined_blocks_total", 0) >= 1

    def test_partition_heals_and_submissions_resume(self):
        report = get_scenario("partition", seed=0, n_cycles=25).run()
        assert report.data_loss == 0
        by_cycle = {c.cycle: c for c in report.cycles}
        assert not by_cycle[10].submitted          # quorum destroyed
        assert by_cycle[24].submitted              # healed + breaker recovered
        counters = get_registry().snapshot()["counters"]
        assert counters.get('circuit_transitions_total{dep="fabric",to="closed"}', 0) >= 1

    def test_churn_never_loses_data(self):
        report = get_scenario("churn", seed=0, n_cycles=35).run()
        assert report.data_loss == 0
        assert report.submitted_ok == 35

    def test_ipfs_crash_leaves_reads_replica_served(self):
        scenario = ChaosScenario(
            name="ipfs-crash",
            config=FrameworkConfig(n_ipfs_nodes=3, resilience_seed=0),
            faults=[IpfsNodeCrash(at_cycle=3, peer_id="ipfs-0")],
            n_cycles=8,
            seed=0,
        )
        report = scenario.run()
        assert report.data_loss == 0
        assert all(not c.degraded for c in report.cycles)


class TestCrashRecoveryScenario:
    """Tentpole acceptance: amnesia crashes, torn writes, WAL corruption and
    an orderer crash — and the system still loses nothing, deterministically."""

    @pytest.fixture(scope="class")
    def run(self):
        registry = MetricsRegistry()
        set_registry(registry)
        return get_scenario("crash_recovery", seed=0).run(), registry

    def test_zero_data_loss_across_real_crashes(self, run):
        report, _ = run
        assert report.data_loss == 0
        assert report.stored == report.submitted_ok == 40

    def test_both_recovery_kinds_are_exercised(self, run):
        report, registry = run
        counters = registry.snapshot()["counters"]
        assert counters.get('recoveries_total{kind="wal_replay"}', 0) >= 1
        assert counters.get('recoveries_total{kind="state_transfer"}', 0) >= 1
        assert counters.get("checkpoints_total", 0) >= 1
        assert counters.get('chaos_faults_total{kind="AmnesiaCrash"}', 0) == 4

    def test_wal_damage_is_counted_by_mode(self, run):
        _, registry = run
        counters = registry.snapshot()["counters"]
        damage = sum(
            v for k, v in counters.items() if k.startswith("wal_damage_total")
        )
        assert damage >= 2  # the two DiskFaults must both bite

    def test_recovery_details_enter_the_fingerprint(self, run):
        report, _ = run
        recovery_cycles = [
            c for c in report.cycles
            if any(f.startswith("AmnesiaCrash:") for f in c.faults)
        ]
        assert len(recovery_cycles) == 4
        details = " ".join(f for c in recovery_cycles for f in c.faults)
        assert "wal_replay" in details
        assert "state_transfer" in details

    def test_same_seed_same_fingerprint(self):
        fingerprints = []
        for _ in range(2):
            set_registry(MetricsRegistry())
            report = get_scenario("crash_recovery", seed=0, n_cycles=21).run()
            fingerprints.append(report.fingerprint())
        assert fingerprints[0] == fingerprints[1]

    def test_runs_clean_under_all_sanitizers(self):
        import dataclasses

        from repro.analysis.runtime import active_sanitizer

        set_registry(MetricsRegistry())
        scenario = get_scenario("crash_recovery", seed=0, n_cycles=21)
        scenario.config = dataclasses.replace(scenario.config, sanitize="all")
        report = scenario.run()
        assert report.data_loss == 0
        san_report = active_sanitizer().finalize()
        assert san_report.ok, san_report.render()
        assert san_report.checks["recovery"] >= 1

    def test_alert_lifecycle_fires_and_resolves(self):
        from repro.obs.alerts import ChaosAlertProbe

        set_registry(MetricsRegistry())
        probe = ChaosAlertProbe()
        scenario = get_scenario("crash_recovery", seed=0)
        scenario.on_cycle = probe
        scenario.run()
        ok, problems = probe.verify("crash_recovery")
        assert ok, problems


class TestScenarioRegistry:
    def test_unknown_scenario_is_a_typed_error(self):
        with pytest.raises(ReproError, match="unknown chaos scenario"):
            get_scenario("nope")

    def test_custom_drop_storm_still_converges(self):
        scenario = ChaosScenario(
            name="storm",
            config=FrameworkConfig(
                consensus="bft", peers_per_org=2, n_ipfs_nodes=3, resilience_seed=5
            ),
            faults=[MessageChaosOn(at_cycle=1, seed=5, drop_rate=0.25)],
            n_cycles=15,
            seed=5,
        )
        report = scenario.run()
        assert report.data_loss == 0
