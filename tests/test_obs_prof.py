"""Tests for the cost-center profiler: no-op mode, nesting, attribution,
lock/queue telemetry, exports, determinism, and span reconciliation."""

import threading
import time
import tracemalloc

import pytest

from repro import obs
from repro.analysis import lockcheck
from repro.analysis.lockcheck import (
    GuardedShared,
    LockRegistry,
    TimedLock,
    guard_shared,
    make_lock,
)
from repro.obs.prof import (
    _NOOP,
    Profiler,
    chrome_trace_tree,
    collapsed_stacks,
    invoke_coverage,
    profiled,
    profiled_call,
    profiling,
    run_queued,
)
from repro.util.parallel import parallel_map


@pytest.fixture(autouse=True)
def _no_global_leak():
    yield
    obs.disable()
    obs.disable_profiler()
    lockcheck.deactivate()
    obs.set_registry(obs.MetricsRegistry())


class TestDisabledMode:
    def test_disabled_returns_shared_probe(self):
        obs.disable_profiler()
        assert profiled("x") is profiled("y") is _NOOP

    def test_disabled_probe_supports_add_bytes(self):
        obs.disable_profiler()
        with profiled("x") as pf:
            pf.add_bytes(123)  # must not raise in either mode

    def test_disabled_allocates_nothing(self):
        obs.disable_profiler()

        def call():
            with profiled("x") as pf:
                pf.add_bytes(1)

        call()  # warm-up
        tracemalloc.start()
        for _ in range(5000):
            call()
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert current < 2048, f"disabled profiling leaked {current} B"

    def test_decorator_checks_enablement_at_call_time(self):
        obs.disable_profiler()

        @profiled_call("deco.center")
        def work():
            return 7

        assert work() == 7  # decorated while disabled: plain call
        profiler = obs.enable_profiler()
        assert work() == 7
        stats = {s.center: s for s in profiler.center_stats()}
        assert stats["deco.center"].calls == 1


class TestRecording:
    def test_calls_seconds_bytes_accumulate(self):
        profiler = obs.enable_profiler()
        for _ in range(3):
            with profiled("crypto.hash", n_bytes=10) as pf:
                pf.add_bytes(5)
        stats = {s.center: s for s in profiler.center_stats()}
        stat = stats["crypto.hash"]
        assert stat.calls == 3
        assert stat.n_bytes == 3 * 15
        assert stat.inclusive_s >= 0.0
        assert stat.exclusive_s == pytest.approx(stat.inclusive_s)

    def test_nested_frames_subtract_child_time(self):
        profiler = obs.enable_profiler()
        with profiled("outer"):
            with profiled("inner"):
                time.sleep(0.01)
        stats = {s.center: s for s in profiler.center_stats()}
        outer, inner = stats["outer"], stats["inner"]
        assert inner.inclusive_s >= 0.01
        assert outer.inclusive_s >= inner.inclusive_s
        # The sleep is the child's: the parent keeps only its own slice.
        assert outer.exclusive_s <= outer.inclusive_s - inner.inclusive_s + 1e-6

    def test_node_attribution_via_span_attrs(self):
        profiler = obs.enable_profiler()
        tracer = obs.enable()
        with tracer.span("fabric.peer.commit", attrs={"peer": "peer0.org1"}):
            with tracer.span("inner.stage"):  # no node attr: walk to parent
                with profiled("state.apply"):
                    pass
        with profiled("serialize.decode"):  # outside any span
            pass
        stats = {(s.node, s.center) for s in profiler.center_stats()}
        assert ("peer0.org1", "state.apply") in stats
        assert ("client", "serialize.decode") in stats

    def test_scoped_profiling_restores_previous(self):
        outer = obs.enable_profiler()
        with profiling() as inner:
            assert obs.get_profiler() is inner
        assert obs.get_profiler() is outer


class TestLockTelemetry:
    def test_make_lock_records_wait_and_hold(self):
        registry = obs.MetricsRegistry()
        obs.set_registry(registry)
        profiler = obs.enable_profiler(registry=registry)
        lock = make_lock("test.lock")
        with lock:
            pass
        locks = {s.name: s for s in profiler.lock_stats()}
        assert locks["test.lock"].acquires == 1
        assert locks["test.lock"].wait_s >= 0.0
        assert locks["test.lock"].hold_s > 0.0
        text = registry.render()
        assert 'lock_wait_seconds_total{name="test.lock"}' in text
        assert 'lock_hold_seconds_total{name="test.lock"}' in text

    def test_contended_lock_accumulates_wait(self):
        profiler = obs.enable_profiler()
        lock = make_lock("contended")
        acquired = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                acquired.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=holder)
        t.start()
        assert acquired.wait(timeout=5.0)
        threading.Timer(0.02, release.set).start()
        with lock:  # blocks until the timer releases the holder
            pass
        t.join()
        locks = {s.name: s for s in profiler.lock_stats()}
        assert locks["contended"].acquires == 2
        assert locks["contended"].wait_s > 0.0
        centers = {s.center for s in profiler.center_stats()}
        assert "lock.wait" in centers

    def test_hostile_lock_name_escapes_in_exposition(self):
        registry = obs.MetricsRegistry()
        obs.set_registry(registry)
        obs.enable_profiler(registry=registry)
        hostile = 'we"ird\\na\nme'
        lock = make_lock(hostile)
        with lock:
            pass
        text = registry.render()
        # Raw injection would break the exposition line; the escaped forms
        # must appear instead of a literal quote/newline inside the value.
        assert 'name="we\\"ird\\\\na\\nme"' in text
        for line in text.splitlines():
            assert not line.startswith("me\"}")

    def test_timed_lock_composes_with_sanitizer_tracking(self):
        registry = LockRegistry()
        lockcheck.activate(registry)
        obs.enable_profiler()
        lock = make_lock("guarded")
        assert isinstance(lock, TimedLock)  # profiler wrap over TrackedLock
        shared = guard_shared({}, lock, "guarded.map")
        assert isinstance(shared, GuardedShared)
        with lock:
            shared["k"] = 1  # guarded write: no finding
        assert not registry.findings()

    def test_disabled_mode_uses_plain_locks(self):
        obs.disable_profiler()
        lock = make_lock("plain")
        assert not isinstance(lock, TimedLock)


class TestQueueTelemetry:
    def test_parallel_map_records_queue_wait(self):
        profiler = obs.enable_profiler()
        out = parallel_map(
            lambda x: x * 2, list(range(8)), max_workers=4, queue="test.queue"
        )
        assert out == [x * 2 for x in range(8)]
        queues = {s.name: s for s in profiler.queue_stats()}
        assert queues["test.queue"].tasks == 8
        assert queues["test.queue"].wait_s >= 0.0

    def test_run_queued_severs_caller_frame(self):
        profiler = obs.enable_profiler()
        with profiled("outer"):
            run_queued("q", profiler.clock(), lambda x: x, 1)
        stats = {s.center: s for s in profiler.center_stats()}
        # queue.wait recorded as a root frame, not under "outer".
        paths = {path for (_node, path) in profiler.path_stats()}
        assert ("queue.wait",) in paths
        assert stats["outer"].exclusive_s == pytest.approx(stats["outer"].inclusive_s)


class TestDeterminism:
    def _chaos_fingerprint(self):
        from repro.chaos import get_scenario

        registry = obs.MetricsRegistry()
        obs.set_registry(registry)
        with profiling(registry=registry) as profiler:
            tracer = obs.enable(registry=registry)
            try:
                get_scenario("standard", seed=0, n_cycles=6).run()
            finally:
                obs.disable()
            return profiler.fingerprint(), invoke_coverage(tracer, profiler)

    def test_fingerprint_deterministic_across_seeded_runs(self):
        fp1, cov1 = self._chaos_fingerprint()
        fp2, cov2 = self._chaos_fingerprint()
        assert fp1 == fp2
        assert cov1 > 0.0 and cov2 > 0.0

    def test_fingerprint_ignores_timing(self):
        p1, p2 = Profiler(), Profiler()
        p1._record("c", ("c",), 1.0, 1.0, 0)
        p2._record("c", ("c",), 99.0, 99.0, 0)
        assert p1.fingerprint() == p2.fingerprint()
        p2._record("c", ("c",), 0.0, 0.0, 0)
        assert p1.fingerprint() != p2.fingerprint()


class TestReconciliation:
    def _traced_invoke(self, n_items=2):
        from repro.core import Client, Framework, FrameworkConfig
        from repro.trust import SourceTier

        registry = obs.MetricsRegistry()
        obs.set_registry(registry)
        profiler = obs.enable_profiler(registry=registry)
        tracer = obs.enable(registry=registry)
        framework = Framework(FrameworkConfig())
        client = Client(
            framework, framework.register_source("cam", tier=SourceTier.TRUSTED)
        )
        for i in range(n_items):
            receipt = client.submit(
                b"payload %d " % i * 64,
                {"timestamp": float(i), "camera_id": "cam", "detections": []},
            )
            client.retrieve(receipt.entry_id)
        return tracer, profiler

    def test_span_frames_bounded_by_span_wall_time(self):
        tracer, profiler = self._traced_invoke()
        spans = {s.span_id: s for s in tracer.finished}
        for span_id, centers in profiler.span_center_seconds().items():
            span = spans.get(span_id)
            if span is None:
                continue  # span still open or evicted
            attributed = sum(seconds for _calls, seconds in centers.values())
            assert attributed <= span.duration_s + 1e-4, (
                f"{span.name}: {attributed}s of frames in a "
                f"{span.duration_s}s span"
            )

    def test_invoke_coverage_in_unit_range_and_substantial(self):
        tracer, profiler = self._traced_invoke()
        coverage = invoke_coverage(tracer, profiler)
        assert coverage <= 1.0 + 1e-6
        # CI gates >= 0.9 on the standard scenario; keep the unit bound
        # conservative so a slow box doesn't flake it.
        assert coverage >= 0.7, f"coverage collapsed to {coverage:.3f}"

    def test_coverage_zero_without_tracer_or_profiler(self):
        assert invoke_coverage(None, Profiler()) == 0.0
        assert invoke_coverage(obs.Tracer(), None) == 0.0


class TestBreakdownIntegration:
    def test_stage_center_rows_and_other_residual(self):
        tracer, profiler = TestReconciliation()._traced_invoke(1)
        breakdown = obs.pipeline_breakdown(tracer, profiler=profiler)
        storage = breakdown["storage"]
        assert storage.stages, "no storage stages resolved"
        centered = [s for s in storage.stages if s.centers]
        assert centered, "no stage gained cost-center rows"
        saw_other = False
        for stage in centered:
            others = [c for c in stage.centers if c.center == "other"]
            explained = sum(c.total_s for c in stage.centers if c.center != "other")
            if others:
                # The residual is exactly the unexplained share, never
                # negative (over-attribution from frames whose window
                # crosses nested spans simply yields no row).
                saw_other = True
                assert others[0].total_s > 0.0
                assert others[0].total_s == pytest.approx(
                    stage.total_s - explained, abs=1e-4
                )
        assert saw_other, "no stage surfaced an explicit 'other' residual"
        rendered = obs.render_breakdown(breakdown)
        assert " . " in rendered

    def test_breakdown_without_profiler_has_no_center_rows(self):
        tracer, _profiler = TestReconciliation()._traced_invoke(1)
        obs.disable_profiler()
        breakdown = obs.pipeline_breakdown(tracer)
        assert all(not s.centers for s in breakdown["storage"].stages)


class TestExports:
    def _small_profile(self):
        profiler = obs.enable_profiler()
        tracer = obs.enable()
        with tracer.span("fabric.peer.commit", attrs={"peer": "p0"}):
            with profiled("outer"):
                with profiled("inner"):
                    pass
        obs.disable()
        return profiler

    def test_collapsed_stacks_format(self):
        profiler = self._small_profile()
        lines = collapsed_stacks(profiler)
        assert lines
        for line in lines:
            frames, _, weight = line.rpartition(" ")
            assert frames and int(weight) >= 0
        assert any(line.startswith("p0;outer;inner ") for line in lines)

    def test_chrome_trace_tree_structure(self):
        profiler = self._small_profile()
        doc = chrome_trace_tree(profiler)
        events = doc["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"outer", "inner"} <= names
        procs = [e for e in events if e["ph"] == "M"]
        assert any(e["args"]["name"] == "p0" for e in procs)
        outer = next(e for e in events if e["ph"] == "X" and e["name"] == "outer")
        inner = next(e for e in events if e["ph"] == "X" and e["name"] == "inner")
        # Child laid out within the parent's synthetic window.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_report_series_shape(self):
        profiler = self._small_profile()
        series = profiler.report().series()
        assert series["outer_calls"] == [1.0]
        assert series["inner_calls"] == [1.0]
        assert all(
            key.endswith("_calls") or key.endswith("_excl_s") for key in series
        )

    def test_exports_empty_when_disabled(self):
        obs.disable_profiler()
        assert collapsed_stacks(None) == []
        assert chrome_trace_tree(None)["traceEvents"] == []
