"""LedgerExplorer: browsing, provenance reconstruction, and the audit.

The provenance tests regression-guard the batch-ingest attribution fix:
the trail the explorer reconstructs from committed blocks must equal the
trail the chaincode serves from world state, for single-item submits and
batch ingest alike — including each event's per-source actor.
"""

import json

import pytest

from repro.core import BatchIngestor, Client, Framework, FrameworkConfig
from repro.errors import ObservabilityError
from repro.obs.explorer import LedgerExplorer
from repro.trust import SourceTier
from repro.workloads.traffic import IngestItem


@pytest.fixture()
def deployment():
    framework = Framework(FrameworkConfig(peers_per_org=2, n_ipfs_nodes=3))
    client = Client(
        framework, framework.register_source("cam-solo", tier=SourceTier.TRUSTED)
    )
    return framework, client


def _submit(client, n=3):
    ids = []
    for i in range(n):
        receipt = client.submit(
            b"explorer payload %d " % i * 16,
            {"timestamp": float(i), "detections": []},
        )
        ids.append(receipt.entry_id)
    client.framework.channel.flush()
    return ids


class TestBrowsing:
    def test_blocks_and_block_view_agree(self, deployment):
        framework, client = deployment
        _submit(client)
        explorer = LedgerExplorer(framework.channel)
        blocks = explorer.blocks()
        assert len(blocks) == explorer.height()
        assert [b["number"] for b in blocks] == list(range(explorer.height()))
        assert blocks[2] == explorer.block_view(2)
        for block in blocks:
            assert len(block["transactions"]) == block["tx_count"]
            for tx in block["transactions"]:
                assert tx["code"] == "VALID"

    def test_tx_view_locates_a_committed_tx(self, deployment):
        framework, client = deployment
        _submit(client, n=1)
        explorer = LedgerExplorer(framework.channel)
        tx_meta = explorer.blocks()[-1]["transactions"][0]
        view = explorer.tx_view(tx_meta["tx_id"])
        assert view["code"] == "VALID"
        assert view["chaincode"] == tx_meta["chaincode"]
        assert view["writes"]  # committed writes are listed by key
        assert view["endorsers"]

    def test_blocks_limit_and_start(self, deployment):
        framework, client = deployment
        _submit(client)
        explorer = LedgerExplorer(framework.channel)
        assert [b["number"] for b in explorer.blocks(start=2, limit=2)] == [2, 3]

    def test_summary_matches_monitor_shim(self, deployment):
        from repro.fabric.monitor import channel_summary

        framework, client = deployment
        _submit(client)
        explorer = LedgerExplorer(framework.channel)
        assert explorer.summary() == channel_summary(framework.channel)

    def test_no_online_peer_is_an_error(self, deployment):
        framework, client = deployment
        _submit(client, n=1)
        for peer in framework.channel.peers.values():
            peer.online = False
        with pytest.raises(ObservabilityError):
            LedgerExplorer(framework.channel).reference_peer()


class TestProvenance:
    def test_single_submit_trail_matches_world_state(self, deployment):
        framework, client = deployment
        entry_id = _submit(client, n=1)[0]
        explorer = LedgerExplorer(framework.channel)
        trail = explorer.provenance_trail(entry_id)
        assert [e["action"] for e in trail] == ["captured", "stored"]
        assert all(e["actor"] == "cam-solo" for e in trail)
        assert all(e["entry_id"] == entry_id for e in trail)
        assert trail == explorer.lineage(entry_id)
        assert trail == client.provenance(entry_id)

    def test_batch_ingest_trail_attributes_each_source(self):
        framework = Framework(FrameworkConfig(max_batch_size=8))
        ingestor = BatchIngestor(framework, record_provenance=True)
        for source in ("cam-a", "cam-b"):
            ingestor.register(
                framework.register_source(source, tier=SourceTier.TRUSTED)
            )
        items = [
            IngestItem(
                source_id="cam-a" if i % 2 == 0 else "cam-b",
                payload=b"batch %d " % i * 16,
                metadata={"timestamp": float(i), "detections": []},
                observation=None,
            )
            for i in range(6)
        ]
        report = ingestor.ingest(items)
        framework.channel.flush()
        explorer = LedgerExplorer(framework.channel)
        assert len(report.entry_ids) == 6
        seen_sources = set()
        for entry_id in report.entry_ids:
            source_id = explorer.entry(entry_id)["source_id"]
            seen_sources.add(source_id)
            trail = explorer.provenance_trail(entry_id)
            assert [e["action"] for e in trail] == ["captured", "stored"]
            # The attribution guarantee: every event carries the source
            # that actually submitted the item, not the batch's first.
            assert {e["actor"] for e in trail} == {source_id}
            assert trail == explorer.lineage(entry_id)
        assert seen_sources == {"cam-a", "cam-b"}

    def test_unknown_entry_has_empty_trail(self, deployment):
        framework, client = deployment
        _submit(client, n=1)
        explorer = LedgerExplorer(framework.channel)
        assert explorer.provenance_trail("no-such-entry") == []


class TestTrustTimeline:
    def test_timeline_orders_score_snapshots(self, deployment):
        framework, client = deployment
        _submit(client, n=1)
        framework.record_trust_on_chain("cam-solo")
        framework.trust.record_validation(
            "cam-solo", accepted=True, valid_votes=3, invalid_votes=0
        )
        framework.record_trust_on_chain("cam-solo")
        framework.channel.flush()
        explorer = LedgerExplorer(framework.channel)
        assert "cam-solo" in explorer.trust_sources()
        timeline = explorer.trust_timeline("cam-solo")
        assert len(timeline) == 2
        assert [t["source_id"] for t in timeline] == ["cam-solo", "cam-solo"]
        assert timeline[0]["block"] <= timeline[1]["block"]
        assert all("score" in t and "tx_id" in t for t in timeline)


class TestAudit:
    def test_clean_ledger_passes(self, deployment):
        framework, client = deployment
        _submit(client)
        report = LedgerExplorer(framework.channel, ipfs=framework.ipfs).audit_chain()
        assert report.ok, report.to_dict()
        assert report.blocks_checked == framework.channel.height()
        assert report.txs_checked > 0
        assert report.state_keys_checked > 0
        assert report.offchain_files_checked == 3
        assert report.offchain_blocks_checked >= 3

    def test_tampered_world_state_is_pinpointed(self, deployment):
        framework, client = deployment
        entry_id = _submit(client, n=1)[0]
        explorer = LedgerExplorer(framework.channel)
        peer = explorer.reference_peer()
        key = "data:" + entry_id
        record = json.loads(peer.world.get(key))
        record["cid"] = "tampered"
        # A dishonest committer silently rewrites its state DB.
        peer.world._values[key] = json.dumps(record).encode()
        report = explorer.audit_chain(offchain=False)
        assert not report.ok
        findings = [f for f in report.findings if f.check == "state_replay"]
        assert findings and key in findings[0].detail

    def test_offchain_bit_rot_names_node_and_block(self, deployment):
        framework, client = deployment
        entry_id = _submit(client, n=1)[0]
        explorer = LedgerExplorer(framework.channel, ipfs=framework.ipfs)
        record = json.loads(explorer.reference_peer().world.get("data:" + entry_id))
        from repro.crypto.cid import CID

        root = CID.parse(record["cid"])
        rotted = None
        for node_id, node in sorted(framework.ipfs.nodes.items()):
            if node.online and node.blockstore.has(root):
                node.blockstore.corrupt(root, b"rotten bytes")
                rotted = node_id
                break
        assert rotted is not None
        report = explorer.audit_chain()
        assert not report.ok
        findings = [f for f in report.findings if f.check == "offchain_block"]
        assert findings, report.to_dict()
        assert findings[0].node == rotted
        assert findings[0].cid == record["cid"]

    def test_header_tamper_is_pinpointed(self, deployment):
        framework, client = deployment
        _submit(client)
        explorer = LedgerExplorer(framework.channel)
        ledger = explorer.reference_peer().ledger
        victim = ledger.blocks()[2]
        import dataclasses

        forged_header = dataclasses.replace(
            victim.header, data_hash="0" * 64
        )
        forged = dataclasses.replace(victim, header=forged_header)
        ledger._blocks[2 - ledger.base_height] = forged
        report = explorer.audit_chain(offchain=False)
        assert not report.ok
        checks = {(f.check, f.block) for f in report.findings}
        assert ("merkle_root", 2) in checks
        # Forging the header also breaks the next block's prev-hash link.
        assert ("header_chain", 3) in checks
