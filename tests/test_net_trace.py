"""Tests for message tracing, including PBFT phase analysis."""

from repro.consensus import BftCluster
from repro.net import ConstantLatency, MessageTrace, NetNode, SimNetwork


class Echo(NetNode):
    def on_message(self, msg):
        pass


class TestMessageTrace:
    def make(self):
        net = SimNetwork(latency=ConstantLatency(base=0.01))
        trace = MessageTrace(net)
        a, b = Echo("a", net), Echo("b", net)
        return net, trace, a, b

    def test_records_deliveries_with_time(self):
        net, trace, a, b = self.make()
        a.send("b", "x", kind="ping", size_bytes=100)
        net.run()
        assert len(trace) == 1
        entry = trace.entries[0]
        assert (entry.src, entry.dst, entry.kind, entry.size_bytes) == ("a", "b", "ping", 100)
        assert entry.time >= 0.01

    def test_dropped_messages_not_recorded(self):
        net, trace, a, b = self.make()
        net.set_node_up("b", False)
        a.send("b", "lost")
        net.run()
        assert len(trace) == 0

    def test_count_and_bytes_by_kind(self):
        net, trace, a, b = self.make()
        for _ in range(3):
            a.send("b", "x", kind="ping", size_bytes=10)
        a.send("b", "y", kind="pong", size_bytes=99)
        net.run()
        assert trace.count_by_kind() == {"ping": 3, "pong": 1}
        assert trace.bytes_by_kind() == {"ping": 30, "pong": 99}

    def test_pair_matrix(self):
        net, trace, a, b = self.make()
        a.send("b", 1)
        a.send("b", 2)
        b.send("a", 3)
        net.run()
        assert trace.pair_matrix() == {("a", "b"): 2, ("b", "a"): 1}

    def test_between_window(self):
        net, trace, a, b = self.make()
        a.send("b", "early")
        net.schedule(5.0, lambda: a.send("b", "late"))
        net.run()
        assert len(trace.between(0.0, 1.0)) == 1
        assert len(trace.between(4.0, 10.0)) == 1

    def test_detach_stops_recording(self):
        net, trace, a, b = self.make()
        a.send("b", 1)
        net.run()
        trace.detach()
        a.send("b", 2)
        net.run()
        assert len(trace) == 1

    def test_timeline_renders(self):
        net, trace, a, b = self.make()
        for i in range(3):
            a.send("b", i, kind="msg")
        net.run()
        text = trace.timeline(limit=2)
        assert "a" in text and "-> b" in text
        assert "1 more" in text


class TestPbftPhaseAnalysis:
    def test_three_phases_visible_and_quadratic(self):
        net = SimNetwork(latency=ConstantLatency(base=0.001))
        trace = MessageTrace(net)
        cluster = BftCluster(n_replicas=4, network=net)
        cluster.submit("payload")
        cluster.run()
        kinds = trace.count_by_kind()
        # One pre-prepare broadcast (n-1), then all-to-all prepare/commit.
        assert kinds["PrePrepare"] == 3
        assert kinds["Prepare"] >= 9   # (n-1) broadcasts of n-1 each, minus self
        assert kinds["Commit"] >= 9
        # Prepare+Commit volume dominates: the O(n^2) phases.
        assert kinds["Prepare"] + kinds["Commit"] > 4 * kinds["PrePrepare"]
