"""End-to-end tracing: a real submit→retrieve run yields a correct span tree,
a valid Chrome trace, and a per-stage breakdown that explains the wall time."""

import json

import pytest

from repro import obs
from repro.core import Client, Framework, FrameworkConfig
from repro.obs.breakdown import UNATTRIBUTED
from repro.trust import SourceTier


@pytest.fixture(autouse=True)
def _no_global_tracer_leak():
    yield
    obs.disable()


@pytest.fixture(scope="module")
def traced_run():
    """One framework, one submit + retrieve, traced; shared by the assertions."""
    with obs.enabled() as tracer:
        framework = Framework(FrameworkConfig())
        client = Client(
            framework, framework.register_source("trace-cam", tier=SourceTier.TRUSTED)
        )
        tracer.clear()  # drop setup spans; keep only the pipelines under test
        receipt = client.submit(
            b"traced payload " * 64,
            {"timestamp": 1.0, "camera_id": "trace-cam",
             "detections": [{"vehicle_class": "car", "confidence": 0.9}]},
        )
        result = client.retrieve(receipt.entry_id)
    assert receipt.ok and result.verified
    return tracer


class TestStorageSpanTree:
    def test_submit_is_a_root(self, traced_run):
        roots = [s.name for s in traced_run.roots()]
        assert "client.submit" in roots

    def test_store_path_stages_present_under_submit(self, traced_run):
        (root,) = traced_run.spans("client.submit")
        names = {s.name for s in traced_run.descendants(root)}
        for required in (
            "submit.sign",
            "submit.admission",
            "ipfs.add",
            "ipfs.add_bytes",
            "fabric.invoke",
            "fabric.endorse",
            "fabric.peer.endorse",
            "fabric.order",
            "fabric.peer.commit",
            "submit.provenance",
            "submit.trust_update",
        ):
            assert required in names, f"missing {required} under client.submit"

    def test_endorse_nests_under_invoke_not_root(self, traced_run):
        (root,) = traced_run.spans("client.submit")
        by_id = {s.span_id: s for s in traced_run.finished}
        for peer_endorse in traced_run.spans("fabric.peer.endorse"):
            if peer_endorse.trace_id != root.trace_id:
                continue
            parent = by_id[peer_endorse.parent_id]
            assert parent.name == "fabric.endorse"
            grandparent = by_id[parent.parent_id]
            assert grandparent.name == "fabric.invoke"

    def test_commit_nests_under_deliver(self, traced_run):
        (root,) = traced_run.spans("client.submit")
        by_id = {s.span_id: s for s in traced_run.finished}
        commits = [
            s for s in traced_run.spans("fabric.peer.commit")
            if s.trace_id == root.trace_id
        ]
        assert commits, "no commit spans in the storage trace"
        for commit in commits:
            assert by_id[commit.parent_id].name == "fabric.deliver"

    def test_every_descendant_shares_the_root_trace(self, traced_run):
        (root,) = traced_run.spans("client.submit")
        for span in traced_run.descendants(root):
            assert span.trace_id == root.trace_id

    def test_all_spans_finished_and_ok(self, traced_run):
        assert all(s.finished for s in traced_run.finished)
        assert all(s.status == "ok" for s in traced_run.finished)


class TestRetrievalSpanTree:
    def test_retrieve_path_stages(self, traced_run):
        (root,) = traced_run.spans("client.retrieve")
        names = {s.name for s in traced_run.descendants(root)}
        for required in (
            "retrieve.acl",
            "query.get",
            "fabric.query",
            "query.fetch",
            "ipfs.cat",
            "query.verify",
            "retrieve.provenance",
        ):
            assert required in names, f"missing {required} under client.retrieve"

    def test_ipfs_cat_nests_under_query_fetch(self, traced_run):
        (root,) = traced_run.spans("client.retrieve")
        by_id = {s.span_id: s for s in traced_run.finished}
        cats = [s for s in traced_run.spans("ipfs.cat") if s.trace_id == root.trace_id]
        assert cats
        for cat in cats:
            assert by_id[cat.parent_id].name == "query.fetch"


class TestChromeTrace:
    def test_trace_is_valid_and_complete(self, traced_run, tmp_path):
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(str(path), traced_run)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == len(traced_run.finished)
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["name"], str) and event["name"]
            assert "span_id" in event["args"]

    def test_one_lane_per_trace(self, traced_run):
        events = obs.chrome_trace(traced_run)["traceEvents"]
        lanes = {e["tid"] for e in events}
        n_traces = len({s.trace_id for s in traced_run.finished})
        assert len(lanes) == n_traces


class TestBreakdown:
    def test_both_pipelines_present(self, traced_run):
        breakdowns = obs.pipeline_breakdown(traced_run)
        assert set(breakdowns) == {"storage", "retrieval"}
        assert breakdowns["storage"].samples == 1
        assert breakdowns["retrieval"].samples == 1

    def test_stages_sum_to_wall_time(self, traced_run):
        for bd in obs.pipeline_breakdown(traced_run).values():
            total = sum(s.total_s for s in bd.stages)
            # Exclusive times over the full tree partition the wall time.
            assert total == pytest.approx(bd.wall_s, rel=0.02)

    def test_coverage_at_least_90_percent(self, traced_run):
        for bd in obs.pipeline_breakdown(traced_run).values():
            assert bd.coverage >= 0.9, (
                f"{bd.pipeline}: only {bd.coverage:.0%} of wall time attributed"
            )

    def test_storage_reports_paper_stages(self, traced_run):
        bd = obs.pipeline_breakdown(traced_run)["storage"]
        stages = {s.stage for s in bd.stages}
        for expected in ("ipfs add", "endorse", "consensus (bft)", "validate+commit"):
            assert expected in stages

    def test_retrieval_reports_paper_stages(self, traced_run):
        bd = obs.pipeline_breakdown(traced_run)["retrieval"]
        stages = {s.stage for s in bd.stages}
        for expected in ("on-chain read", "off-chain fetch", "integrity verify"):
            assert expected in stages

    def test_shares_are_fractions_of_wall(self, traced_run):
        for bd in obs.pipeline_breakdown(traced_run).values():
            for stage in bd.stages:
                assert 0.0 <= stage.share <= 1.0

    def test_render_breakdown_mentions_figures(self, traced_run):
        text = obs.render_breakdown(obs.pipeline_breakdown(traced_run))
        assert "Fig. 5" in text and "Fig. 6" in text
        assert "TOTAL (wall)" in text

    def test_unattributed_is_only_root_self_time(self, traced_run):
        for bd in obs.pipeline_breakdown(traced_run).values():
            un = [s for s in bd.stages if s.stage == UNATTRIBUTED]
            assert len(un) <= 1
            if un:
                assert un[0].share < 0.1

    def test_empty_without_tracer(self):
        obs.disable()
        assert obs.pipeline_breakdown() == {}
