"""Critical-path extraction over the cross-node causal DAG of a committed tx.

The acceptance bar from the tracing work: for a standard submit+retrieve
run, ``critical_path`` must reconstruct a single causal DAG spanning at
least three distinct nodes (client, a peer, the orderer/validators) and
its segment attribution must sum to within 5% of the transaction's
end-to-end span duration. (The algorithm partitions the root's window
exactly, so the real error is 0 — the 5% bound is the contract.)
"""

import json

import pytest

from repro import obs
from repro.core import Client, Framework, FrameworkConfig
from repro.obs.critpath import (
    chrome_trace_by_node,
    critical_path,
    span_node,
    tx_anchor,
    write_chrome_trace_by_node,
)
from repro.errors import ObservabilityError
from repro.trust import SourceTier


@pytest.fixture(autouse=True)
def _no_global_tracer_leak():
    yield
    obs.disable()


@pytest.fixture(scope="module")
def traced_commit():
    """One traced submit (BFT path); returns (tracer, receipt)."""
    with obs.enabled() as tracer:
        framework = Framework(FrameworkConfig())
        client = Client(
            framework, framework.register_source("cp-cam", tier=SourceTier.TRUSTED)
        )
        tracer.clear()
        receipt = client.submit(
            b"critpath payload " * 64,
            {"timestamp": 1.0, "camera_id": "cp-cam",
             "detections": [{"vehicle_class": "car", "confidence": 0.95}]},
        )
    assert receipt.ok
    return tracer, receipt


class TestCriticalPath:
    def test_dag_spans_at_least_three_nodes(self, traced_commit):
        tracer, receipt = traced_commit
        cp = critical_path(tracer, receipt.tx_id)
        assert "client" in cp.nodes
        assert any(n.startswith("peer") for n in cp.nodes)
        assert any(n == "orderer" or n.startswith("validator") for n in cp.nodes)
        assert len(cp.nodes) >= 3

    def test_attribution_sums_to_wall_time(self, traced_commit):
        tracer, receipt = traced_commit
        cp = critical_path(tracer, receipt.tx_id)
        assert cp.wall_s > 0
        assert cp.attributed_s == pytest.approx(cp.wall_s, rel=0.05)

    def test_segments_are_contiguous_and_ordered(self, traced_commit):
        tracer, receipt = traced_commit
        cp = critical_path(tracer, receipt.tx_id)
        cursor = None
        for seg in cp.segments:
            assert seg.end_s > seg.start_s
            if cursor is not None:
                assert seg.start_s == pytest.approx(cursor, abs=1e-9)
            cursor = seg.end_s

    def test_path_visits_multiple_nodes(self, traced_commit):
        tracer, receipt = traced_commit
        cp = critical_path(tracer, receipt.tx_id)
        assert len(set(cp.path_nodes)) >= 2
        assert cp.path_nodes[0] == "client"

    def test_by_stage_rows_cover_all_attributed_time(self, traced_commit):
        tracer, receipt = traced_commit
        cp = critical_path(tracer, receipt.tx_id)
        rows = cp.by_stage()
        assert sum(r.total_s for r in rows) == pytest.approx(cp.attributed_s)
        assert rows == sorted(rows, key=lambda r: r.total_s, reverse=True)

    def test_prefix_and_latest_anchor(self, traced_commit):
        tracer, receipt = traced_commit
        by_prefix = tx_anchor(tracer, receipt.tx_id[:12])
        assert by_prefix.attrs.get("tx_id", "").startswith(receipt.tx_id[:12])
        assert tx_anchor(tracer, "latest") is not None

    def test_unknown_tx_raises_with_candidates(self, traced_commit):
        tracer, _receipt = traced_commit
        with pytest.raises(ObservabilityError, match="no committed tx"):
            critical_path(tracer, "ffffffffffff")

    def test_render_and_json_round_trip(self, traced_commit):
        tracer, receipt = traced_commit
        cp = critical_path(tracer, receipt.tx_id)
        text = "\n".join(cp.render_lines())
        assert receipt.tx_id[:8] in text
        doc = json.loads(json.dumps(cp.to_dict()))
        assert doc["tx_id"] == cp.tx_id
        assert len(doc["segments"]) == len(cp.segments)


class TestSpanNode:
    def test_nearest_node_attr_wins(self):
        with obs.enabled() as tracer:
            with tracer.span("outer", attrs={"node": "peer0"}):
                with tracer.span("mid"):
                    with tracer.span("leaf", attrs={"replica": "validator-2"}):
                        pass
        by_id = {s.span_id: s for s in tracer.finished}
        (leaf,) = tracer.spans("leaf")
        (mid,) = tracer.spans("mid")
        assert span_node(leaf, by_id) == "validator-2"
        assert span_node(mid, by_id) == "peer0"  # inherited from ancestor

    def test_unattributed_span_defaults_to_client(self):
        with obs.enabled() as tracer:
            with tracer.span("bare"):
                pass
        by_id = {s.span_id: s for s in tracer.finished}
        assert span_node(tracer.spans("bare")[0], by_id) == "client"


class TestChromeTraceByNode:
    def test_one_process_row_per_node(self, traced_commit, tmp_path):
        tracer, receipt = traced_commit
        cp = critical_path(tracer, receipt.tx_id)
        events = chrome_trace_by_node(tracer, trace_id=cp.trace_id)["traceEvents"]
        meta = [e for e in events if e.get("ph") == "M"]
        row_names = {e["args"]["name"] for e in meta}
        assert set(cp.nodes) <= row_names
        pids = {e["pid"] for e in meta}
        assert len(pids) == len(meta)  # one pid per node
        # Every duration event lands on a declared process row.
        assert {e["pid"] for e in events if e.get("ph") == "X"} <= pids
        out = tmp_path / "trace.json"
        write_chrome_trace_by_node(out, tracer, trace_id=cp.trace_id)
        assert json.loads(out.read_text())["traceEvents"]


class TestCritpathCli:
    def test_cli_prints_attribution_table(self, capsys):
        from repro.cli import main

        assert main(["critpath", "latest"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "client" in out

    def test_cli_unknown_tx_exits_2(self, capsys):
        from repro.cli import main

        assert main(["critpath", "ffffffffffff"]) == 2
