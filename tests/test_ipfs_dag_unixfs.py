"""Tests for the Merkle DAG layer and UnixFS file trees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cid import CID, CODEC_DAG_JSON
from repro.errors import BlockNotFoundError, DagError
from repro.ipfs.blockstore import MemoryBlockstore
from repro.ipfs.chunker import FixedSizeChunker, RollingChunker
from repro.ipfs.dag import DagLink, DagNode, DagService
from repro.ipfs.unixfs import UnixFS
from repro.util.rng import rng_for


class TestDagNode:
    def test_serialize_roundtrip(self):
        child = CID.for_data(b"child")
        node = DagNode(data=b"payload", links=(DagLink("a", child, 5),))
        assert DagNode.deserialize(node.serialize()) == node

    def test_identical_nodes_same_cid(self):
        child = CID.for_data(b"c")
        n1 = DagNode(data=b"x", links=(DagLink("l", child, 1),))
        n2 = DagNode(data=b"x", links=(DagLink("l", child, 1),))
        assert n1.cid() == n2.cid()

    def test_link_order_changes_cid(self):
        a, b = CID.for_data(b"a"), CID.for_data(b"b")
        n1 = DagNode(links=(DagLink("", a, 1), DagLink("", b, 1)))
        n2 = DagNode(links=(DagLink("", b, 1), DagLink("", a, 1)))
        assert n1.cid() != n2.cid()

    def test_negative_tsize_rejected(self):
        with pytest.raises(DagError):
            DagLink("x", CID.for_data(b"x"), -1)

    def test_malformed_document_rejected(self):
        with pytest.raises(DagError):
            DagNode.deserialize(b'{"nope":1}')

    def test_total_size(self):
        child = CID.for_data(b"c")
        node = DagNode(data=b"abc", links=(DagLink("", child, 10),))
        assert node.total_size() == 13


class TestDagService:
    def test_put_get_roundtrip(self):
        svc = DagService(MemoryBlockstore())
        node = DagNode(data=b"n")
        cid = svc.put(node)
        assert svc.get(cid) == node

    def test_get_raw_cid_rejected(self):
        svc = DagService(MemoryBlockstore())
        with pytest.raises(DagError):
            svc.get(CID.for_data(b"raw"))

    def test_walk_visits_all_once(self):
        store = MemoryBlockstore()
        svc = DagService(store)
        from repro.ipfs.block import Block

        leaf = Block.for_data(b"leaf")
        store.put(leaf)
        shared = DagNode(data=b"shared", links=(DagLink("", leaf.cid, 4),))
        shared_cid = svc.put(shared)
        # Diamond: root links the shared node twice.
        root = DagNode(
            data=b"root",
            links=(DagLink("l", shared_cid, 10), DagLink("r", shared_cid, 10)),
        )
        root_cid = svc.put(root)
        visited = list(svc.walk(root_cid))
        assert len(visited) == 3  # root, shared, leaf — shared visited once
        assert svc.referenced_cids(root_cid) == {root_cid, shared_cid, leaf.cid}


class TestUnixFS:
    def make(self, chunk=1024, fanout=4):
        return UnixFS(MemoryBlockstore(), chunker=FixedSizeChunker(chunk), fanout=fanout)

    def test_empty_file(self):
        fs = self.make()
        result = fs.add_file(b"")
        assert fs.read_file(result.cid) == b""
        assert result.size == 0

    def test_single_chunk_stored_raw(self):
        fs = self.make(chunk=1024)
        result = fs.add_file(b"small")
        assert result.n_leaves == 1
        assert result.n_nodes == 0
        assert result.cid.codec_name == "raw"
        assert fs.read_file(result.cid) == b"small"

    def test_multi_chunk_roundtrip(self):
        fs = self.make(chunk=100)
        data = rng_for(1, "unixfs").bytes(1050)
        result = fs.add_file(data)
        assert result.n_leaves == 11
        assert result.cid.codec == CODEC_DAG_JSON
        assert fs.read_file(result.cid) == data

    def test_deep_tree_with_small_fanout(self):
        fs = self.make(chunk=10, fanout=2)
        data = rng_for(2, "unixfs").bytes(1000)  # 100 leaves, ceil(log2) levels
        result = fs.add_file(data)
        assert result.n_nodes >= 50
        assert fs.read_file(result.cid) == data

    def test_same_content_same_cid(self):
        data = rng_for(3, "unixfs").bytes(5000)
        assert self.make().add_file(data).cid == self.make().add_file(data).cid

    def test_different_content_different_cid(self):
        fs = self.make()
        assert fs.add_file(b"aaa").cid != fs.add_file(b"bbb").cid

    def test_file_size_without_reading_leaves(self):
        fs = self.make(chunk=100)
        data = rng_for(4, "unixfs").bytes(1234)
        result = fs.add_file(data)
        reads_before = fs.blockstore.stats.bytes_read
        assert fs.file_size(result.cid) == 1234
        # Only the root node was read, far less than the file.
        assert fs.blockstore.stats.bytes_read - reads_before < 1234

    def test_leaf_cids_in_order(self):
        fs = self.make(chunk=3)
        result = fs.add_file(b"abcdefghi")
        leaves = fs.leaf_cids(result.cid)
        assert [fs.blockstore.get(c).data for c in leaves] == [b"abc", b"def", b"ghi"]

    def test_missing_block_raises(self):
        fs = self.make(chunk=10)
        data = rng_for(5, "unixfs").bytes(100)
        result = fs.add_file(data)
        # Drop one leaf and expect retrieval failure.
        victim = fs.leaf_cids(result.cid)[3]
        fs.blockstore.delete(victim)
        with pytest.raises(BlockNotFoundError):
            fs.read_file(result.cid)

    def test_dedup_across_files(self):
        fs = self.make(chunk=100)
        common = rng_for(6, "unixfs").bytes(1000)
        fs.add_file(common)
        blocks_after_first = len(fs.blockstore)
        fs.add_file(common)  # identical file: zero new blocks
        assert len(fs.blockstore) == blocks_after_first

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            UnixFS(MemoryBlockstore(), fanout=1)

    @settings(max_examples=30)
    @given(st.binary(max_size=8192), st.integers(min_value=1, max_value=512))
    def test_property_roundtrip(self, data, chunk):
        fs = UnixFS(MemoryBlockstore(), chunker=FixedSizeChunker(chunk), fanout=3)
        assert fs.read_file(fs.add_file(data).cid) == data

    @settings(max_examples=15)
    @given(st.binary(max_size=8192))
    def test_property_roundtrip_cdc(self, data):
        fs = UnixFS(MemoryBlockstore(), chunker=RollingChunker(target_size=256))
        assert fs.read_file(fs.add_file(data).cid) == data

    @settings(max_examples=20)
    @given(st.binary(max_size=4096), st.integers(min_value=1, max_value=256))
    def test_property_size_metadata_accurate(self, data, chunk):
        fs = UnixFS(MemoryBlockstore(), chunker=FixedSizeChunker(chunk), fanout=5)
        result = fs.add_file(data)
        assert fs.file_size(result.cid) == len(data)
