"""Tests for the metrics registry, channel monitor, and explorer summary."""

import pytest

from repro.errors import ObservabilityError
from repro.fabric.monitor import (
    ChannelMonitor,
    Histogram,
    MetricsRegistry,
    channel_summary,
)

from tests.fabric_helpers import make_network


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc()
        reg.counter("requests").inc(2)
        assert reg.snapshot()["counters"]["requests"] == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_sets(self):
        reg = MetricsRegistry()
        reg.gauge("height").set(5)
        reg.gauge("height").set(3)
        assert reg.snapshot()["gauges"]["height"] == 3

    def test_histogram_buckets(self):
        hist = Histogram(name="lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            hist.observe(v)
        assert hist.counts == [1, 1, 1, 1]
        assert hist.n == 4
        assert hist.mean == pytest.approx(138.875)

    def test_histogram_unsorted_buckets_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram(name="bad", buckets=(10.0, 1.0))

    def test_render_prometheus_format(self):
        reg = MetricsRegistry(prefix="test")
        reg.counter("ops").inc(7)
        reg.gauge("depth").set(2)
        reg.histogram("lat", (1.0, 2.0)).observe(1.5)
        text = reg.render()
        assert "# TYPE test_ops counter" in text
        assert "test_ops 7.0" in text
        assert 'test_lat_bucket{le="+Inf"} 1' in text
        assert "test_lat_count 1" in text

    def test_same_name_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")


class TestChannelMonitor:
    def test_blocks_and_txs_counted(self):
        net, channel, alice = make_network()
        monitor = ChannelMonitor(channel)
        for i in range(3):
            channel.invoke(alice, "kv", "put", [f"k{i}", "v"])
        snap = monitor.metrics.snapshot()
        assert snap["counters"]["blocks_total"] == 3
        assert snap["counters"]['txs_total{code="valid"}'] == 3
        assert snap["gauges"]["chain_height"] == 3

    def test_invalid_tx_counted_by_code(self):
        net, channel, alice = make_network(max_batch_size=2)
        monitor = ChannelMonitor(channel)
        channel.invoke_async(alice, "kv", "increment", ["c"])
        channel.invoke_async(alice, "kv", "increment", ["c"])
        channel.flush()
        snap = monitor.metrics.snapshot()
        assert snap["counters"]['txs_total{code="valid"}'] == 1
        assert snap["counters"]['txs_total{code="mvcc_read_conflict"}'] == 1

    def test_block_fill_histogram(self):
        net, channel, alice = make_network(max_batch_size=4)
        monitor = ChannelMonitor(channel)
        for i in range(4):
            channel.invoke_async(alice, "kv", "put", [f"k{i}", "v"])
        channel.flush()
        hist = monitor.metrics.snapshot()["histograms"]["block_tx_count"]
        assert hist["n"] == 1
        assert hist["mean"] == 4.0

    def test_render_nonempty(self):
        net, channel, alice = make_network()
        monitor = ChannelMonitor(channel)
        channel.invoke(alice, "kv", "put", ["k", "v"])
        assert "repro_blocks_total" in monitor.render()


class TestChannelSummary:
    def test_summary_shape(self):
        net, channel, alice = make_network(peers_per_org=2)
        channel.invoke(alice, "kv", "put", ["k", "v"])
        summary = channel_summary(channel)
        assert summary["channel"] == "traffic"
        assert summary["height"] == 1
        assert summary["orgs"] == ["org1", "org2"]
        assert "kv" in summary["chaincodes"]
        assert summary["tx_by_code"] == {"VALID": 1}
        assert len(summary["peers"]) == 4
        for info in summary["peers"].values():
            assert info["height"] == 1
            assert info["online"] is True

    def test_summary_tracks_offline_peers(self):
        net, channel, alice = make_network(peers_per_org=2)
        lagging = list(channel.peers.values())[-1]
        lagging.online = False
        channel.invoke(alice, "kv", "put", ["k", "v"])
        summary = channel_summary(channel)
        assert summary["peers"][lagging.name]["online"] is False
        assert summary["peers"][lagging.name]["height"] == 0
