"""Smoke tests for the CLI."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "consensus=bft" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "integrity verified: True" in out
        assert "captured -> stored -> accessed" in out

    def test_ingest(self, capsys):
        assert main(["ingest", "--videos", "2", "--frames", "2", "--consensus", "solo"]) == 0
        out = capsys.readouterr().out
        assert "committed : 4/4" in out
        assert "tx/s" in out

    def test_figure_2(self, capsys):
        assert main(["figure", "2"]) == 0
        out = capsys.readouterr().out
        assert '"camera_id"' in out and '"detections"' in out

    def test_figure_3(self, capsys):
        assert main(["figure", "3"]) == 0
        out = capsys.readouterr().out
        assert "static" in out and "drone" in out

    def test_figure_4(self, capsys):
        assert main(["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "record bytes" in out

    def test_figure_5_and_6(self, capsys):
        assert main(["figure", "5"]) == 0
        out5 = capsys.readouterr().out
        assert "storage time" in out5 and "overhead" in out5
        assert main(["figure", "6"]) == 0
        out6 = capsys.readouterr().out
        assert "retrieval time" in out6

    def test_query(self, capsys):
        assert main(["query", "vehicle_class = 'car'", "--videos", "2"]) == 0
        out = capsys.readouterr().out
        assert "plan   : INDEX by_class" in out
        assert "matched:" in out

    def test_export_and_inspect_bundle(self, capsys, tmp_path):
        out = tmp_path / "evidence.bundle"
        assert main(["export", str(out), "--videos", "2"]) == 0
        assert out.exists() and out.stat().st_size > 0
        capsys.readouterr()
        assert main(["inspect-bundle", str(out)]) == 0
        text = capsys.readouterr().out
        assert "signature OK" in text
        assert "hash-verified" in text

    def test_metrics_prometheus(self, capsys):
        assert main(["metrics", "--items", "1"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_blocks_total counter" in out
        assert 'repro_txs_total{code="valid"}' in out
        assert 'repro_spans_total{name="client.submit",status="ok"}' in out

    def test_metrics_json(self, capsys):
        import json

        assert main(["metrics", "--items", "1", "--format", "json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["blocks_total"] >= 1
        assert "chain_height" in snap["gauges"]

    def test_trace_tree_and_chrome_export(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "trace.json"
        assert main(["trace", "--items", "1", "--breakdown", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "client.submit" in out
        assert "fabric.peer.endorse" in out
        assert "storage breakdown (Fig. 5)" in out
        assert "retrieval breakdown (Fig. 6)" in out
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"], "chrome trace should contain events"

    def test_trace_leaves_global_tracer_disabled(self):
        from repro.obs import get_tracer

        assert main(["trace", "--items", "1"]) == 0
        assert get_tracer() is None

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestChaosCommand:
    def test_chaos_list(self, capsys):
        assert main(["chaos", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("standard", "corruption", "partition", "churn"):
            assert name in out

    def test_chaos_run_short_standard(self, capsys):
        assert main(["chaos", "run", "standard", "--seed", "0", "--cycles", "8"]) == 0
        out = capsys.readouterr().out
        assert "data loss  : 0" in out
        assert "fingerprint:" in out

    def test_chaos_run_json_and_metrics(self, capsys):
        assert main(["chaos", "run", "corruption", "--seed", "1", "--cycles", "8",
                     "--json", "--metrics"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[: out.index("\n# ")])  # JSON, then Prometheus text
        assert doc["data_loss"] == 0
        assert "repro_chaos_faults_total" in out

    def test_chaos_unknown_scenario_is_typed(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["chaos", "run", "definitely-not-a-scenario"])


class TestExplorerCli:
    def test_explorer_summary(self, capsys):
        assert main(["explorer", "summary", "--videos", "1"]) == 0
        out = capsys.readouterr().out
        assert "channel   : traffic" in out
        assert "chaincodes:" in out

    def test_explorer_blocks_and_provenance(self, capsys):
        assert main(["explorer", "blocks", "--videos", "1"]) == 0
        out = capsys.readouterr().out
        assert "data_upload.add_data(VALID)" in out
        assert main(["explorer", "provenance", "--videos", "1"]) == 0
        out = capsys.readouterr().out
        assert "captured@" in out and "stored@" in out

    def test_explorer_audit_passes_on_clean_ledger(self, capsys):
        assert main(["explorer", "audit", "--videos", "1"]) == 0
        out = capsys.readouterr().out
        assert "audit      : PASS" in out

    def test_explorer_trust_shows_score_timelines(self, capsys):
        assert main(["explorer", "trust", "--videos", "1"]) == 0
        out = capsys.readouterr().out
        assert "cam-00" in out and "updates:" in out


class TestHealthCli:
    def test_health_clean_run_is_healthy(self, capsys):
        assert main(["health", "--items", "2"]) == 0
        out = capsys.readouterr().out
        assert "overall: HEALTHY" in out
        assert "fabric.peers" in out and "ipfs.nodes" in out

    def test_health_json(self, capsys):
        assert main(["health", "--items", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "healthy"
        assert {c["component"] for c in payload["components"]} >= {
            "fabric.peers", "ipfs.nodes", "resilience.breakers",
        }


class TestTopCli:
    def test_top_plain_short_run(self, capsys):
        assert main(["top", "--plain", "--cycles", "7", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "cycle " in out
        assert "alerts:" in out
        assert "run complete:" in out


class TestChaosAlertsCli:
    def test_chaos_run_with_alert_gate(self, capsys):
        assert main(["chaos", "run", "standard", "--alerts", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["data_loss"] == 0
        assert payload["alerts"]["ok"] is True
        fired = {e["rule"] for e in payload["alerts"]["log"] if e["state"] == "firing"}
        assert {"ipfs_node_down", "fabric_peer_down", "consensus_drop_storm"} <= fired
        resolved = {e["rule"] for e in payload["alerts"]["log"] if e["state"] == "resolved"}
        assert fired <= resolved


class TestLintCli:
    def test_clean_file_exits_zero(self, capsys, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("def add(a, b):\n    return a + b\n")
        assert main(["lint", str(target), "--baseline", str(tmp_path / "b.json")]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_seeded_wall_clock_read_fails_with_rule_and_location(self, capsys, tmp_path):
        chaincodes = tmp_path / "chaincodes"
        chaincodes.mkdir()
        target = chaincodes / "bad.py"
        target.write_text("import time\n\n\ndef stamp(stub):\n    return {'at': time.time()}\n")
        assert main(["lint", str(target), "--baseline", str(tmp_path / "b.json")]) == 1
        out = capsys.readouterr().out
        assert "DET101" in out
        assert "bad.py:5:" in out

    def test_json_format(self, capsys, tmp_path):
        chaincodes = tmp_path / "chaincodes"
        chaincodes.mkdir()
        (chaincodes / "bad.py").write_text(
            "import uuid\n\n\ndef f(stub):\n    return str(uuid.uuid4())\n"
        )
        assert main([
            "lint", str(chaincodes), "--format", "json",
            "--baseline", str(tmp_path / "b.json"),
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert [f["rule_id"] for f in payload["findings"]] == ["DET104"]

    def test_baseline_workflow(self, capsys, tmp_path):
        chaincodes = tmp_path / "chaincodes"
        chaincodes.mkdir()
        (chaincodes / "old.py").write_text(
            "import time\n\n\ndef f(stub):\n    return time.time()\n"
        )
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(chaincodes), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        # The accepted finding no longer fails the gate...
        assert main(["lint", str(chaincodes), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...but a fresh one still does.
        (chaincodes / "new.py").write_text(
            "import random\n\n\ndef g(stub):\n    return random.random()\n"
        )
        assert main(["lint", str(chaincodes), "--baseline", str(baseline)]) == 1

    def test_missing_path_is_usage_error(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "nope"), "--baseline",
                     str(tmp_path / "b.json")]) == 2

    def test_repo_is_clean_against_checked_in_baseline(self, capsys, monkeypatch):
        import pathlib

        monkeypatch.chdir(pathlib.Path(__file__).resolve().parent.parent)
        assert main(["lint"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out


class TestSanitizeRunCli:
    def test_short_standard_run_clean(self, capsys):
        assert main(["sanitize-run", "standard", "--seed", "0", "--cycles", "8"]) == 0
        out = capsys.readouterr().out
        assert "data loss 0" in out
        assert "no findings" in out
        for mode in ("consensus", "divergence", "ledger", "locks"):
            assert mode in out

    def test_json_output(self, capsys):
        assert main(["sanitize-run", "standard", "--seed", "1", "--cycles", "6",
                     "--sanitize", "ledger", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["data_loss"] == 0
        assert payload["sanitizers"]["ok"] is True
        assert payload["sanitizers"]["modes"] == ["ledger"]
        assert payload["sanitizers"]["checks"]["ledger"] > 0

    def test_bad_mode_is_usage_error(self, capsys):
        assert main(["sanitize-run", "standard", "--sanitize", "turbo"]) == 2

    def test_chaos_run_accepts_sanitize_flag(self, capsys):
        assert main(["chaos", "run", "standard", "--seed", "0", "--cycles", "8",
                     "--sanitize", "all"]) == 0
        out = capsys.readouterr().out
        assert "sanitizers : PASS" in out


class TestFlowcheckCli:
    @staticmethod
    def _fixture_tree(tmp_path):
        """One true positive per FLOW rule family, plus one suppressed flow."""
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "codec.py").write_text(
            "import json\n\n\ndef canonical_json(v):\n"
            "    return json.dumps(v, sort_keys=True).encode()\n"
        )
        # FLOW5xx: wall clock two calls upstream of the codec sink.
        (pkg / "seal.py").write_text(
            "import time\n"
            "from .codec import canonical_json\n\n\n"
            "def stamp():\n"
            "    return time.time()\n\n\n"
            "def seal(payload):\n"
            "    return canonical_json({'p': payload, 'at': stamp()})\n"
        )
        # FLOW6xx: lock-order inversion plus a blocking call under a lock.
        (pkg / "locks.py").write_text(
            "import threading\n"
            "import time\n\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n\n\n"
            "def forward():\n"
            "    with A:\n"
            "        with B:\n"
            "            time.sleep(1)\n\n\n"
            "def backward():\n"
            "    with B:\n"
            "        with A:\n"
            "            pass\n"
        )
        # Suppressed at the source line: must not count as a finding.
        (pkg / "quiet.py").write_text(
            "import time\n"
            "from .codec import canonical_json\n\n\n"
            "def ok():\n"
            "    t = time.time()  # reprolint: disable=FLOW501\n"
            "    return canonical_json({'t': t})\n"
        )
        return pkg

    def test_clean_tree_exits_zero(self, capsys, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "ok.py").write_text("def add(a, b):\n    return a + b\n")
        assert main(["flowcheck", str(pkg),
                     "--baseline", str(tmp_path / "b.json")]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_fixture_tree_reports_each_family_once(self, capsys, tmp_path):
        pkg = self._fixture_tree(tmp_path)
        assert main(["flowcheck", str(pkg),
                     "--baseline", str(tmp_path / "b.json")]) == 1
        out = capsys.readouterr().out
        assert out.count("FLOW501") == 1   # suppressed flow must not add one
        assert out.count("FLOW601") == 1
        assert out.count("FLOW603") == 1
        assert "quiet.py" not in out

    def test_json_output_carries_traces(self, capsys, tmp_path):
        pkg = self._fixture_tree(tmp_path)
        assert main(["flowcheck", str(pkg), "--format", "json",
                     "--baseline", str(tmp_path / "b.json")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        by_rule = {f["rule_id"]: f for f in payload["findings"]}
        assert set(by_rule) == {"FLOW501", "FLOW601", "FLOW603"}
        taint = by_rule["FLOW501"]
        assert "time.time() [wall clock]" in taint["trace"][0]
        assert "canonical_json() [sink]" in taint["trace"][-1]
        assert len(by_rule["FLOW601"]["trace"]) >= 2
        assert payload["stats"]["modules"] == 5

    def test_baseline_workflow(self, capsys, tmp_path):
        pkg = self._fixture_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["flowcheck", str(pkg), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        assert main(["flowcheck", str(pkg), "--baseline", str(baseline)]) == 0
        assert "3 baselined" in capsys.readouterr().out
        # A fresh inversion partner still fails the gate.
        (pkg / "fresh.py").write_text(
            "import os\n"
            "from .codec import canonical_json\n\n\n"
            "def leak():\n"
            "    return canonical_json(os.getenv('HOME'))\n"
        )
        assert main(["flowcheck", str(pkg), "--baseline", str(baseline)]) == 1
        assert "FLOW504" in capsys.readouterr().out

    def test_callgraph_export(self, capsys, tmp_path):
        pkg = self._fixture_tree(tmp_path)
        graph_file = tmp_path / "graph.json"
        main(["flowcheck", str(pkg), "--baseline", str(tmp_path / "b.json"),
              "--callgraph-out", str(graph_file)])
        graph = json.loads(graph_file.read_text())
        assert "pkg.seal.seal" in graph["functions"]
        assert ["pkg.seal.seal", "pkg.seal.stamp", "call"] in graph["edges"]

    def test_missing_path_is_usage_error(self, capsys, tmp_path):
        assert main(["flowcheck", str(tmp_path / "nope"),
                     "--baseline", str(tmp_path / "b.json")]) == 2

    def test_repo_is_clean_against_checked_in_baseline(self, capsys, monkeypatch):
        import pathlib

        monkeypatch.chdir(pathlib.Path(__file__).resolve().parent.parent)
        assert main(["flowcheck"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out
