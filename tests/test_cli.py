"""Smoke tests for the CLI."""

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "consensus=bft" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "integrity verified: True" in out
        assert "captured -> stored -> accessed" in out

    def test_ingest(self, capsys):
        assert main(["ingest", "--videos", "2", "--frames", "2", "--consensus", "solo"]) == 0
        out = capsys.readouterr().out
        assert "committed : 4/4" in out
        assert "tx/s" in out

    def test_figure_2(self, capsys):
        assert main(["figure", "2"]) == 0
        out = capsys.readouterr().out
        assert '"camera_id"' in out and '"detections"' in out

    def test_figure_3(self, capsys):
        assert main(["figure", "3"]) == 0
        out = capsys.readouterr().out
        assert "static" in out and "drone" in out

    def test_figure_4(self, capsys):
        assert main(["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "record bytes" in out

    def test_figure_5_and_6(self, capsys):
        assert main(["figure", "5"]) == 0
        out5 = capsys.readouterr().out
        assert "storage time" in out5 and "overhead" in out5
        assert main(["figure", "6"]) == 0
        out6 = capsys.readouterr().out
        assert "retrieval time" in out6

    def test_query(self, capsys):
        assert main(["query", "vehicle_class = 'car'", "--videos", "2"]) == 0
        out = capsys.readouterr().out
        assert "plan   : INDEX by_class" in out
        assert "matched:" in out

    def test_export_and_inspect_bundle(self, capsys, tmp_path):
        out = tmp_path / "evidence.bundle"
        assert main(["export", str(out), "--videos", "2"]) == 0
        assert out.exists() and out.stat().st_size > 0
        capsys.readouterr()
        assert main(["inspect-bundle", str(out)]) == 0
        text = capsys.readouterr().out
        assert "signature OK" in text
        assert "hash-verified" in text

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
