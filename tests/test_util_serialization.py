"""Tests for canonical JSON serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.util.serialization import canonical_json, from_canonical_json


class TestCanonicalJson:
    def test_keys_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == b'{"a":2,"b":1}'

    def test_compact_no_whitespace(self):
        assert b" " not in canonical_json({"a": [1, 2, {"b": "c d"}]}).replace(b"c d", b"")

    def test_deterministic_across_key_insertion_order(self):
        d1 = {}
        d1["x"] = 1
        d1["y"] = 2
        d2 = {}
        d2["y"] = 2
        d2["x"] = 1
        assert canonical_json(d1) == canonical_json(d2)

    def test_unicode_not_escaped(self):
        assert canonical_json("café") == b'"caf\xc3\xa9"'

    def test_nan_rejected(self):
        with pytest.raises(EncodingError):
            canonical_json({"x": float("nan")})

    def test_inf_rejected(self):
        with pytest.raises(EncodingError):
            canonical_json(float("inf"))

    def test_non_string_keys_rejected(self):
        with pytest.raises(EncodingError):
            canonical_json({1: "a"})

    def test_unserializable_type_rejected(self):
        with pytest.raises(EncodingError):
            canonical_json({"x": object()})

    def test_excessive_nesting_rejected(self):
        value = "leaf"
        for _ in range(80):
            value = [value]
        with pytest.raises(EncodingError):
            canonical_json(value)

    def test_invalid_bytes_raise_on_parse(self):
        with pytest.raises(EncodingError):
            from_canonical_json(b"{not json")
        with pytest.raises(EncodingError):
            from_canonical_json(b"\xff\xfe")


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=30),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=20,
)


@given(json_values)
def test_roundtrip(value):
    assert from_canonical_json(canonical_json(value)) == value


@given(json_values)
def test_canonical_fixed_point(value):
    """Serializing the parse of a canonical form reproduces the same bytes."""
    first = canonical_json(value)
    assert canonical_json(from_canonical_json(first)) == first
