"""Tests for reprolint: determinism + hygiene rules, pragmas, baselines."""

import json

import pytest

from repro.analysis import (
    diff_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    parse_pragmas,
    write_baseline,
)
from repro.analysis.linter import is_chaincode_module
from repro.errors import AnalysisError

CC_PATH = "src/repro/chaincodes/example.py"


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestDeterminismRules:
    def test_wall_clock_in_chaincode_flagged_with_location(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def stamp(stub):\n"
            "    return {'at': time.time()}\n"
        )
        findings = lint_source(source, CC_PATH)
        assert rule_ids(findings) == ["DET101"]
        f = findings[0]
        assert f.line == 5 and f.path == CC_PATH
        assert "time.time" in f.message
        assert "DET101" in f.render() and f"{CC_PATH}:5:" in f.render()
        assert "stub.get_timestamp" in f.fix_hint

    def test_import_alias_resolved(self):
        source = "import time as t\n\ndef f(stub):\n    return t.time()\n"
        assert rule_ids(lint_source(source, CC_PATH)) == ["DET101"]

    def test_from_import_resolved(self):
        source = "from time import time\n\ndef f(stub):\n    return time()\n"
        assert rule_ids(lint_source(source, CC_PATH)) == ["DET101"]

    def test_random_flagged(self):
        source = "import random\n\ndef f(stub):\n    return random.random()\n"
        assert rule_ids(lint_source(source, CC_PATH)) == ["DET102"]

    def test_environ_flagged(self):
        source = "import os\n\ndef f(stub):\n    return os.environ['HOME']\n"
        assert "DET103" in rule_ids(lint_source(source, CC_PATH))

    def test_getenv_flagged(self):
        source = "import os\n\ndef f(stub):\n    return os.getenv('HOME')\n"
        assert "DET103" in rule_ids(lint_source(source, CC_PATH))

    def test_uuid_flagged(self):
        source = "import uuid\n\ndef f(stub):\n    return str(uuid.uuid4())\n"
        assert rule_ids(lint_source(source, CC_PATH)) == ["DET104"]

    def test_json_dumps_without_sort_keys_flagged(self):
        source = "import json\n\ndef f(stub):\n    return json.dumps({'a': 1})\n"
        findings = lint_source(source, CC_PATH)
        assert rule_ids(findings) == ["DET105"]
        assert "canonical_json" in findings[0].fix_hint

    def test_json_dumps_with_sort_keys_clean(self):
        source = "import json\n\ndef f(stub):\n    return json.dumps({'a': 1}, sort_keys=True)\n"
        assert lint_source(source, CC_PATH) == []

    def test_set_iteration_flagged(self):
        source = "def f(stub, keys):\n    for k in set(keys):\n        stub.put_state(k, b'1')\n"
        assert rule_ids(lint_source(source, CC_PATH)) == ["DET106"]

    def test_set_comprehension_iteration_flagged(self):
        source = "def f(stub, keys):\n    return [k for k in {k for k in keys}]\n"
        assert "DET106" in rule_ids(lint_source(source, CC_PATH))

    def test_float_formatting_warned(self):
        source = "def f(stub, score):\n    return f'{score:.2f}'\n"
        findings = lint_source(source, CC_PATH)
        assert rule_ids(findings) == ["DET107"]
        assert findings[0].severity == "warning"

    def test_determinism_rules_skip_non_chaincode_modules(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert lint_source(source, "src/repro/util/anything.py") == []

    def test_chaincode_detected_by_base_class_outside_tree(self):
        source = (
            "import time\n"
            "from repro.fabric.chaincode import Chaincode\n"
            "\n"
            "\n"
            "class Custom(Chaincode):\n"
            "    name = 'custom'\n"
            "\n"
            "    def stamp(self, stub):\n"
            "        return {'at': time.time()}\n"
        )
        assert rule_ids(lint_source(source, "plugins/custom.py")) == ["DET101"]


class TestHygieneRules:
    def test_bare_acquire_warned_everywhere(self):
        source = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "\n"
            "\n"
            "def f():\n"
            "    lock.acquire()\n"
            "    lock.release()\n"
        )
        findings = lint_source(source, "src/repro/util/x.py")
        assert "HYG201" in rule_ids(findings)

    def test_try_lock_not_flagged(self):
        source = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "\n"
            "\n"
            "def f():\n"
            "    return lock.acquire(blocking=False)\n"
        )
        assert lint_source(source, "src/repro/util/x.py") == []

    def test_swallowed_exception_warned(self):
        source = "def f():\n    try:\n        risky()\n    except Exception:\n        pass\n"
        findings = lint_source(source, "src/repro/util/x.py")
        assert rule_ids(findings) == ["HYG202"]
        assert findings[0].line == 4  # anchored at the except clause

    def test_handled_exception_clean(self):
        source = "def f():\n    try:\n        risky()\n    except Exception:\n        return None\n"
        assert lint_source(source, "src/repro/util/x.py") == []

    def test_mutable_default_flagged(self):
        source = "def f(items=[]):\n    return items\n"
        assert rule_ids(lint_source(source, "src/repro/util/x.py")) == ["HYG203"]

    def test_module_dict_mutation_in_function_warned(self):
        source = "CACHE = {}\n\n\ndef remember(k, v):\n    CACHE[k] = v\n"
        assert rule_ids(lint_source(source, "src/repro/util/x.py")) == ["HYG204"]

    def test_local_dict_mutation_clean(self):
        source = "def f(k, v):\n    cache = {}\n    cache[k] = v\n    return cache\n"
        assert lint_source(source, "src/repro/util/x.py") == []


class TestPragmas:
    SOURCE = "import time\n\ndef f(stub):\n    return time.time()  # reprolint: disable=DET101\n"

    def test_line_pragma_suppresses(self):
        assert lint_source(self.SOURCE, CC_PATH) == []

    def test_line_pragma_is_rule_specific(self):
        source = "import time\n\ndef f(stub):\n    return time.time()  # reprolint: disable=DET105\n"
        assert rule_ids(lint_source(source, CC_PATH)) == ["DET101"]

    def test_file_pragma_suppresses_everywhere(self):
        source = "# reprolint: disable-file=DET101\nimport time\n\ndef f(stub):\n    return time.time()\n"
        assert lint_source(source, CC_PATH) == []

    def test_bare_disable_suppresses_all_rules(self):
        source = "import time\n\ndef f(stub):\n    return time.time()  # reprolint: disable\n"
        assert lint_source(source, CC_PATH) == []

    def test_parse_pragmas_collects_both_kinds(self):
        pragmas = parse_pragmas(
            "# reprolint: disable-file=DET107\nx = 1  # reprolint: disable=HYG204\n"
        )
        assert not pragmas.allows("DET107", 99)
        assert not pragmas.allows("HYG204", 2)
        assert pragmas.allows("HYG204", 1)


class TestRepoHygiene:
    def test_repo_is_self_clean(self):
        # The acceptance bar: reprolint over its own codebase, no baseline.
        assert lint_paths(["src/repro"]) == []

    def test_chaincode_modules_detected_by_path(self):
        import ast

        assert is_chaincode_module("src/repro/chaincodes/data.py", ast.parse(""))
        assert not is_chaincode_module("src/repro/query/executor.py", ast.parse(""))

    def test_missing_target_is_usage_error(self):
        with pytest.raises(AnalysisError):
            lint_paths(["no/such/dir"])

    def test_syntax_error_is_analysis_error(self):
        with pytest.raises(AnalysisError):
            lint_source("def broken(:\n", "x.py")


class TestBaseline:
    def test_roundtrip_and_diff(self, tmp_path):
        findings = lint_source(
            "import time\n\ndef f(stub):\n    return time.time()\n", CC_PATH
        )
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        known = load_baseline(baseline_file)
        assert known == {f.key() for f in findings}
        assert diff_baseline(findings, known) == []
        fresh = lint_source(
            "import uuid\n\ndef g(stub):\n    return uuid.uuid4()\n", CC_PATH
        )
        assert [f.rule_id for f in diff_baseline(findings + fresh, known)] == ["DET104"]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(["not", "a", "dict"]))
        with pytest.raises(AnalysisError):
            load_baseline(bad)


class TestExpandedSources:
    """Regression net for the wall-clock/entropy source tables: every call
    the flow analyzer treats as a taint source must also lint as DET1xx."""

    @pytest.mark.parametrize("call", [
        "time.monotonic()", "time.monotonic_ns()", "time.perf_counter()",
        "time.perf_counter_ns()", "time.process_time()", "time.thread_time()",
        "time.clock_gettime(0)", "time.clock_gettime_ns(0)",
    ])
    def test_clock_variants_flagged(self, call):
        source = f"import time\n\ndef f(stub):\n    return {call}\n"
        assert rule_ids(lint_source(source, CC_PATH)) == ["DET101"]

    def test_datetime_now_flagged_through_alias(self):
        source = (
            "from datetime import datetime as dt\n\n"
            "def f(stub):\n    return dt.now().isoformat()\n"
        )
        assert rule_ids(lint_source(source, CC_PATH)) == ["DET101"]

    def test_os_urandom_flagged_as_entropy(self):
        source = "import os\n\ndef f(stub):\n    return os.urandom(8)\n"
        assert rule_ids(lint_source(source, CC_PATH)) == ["DET102"]

    def test_linter_and_flow_share_one_source_table(self):
        from repro.analysis import linter
        from repro.analysis.flow import taint

        assert taint.CLOCK_CALLS is linter.CLOCK_CALLS
        assert taint.UUID_CALLS is linter.UUID_CALLS


class TestMultiRulePragmas:
    def test_line_pragma_with_rule_list(self):
        source = (
            "import time\n\n"
            "def f(stub, score):\n"
            "    return f'{score:.2f}', time.time()  # reprolint: disable=DET101,DET107\n"
        )
        assert lint_source(source, CC_PATH) == []

    def test_line_pragma_list_is_still_specific(self):
        source = (
            "import time\n\n"
            "def f(stub, score):\n"
            "    return f'{score:.2f}', time.time()  # reprolint: disable=DET107,DET105\n"
        )
        assert rule_ids(lint_source(source, CC_PATH)) == ["DET101"]

    def test_disable_file_with_rule_list(self):
        source = (
            "# reprolint: disable-file=DET101,DET104\n"
            "import time\nimport uuid\n\n"
            "def f(stub):\n    return time.time(), uuid.uuid4()\n"
        )
        assert lint_source(source, CC_PATH) == []

    def test_disabled_file_findings_do_not_reach_the_baseline_diff(self):
        source = (
            "# reprolint: disable-file=DET101\n"
            "import time\nimport uuid\n\n"
            "def f(stub):\n    return time.time(), uuid.uuid4()\n"
        )
        findings = lint_source(source, CC_PATH)
        # Only the non-suppressed finding is left to diff against a baseline.
        assert [f.rule_id for f in diff_baseline(findings, set())] == ["DET104"]


class TestBaselineStability:
    def test_write_is_deduped_and_sorted(self, tmp_path):
        findings = lint_source(
            "import time\nimport uuid\n\n"
            "def f(stub):\n    return time.time(), uuid.uuid4()\n",
            CC_PATH,
        )
        target = tmp_path / "b.json"
        # Duplicates and arbitrary input order must not change the bytes.
        write_baseline(target, list(reversed(findings)) + findings)
        first = target.read_bytes()
        write_baseline(target, findings + findings)
        assert target.read_bytes() == first
        payload = json.loads(first)
        assert len(payload["findings"]) == len(findings)
        keys = [(f["path"], f["rule_id"]) for f in payload["findings"]]
        assert keys == sorted(keys)

    def test_baseline_identity_ignores_line_moves(self, tmp_path):
        original = lint_source(
            "import time\n\ndef f(stub):\n    return time.time()\n", CC_PATH
        )
        target = tmp_path / "b.json"
        write_baseline(target, original)
        shifted = lint_source(
            "import time\n\n\n\n\ndef f(stub):\n    return time.time()\n", CC_PATH
        )
        assert diff_baseline(shifted, load_baseline(target)) == []
