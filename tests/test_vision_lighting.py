"""Tests for environmental (lighting) conditions in the capture models."""

import numpy as np
import pytest

from repro.vision import DroneCamera, SceneGenerator, SimulatedYolo, StaticCamera


def scene(seed=41, density=4.0):
    return SceneGenerator(seed=seed, density=density).scene("lighting")


class TestLighting:
    def test_night_frames_are_darker(self):
        s = scene()
        day = StaticCamera("day", lighting=1.0).capture(s)
        night = StaticCamera("night", lighting=0.3).capture(s)
        assert night.image.mean() < 0.6 * day.image.mean()
        assert night.lighting == 0.3

    def test_night_boosts_effective_noise(self):
        s = scene()
        night = StaticCamera("night", lighting=0.3).capture(s)
        day = StaticCamera("day", lighting=1.0).capture(s)
        assert night.noise_sigma > day.noise_sigma

    def test_night_confidence_lower(self):
        s = scene(density=5.0)
        yolo = SimulatedYolo(seed=7)
        day_conf = [d.confidence for d in yolo.detect(StaticCamera("d", lighting=1.0).capture(s))]
        night_conf = [d.confidence for d in yolo.detect(StaticCamera("n", lighting=0.3).capture(s))]
        assert day_conf and night_conf
        assert np.mean(night_conf) < np.mean(day_conf)

    def test_night_drone_is_worst_case(self):
        s = scene(density=5.0)
        yolo = SimulatedYolo(seed=7)
        day_static = [d.confidence for d in yolo.detect(StaticCamera("a").capture(s))]
        drone = DroneCamera("b", seed=2, lighting=0.3)
        night_drone = []
        for _ in range(8):
            night_drone += [d.confidence for d in yolo.detect(drone.capture(s))]
        if night_drone:
            assert np.mean(night_drone) < np.mean(day_static)

    def test_lighting_bounds_validated(self):
        with pytest.raises(ValueError):
            StaticCamera("x", lighting=0.0)
        with pytest.raises(ValueError):
            DroneCamera("x", lighting=1.5)

    def test_default_is_daylight(self):
        frame = StaticCamera("d").capture(scene())
        assert frame.lighting == 1.0
