"""Tests for fixed-size and content-defined chunkers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipfs.chunker import FixedSizeChunker, RollingChunker, chunk_sizes
from repro.util.rng import rng_for


class TestFixedSizeChunker:
    def test_empty_input_yields_one_empty_chunk(self):
        assert list(FixedSizeChunker(4).chunks(b"")) == [b""]

    def test_exact_multiple(self):
        chunks = list(FixedSizeChunker(4).chunks(b"abcdefgh"))
        assert chunks == [b"abcd", b"efgh"]

    def test_remainder_chunk(self):
        chunks = list(FixedSizeChunker(4).chunks(b"abcdefghij"))
        assert chunks == [b"abcd", b"efgh", b"ij"]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            FixedSizeChunker(0)

    @given(st.binary(max_size=4096), st.integers(min_value=1, max_value=512))
    def test_concatenation_restores_input(self, data, size):
        assert b"".join(FixedSizeChunker(size).chunks(data)) == data

    @given(st.binary(min_size=1, max_size=4096), st.integers(min_value=1, max_value=512))
    def test_all_chunks_at_most_size(self, data, size):
        sizes = chunk_sizes(FixedSizeChunker(size), data)
        assert all(0 < s <= size for s in sizes)
        assert all(s == size for s in sizes[:-1])


class TestRollingChunker:
    def make(self, target=1024):
        return RollingChunker(target_size=target)

    def test_empty_input_yields_one_empty_chunk(self):
        assert list(self.make().chunks(b"")) == [b""]

    def test_concatenation_restores_input(self):
        data = rng_for(1, "cdc").bytes(100_000)
        assert b"".join(self.make().chunks(data)) == data

    def test_chunk_sizes_within_bounds(self):
        chunker = self.make(target=1024)
        data = rng_for(2, "cdc").bytes(200_000)
        sizes = chunk_sizes(chunker, data)
        assert all(s <= chunker.max_size for s in sizes)
        assert all(s >= chunker.min_size for s in sizes[:-1])  # last may be short

    def test_mean_chunk_size_near_target(self):
        chunker = self.make(target=1024)
        data = rng_for(3, "cdc").bytes(500_000)
        sizes = chunk_sizes(chunker, data)
        mean = sum(sizes) / len(sizes)
        assert 256 <= mean <= 4096  # within the configured clamp band

    def test_deterministic(self):
        data = rng_for(4, "cdc").bytes(50_000)
        assert chunk_sizes(self.make(), data) == chunk_sizes(self.make(), data)

    def test_insertion_only_shifts_nearby_boundaries(self):
        """The CDC property: chunks far from an insertion are unchanged."""
        chunker = self.make(target=512)
        data = rng_for(5, "cdc").bytes(100_000)
        original = set()
        import hashlib
        for c in chunker.chunks(data):
            original.add(hashlib.sha256(c).hexdigest())
        mutated = data[:50_000] + b"INSERTED" + data[50_000:]
        shared = sum(
            1
            for c in chunker.chunks(mutated)
            if hashlib.sha256(c).hexdigest() in original
        )
        total = len(chunk_sizes(chunker, mutated))
        assert shared / total > 0.8  # most chunks dedup against the original

    def test_fixed_chunker_has_no_such_property(self):
        """Contrast case: fixed chunking loses all chunks after an insertion."""
        chunker = FixedSizeChunker(512)
        data = rng_for(6, "cdc").bytes(100_000)
        import hashlib
        original = {hashlib.sha256(c).hexdigest() for c in chunker.chunks(data)}
        mutated = b"X" + data  # shift by one byte
        shared = sum(
            1
            for c in chunker.chunks(mutated)
            if hashlib.sha256(c).hexdigest() in original
        )
        assert shared <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingChunker(target_size=1)
        with pytest.raises(ValueError):
            RollingChunker(target_size=100, min_size=200, max_size=150)
        with pytest.raises(ValueError):
            RollingChunker(target_size=100, min_size=0)

    @settings(max_examples=25)
    @given(st.binary(max_size=20_000))
    def test_property_concatenation_restores(self, data):
        assert b"".join(RollingChunker(target_size=256).chunks(data)) == data

    @settings(max_examples=25)
    @given(st.binary(min_size=1, max_size=20_000))
    def test_property_bounds(self, data):
        chunker = RollingChunker(target_size=256)
        sizes = chunk_sizes(chunker, data)
        assert all(s <= chunker.max_size for s in sizes)
        assert all(s >= chunker.min_size for s in sizes[:-1])
        assert sizes[-1] >= 1
