"""Resilience primitives: retry/backoff, circuit breaker, failover, and
their integration into the framework's submit path."""

import pytest

from repro.core import Client, Framework, FrameworkConfig
from repro.errors import (
    ChaincodeNotFoundError,
    CircuitOpenError,
    FabricError,
    FailoverExhaustedError,
    IdentityError,
    MVCCConflictError,
    RetryExhaustedError,
)
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.resilience import (
    Budget,
    CircuitBreaker,
    ResilienceHub,
    RetryPolicy,
    retry,
    try_each,
)
from repro.trust import SourceTier


@pytest.fixture(autouse=True)
def _fresh_registry():
    set_registry(MetricsRegistry())
    yield
    set_registry(MetricsRegistry())


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0)
        assert policy.backoff_s(1, 0.0) == pytest.approx(0.1)
        assert policy.backoff_s(2, 0.0) == pytest.approx(0.2)
        assert policy.backoff_s(3, 0.0) == pytest.approx(0.4)
        assert policy.backoff_s(4, 0.0) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(9, 0.0) == pytest.approx(0.5)

    def test_jitter_spans_the_configured_fraction(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.5)
        assert policy.backoff_s(1, 0.0) == pytest.approx(0.5)   # floor
        assert policy.backoff_s(1, 1.0) == pytest.approx(1.0)   # ceiling
        assert policy.backoff_s(1, 0.5) == pytest.approx(0.75)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestRetry:
    def test_success_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise FabricError("transient")
            return "ok"

        assert retry(flaky, op="flaky") == "ok"
        assert calls["n"] == 3

    def test_exhaustion_raises_with_cause_chained(self):
        def always_fails():
            raise FabricError("down")

        with pytest.raises(RetryExhaustedError) as exc_info:
            retry(always_fails, policy=RetryPolicy(max_attempts=3), op="down")
        assert exc_info.value.attempts == 3
        assert isinstance(exc_info.value.__cause__, FabricError)

    def test_non_retryable_errors_propagate_immediately(self):
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise ValueError("bug, not outage")

        with pytest.raises(ValueError):
            retry(boom, op="bug")
        assert calls["n"] == 1

    def test_should_retry_veto_reraises_original(self):
        def denied():
            raise IdentityError("who are you")

        with pytest.raises(IdentityError):
            retry(
                denied,
                should_retry=lambda exc: not isinstance(exc, IdentityError),
                op="veto",
            )

    def test_backoff_sequence_is_seed_deterministic(self):
        def run(seed):
            delays = []

            def fails():
                raise FabricError("x")

            with pytest.raises(RetryExhaustedError):
                retry(
                    fails,
                    policy=RetryPolicy(max_attempts=4),
                    op="det",
                    seed=seed,
                    sleep=delays.append,
                )
            return delays

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_budget_cuts_retries_short(self):
        clock = {"t": 0.0}

        def now():
            clock["t"] += 10.0  # every check burns 10s
            return clock["t"]

        def fails():
            raise FabricError("x")

        budget = Budget(5.0, now=now)
        with pytest.raises(RetryExhaustedError) as exc_info:
            retry(fails, policy=RetryPolicy(max_attempts=10), op="budget", budget=budget)
        assert exc_info.value.attempts < 10

    def test_happy_path_emits_no_metrics(self):
        retry(lambda: 42, op="quiet")
        snap = get_registry().snapshot()
        assert not any("retr" in name for name in snap.get("counters", {}))


class TestCircuitBreaker:
    def _breaker(self, **kw):
        clock = {"t": 0.0}
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("cooldown_s", 10.0)
        breaker = CircuitBreaker("dep", now=lambda: clock["t"], **kw)
        return breaker, clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self._breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()  # never reached 3 consecutive

    def test_half_open_probe_after_cooldown_then_close(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock["t"] = 10.0
        assert breaker.allow()          # the single half-open probe
        assert not breaker.allow()      # no second probe
        breaker.record_success()
        assert breaker.allow()          # closed again

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["t"] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()
        clock["t"] = 19.0               # cooldown restarted at t=10
        assert not breaker.allow()
        clock["t"] = 20.0
        assert breaker.allow()

    def test_call_wrapper_raises_circuit_open(self):
        breaker, _ = self._breaker(failure_threshold=1)
        with pytest.raises(FabricError):
            breaker.call(lambda: (_ for _ in ()).throw(FabricError("x")))
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")

    def test_transitions_are_metered(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["t"] = 10.0
        breaker.allow()
        breaker.record_success()
        counters = get_registry().snapshot()["counters"]
        assert counters['circuit_transitions_total{dep="dep",to="open"}'] == 1.0
        assert counters['circuit_transitions_total{dep="dep",to="half_open"}'] == 1.0
        assert counters['circuit_transitions_total{dep="dep",to="closed"}'] == 1.0


class TestFailover:
    def test_first_healthy_target_wins(self):
        result, attempts = try_each([1, 2, 3], lambda t: t * 10, op="t")
        assert result == 10
        assert attempts == []

    def test_collects_attempt_trail_before_success(self):
        def fn(target):
            if target != "c":
                raise FabricError(f"{target} down")
            return "served"

        result, attempts = try_each(["a", "b", "c"], fn, op="t")
        assert result == "served"
        assert [a.target for a in attempts] == ["a", "b"]
        assert all(a.kind == "FabricError" for a in attempts)

    def test_exhaustion_carries_every_attempt(self):
        def fn(target):
            raise FabricError("down")

        with pytest.raises(FailoverExhaustedError) as exc_info:
            try_each(["a", "b"], fn, op="t")
        assert len(exc_info.value.attempts) == 2

    def test_programming_errors_do_not_fail_over(self):
        calls = []

        def fn(target):
            calls.append(target)
            raise TypeError("bug")

        with pytest.raises(TypeError):
            try_each(["a", "b"], fn, op="t")
        assert calls == ["a"]


class TestHub:
    def test_breakers_are_cached_per_dependency(self):
        hub = ResilienceHub()
        assert hub.breaker("fabric") is hub.breaker("fabric")
        assert hub.breaker("fabric") is not hub.breaker("ipfs")

    def test_set_clock_reaches_existing_breakers(self):
        hub = ResilienceHub(failure_threshold=1, cooldown_s=5.0)
        breaker = hub.breaker("dep")
        clock = {"t": 0.0}
        hub.set_clock(lambda: clock["t"])
        breaker.record_failure()
        assert not breaker.allow()
        clock["t"] = 5.0
        assert breaker.allow()


class TestResilientInvoke:
    def _framework(self, **kw):
        framework = Framework(FrameworkConfig(**kw))
        identity = framework.register_source("res-cam", tier=SourceTier.TRUSTED)
        return framework, identity

    def test_mvcc_conflict_is_retried_to_success(self, monkeypatch):
        framework, identity = self._framework()
        real_invoke = framework.channel.invoke
        state = {"n": 0}

        def conflicted(*args, **kwargs):
            state["n"] += 1
            if state["n"] == 1:
                raise MVCCConflictError("lost the race")
            return real_invoke(*args, **kwargs)

        monkeypatch.setattr(framework.channel, "invoke", conflicted)
        result = framework.resilient_invoke(
            identity, "data_upload", "add_data", ["cid1", "a" * 64, "{}"],
        )
        assert result.ok
        counters = get_registry().snapshot()["counters"]
        assert counters['retries_total{op="data_upload.add_data"}'] == 1.0

    def test_deterministic_request_errors_are_not_retried(self, monkeypatch):
        framework, identity = self._framework()
        calls = {"n": 0}

        def missing(*args, **kwargs):
            calls["n"] += 1
            raise ChaincodeNotFoundError("no such chaincode")

        monkeypatch.setattr(framework.channel, "invoke", missing)
        with pytest.raises(ChaincodeNotFoundError):
            framework.resilient_invoke(identity, "nope", "fn", [])
        assert calls["n"] == 1

    def test_persistent_outage_opens_the_fabric_breaker(self, monkeypatch):
        framework, identity = self._framework(
            breaker_failure_threshold=4, retry_max_attempts=2
        )

        def down(*args, **kwargs):
            raise FabricError("ordering service unreachable")

        monkeypatch.setattr(framework.channel, "invoke", down)
        for _ in range(2):  # 2 submits x 2 attempts = 4 failures
            with pytest.raises(RetryExhaustedError):
                framework.resilient_invoke(identity, "kv", "put", ["k", "v"])
        with pytest.raises((CircuitOpenError, RetryExhaustedError)) as exc_info:
            framework.resilient_invoke(identity, "kv", "put", ["k", "v"])
        gauges = get_registry().snapshot()["gauges"]
        assert gauges['circuit_state{dep="fabric"}'] == 2.0  # OPEN
