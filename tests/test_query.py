"""Tests for the query engine: parser, planner, and hybrid execution."""

import pytest

from repro.core import Client, Framework, FrameworkConfig
from repro.errors import IntegrityError, QueryParseError
from repro.query import Compare, InSet, Query, parse_query, plan_query
from repro.query.ast import And, Not, Or, TrueExpr, get_path
from repro.trust import SourceTier


class TestParser:
    def test_empty_query(self):
        q = parse_query("")
        assert isinstance(q.where, TrueExpr)

    def test_simple_equality(self):
        q = parse_query("camera_id = 'cam-07'")
        assert q.where == Compare(field="camera_id", op="=", value="cam-07")

    def test_where_keyword_optional(self):
        assert parse_query("WHERE x = 1") == parse_query("x = 1")

    def test_numbers_and_floats(self):
        q = parse_query("metadata.timestamp >= 100.5")
        assert q.where.value == 100.5
        assert isinstance(parse_query("n = 3").where.value, int)

    def test_booleans(self):
        assert parse_query("active = true").where.value is True

    def test_and_or_precedence(self):
        q = parse_query("a = 1 OR b = 2 AND c = 3")
        assert isinstance(q.where, Or)
        assert isinstance(q.where.parts[1], And)

    def test_parentheses(self):
        q = parse_query("(a = 1 OR b = 2) AND c = 3")
        assert isinstance(q.where, And)
        assert isinstance(q.where.parts[0], Or)

    def test_not(self):
        q = parse_query("NOT a = 1")
        assert isinstance(q.where, Not)

    def test_in_clause(self):
        q = parse_query("vehicle_class IN ('truck', 'bus')")
        assert q.where == InSet(field="vehicle_class", values=("truck", "bus"))

    def test_order_and_limit(self):
        q = parse_query("x = 1 ORDER BY metadata.timestamp DESC LIMIT 5")
        assert q.order_by == "metadata.timestamp"
        assert q.descending
        assert q.limit == 5

    def test_escaped_quote(self):
        q = parse_query(r"name = 'O\'Brien'")
        assert q.where.value == "O'Brien"

    def test_errors(self):
        for bad in ("x =", "x ~ 1", "ORDER x", "x = 1 LIMIT 1.5", "x = 1 garbage = 2", "= 5"):
            with pytest.raises(QueryParseError):
                parse_query(bad)


class TestAst:
    RECORD = {
        "entry_id": "e1",
        "source_id": "cam-1",
        "metadata": {
            "timestamp": 500,
            "location": {"lat": 12.9, "lon": 77.6},
            "detections": [
                {"vehicle_class": "car", "confidence": 0.9},
                {"vehicle_class": "truck", "confidence": 0.8},
            ],
        },
    }

    def test_get_path(self):
        assert get_path(self.RECORD, "metadata.location.lat") == 12.9
        assert get_path(self.RECORD, "missing.path") is None

    def test_compare_nested(self):
        assert Compare("metadata.timestamp", ">", 100).matches(self.RECORD)
        assert not Compare("metadata.timestamp", ">", 1000).matches(self.RECORD)

    def test_detection_quantifier(self):
        assert Compare("vehicle_class", "=", "truck").matches(self.RECORD)
        assert not Compare("vehicle_class", "=", "bus").matches(self.RECORD)
        assert InSet("vehicle_class", ("bus", "car")).matches(self.RECORD)

    def test_missing_field_never_matches(self):
        assert not Compare("nope", "=", 1).matches(self.RECORD)
        assert not Compare("nope", "!=", 1).matches(self.RECORD)

    def test_cross_type_comparison_false(self):
        assert not Compare("source_id", ">", 10).matches(self.RECORD)

    def test_post_ordering_and_limit(self):
        records = [{"v": 3}, {"v": 1}, {"v": 2}]
        q = Query(order_by="v", limit=2)
        assert q.apply_post(records) == [{"v": 1}, {"v": 2}]
        q = Query(order_by="v", descending=True, limit=1)
        assert q.apply_post(records) == [{"v": 3}]


class TestPlanner:
    def test_source_index_preferred(self):
        plan = plan_query(parse_query("source_id = 'cam-1' AND vehicle_class = 'car'"))
        assert not plan.full_scan
        assert plan.paths[0].fn == "list_by_source"

    def test_camera_index(self):
        plan = plan_query(parse_query("camera_id = 'cam-1'"))
        assert plan.paths[0].fn == "list_by_camera"

    def test_class_index(self):
        plan = plan_query(parse_query("vehicle_class = 'truck'"))
        assert plan.paths[0].fn == "list_by_vehicle_class"

    def test_time_range_index(self):
        plan = plan_query(
            parse_query("metadata.timestamp >= 100 AND metadata.timestamp < 200")
        )
        assert plan.paths[0].fn == "list_by_time_range"

    def test_half_open_time_range_not_indexed(self):
        plan = plan_query(parse_query("metadata.timestamp >= 100"))
        assert plan.full_scan

    def test_or_falls_back_to_scan(self):
        plan = plan_query(parse_query("source_id = 'a' OR vehicle_class = 'car'"))
        assert plan.full_scan

    def test_empty_where_scans(self):
        plan = plan_query(parse_query(""))
        assert plan.full_scan
        assert "FULL SCAN" in plan.explain()

    def test_explain_index(self):
        plan = plan_query(parse_query("source_id = 'cam-1'"))
        assert "by_source" in plan.explain()


@pytest.fixture(scope="module")
def populated():
    """A small framework with three sources and several uploads."""
    framework = Framework(FrameworkConfig(consensus="solo", n_ipfs_nodes=2))
    cam = Client(framework, framework.register_source("cam-A", tier=SourceTier.TRUSTED))
    mob = Client(framework, framework.register_source("mob-B"))
    receipts = {}
    specs = [
        (cam, b"frame-1", {"timestamp": 100.0, "camera_id": "cam-A",
                           "detections": [{"vehicle_class": "car", "confidence": 0.9}]}),
        (cam, b"frame-2", {"timestamp": 700.0, "camera_id": "cam-A",
                           "detections": [{"vehicle_class": "truck", "confidence": 0.85}]}),
        (mob, b"photo-1", {"timestamp": 720.0,
                           "detections": [{"vehicle_class": "truck", "confidence": 0.6},
                                          {"vehicle_class": "car", "confidence": 0.7}]}),
        (mob, b"photo-2", {"timestamp": 5000.0, "detections": []}),
    ]
    for client, data, meta in specs:
        receipts[data] = client.submit(data, meta)
    return framework, cam, receipts


class TestExecution:
    def test_query_by_source(self, populated):
        _, cam, receipts = populated
        rows = cam.query("source_id = 'cam-A'")
        assert {r.entry_id for r in rows} == {
            receipts[b"frame-1"].entry_id,
            receipts[b"frame-2"].entry_id,
        }

    def test_query_by_class_with_residual(self, populated):
        _, cam, receipts = populated
        rows = cam.query("vehicle_class = 'truck' AND source_id = 'mob-B'")
        assert [r.entry_id for r in rows] == [receipts[b"photo-1"].entry_id]

    def test_time_range(self, populated):
        _, cam, receipts = populated
        rows = cam.query("metadata.timestamp >= 600 AND metadata.timestamp <= 800")
        assert {r.entry_id for r in rows} == {
            receipts[b"frame-2"].entry_id,
            receipts[b"photo-1"].entry_id,
        }

    def test_order_and_limit(self, populated):
        _, cam, _ = populated
        rows = cam.query("metadata.timestamp >= 0 AND metadata.timestamp <= 99999 "
                         "ORDER BY metadata.timestamp DESC LIMIT 2")
        stamps = [r.record["metadata"]["timestamp"] for r in rows]
        assert stamps == [5000.0, 720.0]

    def test_full_scan_finds_all(self, populated):
        _, cam, receipts = populated
        rows = cam.query("")
        assert len(rows) == len(receipts)

    def test_fetch_data_verifies_and_returns_bytes(self, populated):
        _, cam, receipts = populated
        rows = cam.query("source_id = 'cam-A' ORDER BY metadata.timestamp", fetch_data=True)
        assert rows[0].data == b"frame-1"
        assert rows[0].verified

    def test_point_get(self, populated):
        _, cam, receipts = populated
        row = cam.engine.get(receipts[b"photo-1"].entry_id, fetch_data=True)
        assert row.data == b"photo-1"

    def test_integrity_violation_detected(self, populated):
        framework, cam, receipts = populated
        entry_id = receipts[b"frame-1"].entry_id
        record = dict(cam.get_metadata(entry_id))
        record["data_hash"] = "0" * 64  # claim a different payload
        with pytest.raises(IntegrityError):
            cam.engine.fetch_payload(record)

    def test_stats_accumulate(self, populated):
        _, cam, _ = populated
        before = cam.engine.stats.queries
        cam.query("source_id = 'cam-A'")
        assert cam.engine.stats.queries == before + 1

    def test_index_path_scans_fewer_rows_than_full(self, populated):
        _, cam, _ = populated
        engine = cam.engine
        engine.cache_enabled = False  # measure real scans, not cache hits
        start = engine.stats.rows_scanned
        engine.run("source_id = 'mob-B'")
        indexed_scan = engine.stats.rows_scanned - start
        start = engine.stats.rows_scanned
        engine.run("")
        full_scan = engine.stats.rows_scanned - start
        assert indexed_scan < full_scan
