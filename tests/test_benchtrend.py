"""The BENCH envelope, history store, and direction-aware bench diffing."""

import json

import pytest

from repro.bench.report import emit_json, results_dir, series_stats
from repro.errors import ObservabilityError
from repro.obs.benchtrend import (
    EXACT,
    HIGHER_IS_BETTER,
    SCHEMA_VERSION,
    TIMING,
    classify_metric,
    compare_dirs,
    config_fingerprint,
    diff_docs,
    load_bench,
    load_history,
    make_envelope,
    migrate_legacy,
    record_history,
)


def envelope(name="demo", seed=7, meta=None, **series):
    """A v2 doc with mean-bearing stats blocks for each kwarg series."""
    return make_envelope(
        name,
        {key: {**series_stats(vals), "values": list(vals)} for key, vals in series.items()},
        meta=meta or {"n_items": 4},
        seed=seed,
    )


class TestEnvelope:
    def test_envelope_fields(self):
        doc = envelope(tx_per_s=[100.0, 110.0])
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["name"] == "demo"
        assert doc["seed"] == 7
        assert doc["config_fingerprint"] == config_fingerprint("demo", {"n_items": 4})
        assert doc["series"]["tx_per_s"]["mean"] == 105.0

    def test_fingerprint_is_stable_and_config_sensitive(self):
        assert config_fingerprint("a", {"x": 1}) == config_fingerprint("a", {"x": 1})
        assert config_fingerprint("a", {"x": 1}) != config_fingerprint("a", {"x": 2})
        assert config_fingerprint("a", {"x": 1}) != config_fingerprint("b", {"x": 1})
        # Key order does not matter: the canonical form is sorted.
        assert config_fingerprint("a", {"x": 1, "y": 2}) == config_fingerprint(
            "a", {"y": 2, "x": 1}
        )

    def test_migrate_legacy_lifts_v1(self):
        v1 = {"name": "old", "meta": {"seed": 3, "k": 1}, "series": {"m": {"mean": 2.0}}}
        doc = migrate_legacy(v1)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["seed"] == 3
        assert doc["meta"] == {"seed": 3, "k": 1}  # meta kept byte-for-byte
        assert doc["series"] == {"m": {"mean": 2.0}}

    def test_migrate_passes_v2_through(self):
        doc = envelope(m=[1.0])
        assert migrate_legacy(doc) == doc

    def test_migrate_rejects_nameless_doc(self):
        with pytest.raises(ObservabilityError):
            migrate_legacy({"series": {}})


class TestEmitJson:
    def test_emit_json_honors_bench_dir_override(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        assert results_dir() == tmp_path
        path = emit_json("trial", {"msgs": [4.0, 6.0]}, meta={"k": 1}, seed=9)
        assert path.parent == tmp_path
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["seed"] == 9
        assert doc["series"]["msgs"]["mean"] == 5.0
        assert doc["series"]["msgs"]["values"] == [4.0, 6.0]

    def test_history_appends_only_when_enabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
        emit_json("trial", {"msgs": [1.0]})
        assert load_history("trial", tmp_path) == []
        monkeypatch.setenv("REPRO_BENCH_HISTORY", "1")
        emit_json("trial", {"msgs": [1.0]})
        emit_json("trial", {"msgs": [2.0]})
        runs = load_history("trial", tmp_path)
        assert [r["series"]["msgs"]["mean"] for r in runs] == [1.0, 2.0]

    def test_record_history_is_append_only(self, tmp_path):
        record_history(envelope(m=[1.0]), tmp_path)
        record_history(envelope(m=[2.0]), tmp_path)
        lines = (tmp_path / "history" / "demo.jsonl").read_text().splitlines()
        assert len(lines) == 2

    def test_load_bench_rejects_garbage(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text("{not json")
        with pytest.raises(ObservabilityError):
            load_bench(bad)


class TestClassifyMetric:
    def test_directions(self):
        assert classify_metric("tx_per_s") == HIGHER_IS_BETTER
        assert classify_metric("per_call_s") == TIMING  # not *_per_s
        assert classify_metric("storage_time_ms") == TIMING
        assert classify_metric("overhead_ratio") == TIMING
        assert classify_metric("msgs_per_tx") == EXACT
        assert classify_metric("pbft_instances") == EXACT


class TestDiffDocs:
    def test_equal_docs_pass(self):
        doc = envelope(tx_per_s=[100.0], msgs_per_tx=[4.0])
        assert diff_docs(doc, doc).ok

    def test_throughput_gates_under_timing_tolerance(self):
        base = envelope(tx_per_s=[100.0])
        # Machine-dependent: informational unless a timing tolerance gates it.
        assert diff_docs(base, envelope(tx_per_s=[50.0])).ok
        report = diff_docs(base, envelope(tx_per_s=[15.0]), timing_tolerance=4.0)
        assert not report.ok  # >5x below baseline
        assert report.regressions[0].series == "tx_per_s"
        assert diff_docs(base, envelope(tx_per_s=[25.0]), timing_tolerance=4.0).ok
        # A throughput *gain* never regresses.
        assert diff_docs(base, envelope(tx_per_s=[200.0]), timing_tolerance=4.0).ok

    def test_exact_metric_gates_both_directions(self):
        base = envelope(msgs_per_tx=[4.0])
        assert not diff_docs(base, envelope(msgs_per_tx=[5.0]), tolerance=0.1).ok
        assert not diff_docs(base, envelope(msgs_per_tx=[3.0]), tolerance=0.1).ok
        assert diff_docs(base, envelope(msgs_per_tx=[4.2]), tolerance=0.1).ok

    def test_timing_informational_without_explicit_tolerance(self):
        base = envelope(per_call_s=[1e-6])
        cur = envelope(per_call_s=[1e-3])  # 1000x slower
        assert diff_docs(base, cur).ok  # timing not gated by default
        report = diff_docs(base, cur, timing_tolerance=4.0)
        assert not report.ok  # but a generous explicit gate catches it
        assert diff_docs(base, envelope(per_call_s=[2e-6]), timing_tolerance=4.0).ok

    def test_missing_series_is_a_regression(self):
        base = envelope(msgs_per_tx=[4.0], tx_per_s=[100.0])
        cur = envelope(msgs_per_tx=[4.0])
        report = diff_docs(base, cur)
        assert not report.ok
        assert "missing" in report.regressions[0].note

    def test_new_series_is_informational(self):
        base = envelope(msgs_per_tx=[4.0])
        cur = envelope(msgs_per_tx=[4.0], blocks=[2.0])
        report = diff_docs(base, cur)
        assert report.ok
        assert any("new series" in d.note for d in report.deltas)

    def test_render_lines_summarize(self):
        report = diff_docs(envelope(msgs_per_tx=[4.0]), envelope(msgs_per_tx=[9.0]))
        lines = report.render_lines()
        assert lines[0].startswith("REGRESSED")
        assert "1 regression(s)" in lines[-1]


class TestCompareDirs:
    def _write(self, directory, doc):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{doc['name']}.json").write_text(json.dumps(doc))

    def test_injected_regression_fails_and_clean_run_passes(self, tmp_path):
        base_dir, cur_dir = tmp_path / "base", tmp_path / "cur"
        self._write(base_dir, envelope(msgs_per_tx=[4.0]))
        self._write(cur_dir, envelope(msgs_per_tx=[4.0]))
        assert compare_dirs(base_dir, cur_dir).ok
        self._write(cur_dir, envelope(msgs_per_tx=[8.0]))  # inject 2x regression
        assert not compare_dirs(base_dir, cur_dir).ok

    def test_no_baseline_is_informational(self, tmp_path):
        base_dir, cur_dir = tmp_path / "base", tmp_path / "cur"
        base_dir.mkdir()
        self._write(cur_dir, envelope(msgs_per_tx=[4.0]))
        report = compare_dirs(base_dir, cur_dir)
        assert report.ok
        assert any("no checked-in baseline" in d.note for d in report.deltas)

    def test_requested_name_missing_from_current_is_an_error(self, tmp_path):
        base_dir, cur_dir = tmp_path / "base", tmp_path / "cur"
        cur_dir.mkdir()
        self._write(base_dir, envelope(msgs_per_tx=[4.0]))
        with pytest.raises(ObservabilityError, match="missing"):
            compare_dirs(base_dir, cur_dir, names=["demo"])

    def test_empty_current_dir_is_an_error(self, tmp_path):
        (tmp_path / "cur").mkdir()
        with pytest.raises(ObservabilityError):
            compare_dirs(tmp_path, tmp_path / "cur")


class TestBenchDiffCli:
    def _write(self, directory, doc):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{doc['name']}.json").write_text(json.dumps(doc))

    def test_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        base_dir, cur_dir = tmp_path / "base", tmp_path / "cur"
        self._write(base_dir, envelope(msgs_per_tx=[4.0]))
        self._write(cur_dir, envelope(msgs_per_tx=[4.0]))
        argv = ["bench-diff", "--baseline", str(base_dir), "--current", str(cur_dir)]
        assert main(argv) == 0
        self._write(cur_dir, envelope(msgs_per_tx=[8.0]))
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_usage_error_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(["bench-diff", "--baseline", str(empty), "--current", str(empty)])
        assert code == 2

    def test_against_checked_in_baselines(self, tmp_path, monkeypatch, capsys):
        """The real repo baselines diff cleanly against themselves."""
        from repro.cli import main

        assert main(["bench-diff", "--current", "benchmarks/results"]) == 0
