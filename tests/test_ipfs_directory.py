"""Tests for UnixFS directories and path resolution."""

import pytest

from repro.errors import DagError
from repro.ipfs import FixedSizeChunker, MemoryBlockstore, UnixFS
from repro.ipfs.directory import (
    add_directory,
    add_tree,
    is_directory,
    list_directory,
    resolve_path,
)
from repro.util.rng import rng_for


@pytest.fixture()
def fs():
    store = MemoryBlockstore()
    return UnixFS(store, chunker=FixedSizeChunker(100), fanout=4)


TREE = {
    "cam-00": {
        "frame-0.raw": b"frame zero bytes",
        "frame-1.raw": b"frame one bytes!",
    },
    "cam-01": {"frame-0.raw": b"other camera"},
    "MANIFEST": b"2 cameras",
}


class TestDirectories:
    def test_add_tree_and_resolve_file(self, fs):
        root = add_tree(fs, TREE)
        cid = resolve_path(fs.blockstore, f"{root.encode()}/cam-00/frame-1.raw")
        assert fs.read_file(cid) == b"frame one bytes!"

    def test_ipfs_prefix_accepted(self, fs):
        root = add_tree(fs, TREE)
        cid = resolve_path(fs.blockstore, f"/ipfs/{root.encode()}/MANIFEST")
        assert fs.read_file(cid) == b"2 cameras"

    def test_root_resolves_to_itself(self, fs):
        root = add_tree(fs, TREE)
        assert resolve_path(fs.blockstore, root.encode()) == root

    def test_list_directory(self, fs):
        root = add_tree(fs, TREE)
        entries = {e.name: e for e in list_directory(fs.blockstore, root)}
        assert set(entries) == {"cam-00", "cam-01", "MANIFEST"}
        assert entries["cam-00"].is_dir
        assert not entries["MANIFEST"].is_dir

    def test_is_directory(self, fs):
        root = add_tree(fs, TREE)
        file_cid = fs.add_file(b"just a file").cid
        assert is_directory(fs.blockstore, root)
        assert not is_directory(fs.blockstore, file_cid)

    def test_deterministic_cid(self, fs):
        store2 = MemoryBlockstore()
        fs2 = UnixFS(store2, chunker=FixedSizeChunker(100), fanout=4)
        assert add_tree(fs, TREE) == add_tree(fs2, TREE)

    def test_entry_order_irrelevant(self, fs):
        a = add_directory(fs.blockstore, {
            "x": (fs.add_file(b"1").cid, 1), "y": (fs.add_file(b"2").cid, 1),
        })
        b = add_directory(fs.blockstore, {
            "y": (fs.add_file(b"2").cid, 1), "x": (fs.add_file(b"1").cid, 1),
        })
        assert a == b

    def test_missing_segment_raises(self, fs):
        root = add_tree(fs, TREE)
        with pytest.raises(DagError, match="not found"):
            resolve_path(fs.blockstore, f"{root.encode()}/cam-99")

    def test_descend_into_file_raises(self, fs):
        root = add_tree(fs, TREE)
        with pytest.raises(DagError, match="non-directory"):
            resolve_path(fs.blockstore, f"{root.encode()}/MANIFEST/nope")

    def test_list_non_directory_raises(self, fs):
        cid = fs.add_file(b"flat").cid
        with pytest.raises(DagError):
            list_directory(fs.blockstore, cid)

    def test_invalid_names_rejected(self, fs):
        with pytest.raises(DagError):
            add_tree(fs, {"bad/name": b"x"})
        with pytest.raises(DagError):
            add_tree(fs, {"": b"x"})
        with pytest.raises(DagError):
            add_tree(fs, {"x": 42})

    def test_large_files_in_tree(self, fs):
        data = rng_for(1, "dir").bytes(1000)  # multi-chunk file
        root = add_tree(fs, {"big.bin": data})
        cid = resolve_path(fs.blockstore, f"{root.encode()}/big.bin")
        assert fs.read_file(cid) == data

    def test_empty_path_rejected(self, fs):
        with pytest.raises(DagError):
            resolve_path(fs.blockstore, "///")

    def test_directory_sizes_propagate(self, fs):
        root = add_tree(fs, TREE)
        entries = {e.name: e for e in list_directory(fs.blockstore, root)}
        assert entries["cam-00"].size >= len(b"frame zero bytes") + len(b"frame one bytes!")
