"""DurableStore disk semantics and the wire codec: framing, sync tiers,
torn writes, injected media faults, atomic files, and exact round-trips."""

import pytest

from repro.errors import StorageError, WalCorruptionError
from repro.storage import CORRUPT, TRUNCATE, DurableStore
from repro.storage.codec import (
    block_from_doc,
    block_to_doc,
    tx_from_doc,
    tx_to_doc,
)
from repro.util.serialization import canonical_json

from tests.fabric_helpers import make_network


class TestFramingAndSync:
    def test_synced_records_round_trip_in_order(self):
        store = DurableStore()
        payloads = [b"alpha", b"beta", b"\x00" * 100, b""]
        for p in payloads:
            store.append("wal", p)
        store.sync()
        records, tail = store.read_log("wal")
        assert records == payloads
        assert tail == ""

    def test_unsynced_records_are_invisible_to_readers(self):
        store = DurableStore()
        store.append("wal", b"never synced")
        assert store.read_log("wal") == ([], "")
        assert store.log_bytes("wal") == 0
        assert store.log_bytes("wal", synced_only=False) > 0

    def test_crash_loses_exactly_the_unsynced_tier(self):
        store = DurableStore()
        store.append("wal", b"durable")
        store.sync()
        store.append("wal", b"page cache only")
        store.crash()
        assert store.read_log("wal") == ([b"durable"], "")

    def test_torn_crash_leaves_a_detectable_partial_frame(self):
        store = DurableStore()
        store.append("wal", b"interrupted mid-write")
        store.crash(torn=True)
        records, tail = store.read_log("wal")
        assert records == []
        assert tail == "torn"

    def test_payload_must_be_bytes(self):
        with pytest.raises(StorageError, match="bytes"):
            DurableStore().append("wal", "a string")  # type: ignore[arg-type]


class TestMediaFaults:
    def _store_with(self, *payloads):
        store = DurableStore()
        for p in payloads:
            store.append("wal", p)
        store.sync()
        return store

    def test_truncate_drops_only_the_last_frame(self):
        store = self._store_with(b"first", b"second", b"third")
        detail = store.damage_tail("wal", TRUNCATE)
        assert "frame 3" in detail
        records, tail = store.read_log("wal")
        assert records == [b"first", b"second"]
        assert tail == "torn"

    def test_corrupt_raises_on_read(self):
        store = self._store_with(b"rotting payload", b"after")
        store.damage_tail("wal", CORRUPT)
        with pytest.raises(WalCorruptionError, match="checksum mismatch"):
            store.read_log("wal")

    def test_damage_on_empty_log_is_a_noop(self):
        assert DurableStore().damage_tail("wal", CORRUPT).startswith("no-op")

    def test_unknown_mode_is_an_error(self):
        with pytest.raises(StorageError, match="unknown damage mode"):
            self._store_with(b"x").damage_tail("wal", "shred")

    def test_truncate_log_drops_both_tiers(self):
        store = self._store_with(b"old")
        store.append("wal", b"pending")
        store.truncate_log("wal")
        store.sync()
        assert store.read_log("wal") == ([], "")


class TestAtomicFiles:
    def test_file_visible_only_after_sync(self):
        store = DurableStore()
        store.write_file("checkpoint", b"v1")
        assert store.read_file("checkpoint") is None
        store.sync()
        assert store.read_file("checkpoint") == b"v1"

    def test_crash_discards_the_pending_replacement(self):
        store = DurableStore()
        store.write_file("checkpoint", b"v1")
        store.sync()
        store.write_file("checkpoint", b"v2-half-written")
        store.crash()
        assert store.read_file("checkpoint") == b"v1"

    def test_corrupt_file_flips_content(self):
        store = DurableStore()
        store.write_file("checkpoint", b"pristine-bytes")
        store.sync()
        assert "checkpoint" in store.corrupt_file("checkpoint")
        assert store.read_file("checkpoint") != b"pristine-bytes"

    def test_listings(self):
        store = DurableStore()
        store.append("wal", b"r")
        store.write_file("checkpoint", b"c")
        store.sync()
        assert store.logs() == ["wal"]
        assert store.files() == ["checkpoint"]


class TestCodecRoundTrip:
    def _committed_block(self):
        net, channel, alice = make_network(peers_per_org=2)
        channel.invoke(alice, "kv", "put", ["k", "v"])
        channel.invoke(alice, "kv", "put_indexed", ["cat", "item", "v2"])
        peer = next(iter(channel.peers.values()))
        return peer.ledger.block(peer.ledger.height - 1)

    def test_tx_round_trips_exactly(self):
        block = self._committed_block()
        for tx in block.transactions:
            doc = tx_to_doc(tx)
            assert canonical_json(tx_to_doc(tx_from_doc(doc))) == canonical_json(doc)
            rebuilt = tx_from_doc(doc)
            assert rebuilt.tx_id == tx.tx_id
            assert rebuilt.rwset == tx.rwset
            assert rebuilt.endorsements == tx.endorsements

    def test_block_round_trips_with_validation_codes(self):
        block = self._committed_block()
        doc = block_to_doc(block)
        rebuilt = block_from_doc(doc)
        assert rebuilt.header == block.header
        assert tuple(rebuilt.validation_codes) == tuple(block.validation_codes)
        assert canonical_json(block_to_doc(rebuilt)) == canonical_json(doc)
