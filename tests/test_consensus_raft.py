"""Tests for the Raft baseline: elections, replication, fault recovery."""

import pytest

from repro.consensus import RaftCluster, Role
from repro.errors import ConsensusError
from repro.net import ConstantLatency, SimNetwork


def make_cluster(n=3, seed=1):
    net = SimNetwork(latency=ConstantLatency(base=0.002))
    return RaftCluster(n_nodes=n, network=net, seed=seed)


def settle(cluster, duration=1.0, step=0.1):
    end = cluster.network.clock.now() + duration
    while cluster.network.clock.now() < end:
        cluster.network.run(until=cluster.network.clock.now() + step)


class TestElection:
    def test_exactly_one_leader_emerges(self):
        cluster = make_cluster()
        leader = cluster.elect()
        settle(cluster, 0.5)
        leaders = [n for n in cluster.nodes.values() if n.role is Role.LEADER]
        assert len(leaders) == 1
        assert leaders[0].name == leader.name

    def test_all_nodes_converge_on_term(self):
        cluster = make_cluster()
        cluster.elect()
        settle(cluster, 0.5)
        terms = {n.term for n in cluster.nodes.values()}
        assert len(terms) == 1

    def test_minimum_size(self):
        with pytest.raises(ConsensusError):
            RaftCluster(n_nodes=1)

    def test_leader_reelected_after_crash(self):
        cluster = make_cluster(n=5)
        old = cluster.elect()
        cluster.network.set_node_up(old.name, False)
        settle(cluster, 2.0)
        new = cluster.leader()
        assert new is not None
        assert new.name != old.name
        assert new.term > old.term


class TestReplication:
    def test_committed_on_all_nodes(self):
        cluster = make_cluster()
        cluster.elect()
        for i in range(5):
            cluster.submit({"n": i})
        settle(cluster, 1.0)
        for name in cluster.node_names:
            assert cluster.committed_payloads(name) == [{"n": i} for i in range(5)]

    def test_commit_callback_fires(self):
        committed = []
        net = SimNetwork(latency=ConstantLatency(base=0.002))
        cluster = RaftCluster(
            n_nodes=3,
            network=net,
            seed=2,
            on_commit=lambda node, idx, e: committed.append((node, idx)),
        )
        cluster.elect()
        cluster.submit("x")
        settle(cluster, 1.0)
        # Every node commits index 1.
        assert {(n, 1) for n in cluster.node_names} <= set(committed)

    def test_log_order_preserved(self):
        cluster = make_cluster()
        cluster.elect()
        for i in range(10):
            cluster.submit(i)
        settle(cluster, 1.0)
        assert cluster.committed_payloads() == list(range(10))

    def test_follower_catches_up_after_restart(self):
        cluster = make_cluster(n=3)
        leader = cluster.elect()
        follower = next(n for n in cluster.node_names if n != leader.name)
        cluster.network.set_node_up(follower, False)
        for i in range(3):
            cluster.submit(i)
        settle(cluster, 1.0)
        cluster.network.set_node_up(follower, True)
        settle(cluster, 2.0)
        assert cluster.committed_payloads(follower) == [0, 1, 2]

    def test_majority_partition_still_commits(self):
        cluster = make_cluster(n=5)
        leader = cluster.elect()
        others = [n for n in cluster.node_names if n != leader.name]
        # Leader keeps a majority side: itself + 2 others.
        cluster.network.partition([leader.name] + others[:2], others[2:])
        settle(cluster, 1.0)
        cluster.submit("majority commit")
        settle(cluster, 2.0)
        assert "majority commit" in cluster.committed_payloads(leader.name)

    def test_minority_partition_cannot_commit(self):
        cluster = make_cluster(n=5)
        leader = cluster.elect()
        others = [n for n in cluster.node_names if n != leader.name]
        # Leader isolated with a single follower: a 2/5 minority.
        cluster.network.partition([leader.name, others[0]], others[1:])
        before = leader.commit_index
        leader.propose("doomed")
        settle(cluster, 2.0)
        assert leader.commit_index == before
