"""Regression tests for the batched ingest/order/query pipeline.

Covers the three bug fixes (provenance misattribution in multi-source
batches, fatal-instead-of-skipped admission failures, query-cache height
staleness + dishonest ``verified`` flags) and the batched-consensus
contract (one PBFT instance per cut block, per-transaction verdicts).
"""

import pytest

from repro.core import BatchIngestor, Client, Framework, FrameworkConfig
from repro.errors import UntrustedSourceError
from repro.fabric import BftOrderer
from repro.trust import SourceTier
from repro.workloads.traffic import IngestItem

from tests.fabric_helpers import make_network

META = {"timestamp": 1.0, "detections": []}


def make_framework(batch=8, consensus="solo"):
    return Framework(FrameworkConfig(consensus=consensus, max_batch_size=batch))


def make_items(source_id, n=2):
    return [
        IngestItem(
            source_id=source_id,
            payload=f"{source_id}-frame-{i}".encode() * 40,
            metadata=dict(META),
            observation=None,
        )
        for i in range(n)
    ]


def quarantine(framework, source_id):
    for _ in range(30):
        framework.trust.record_validation(source_id, False, 0, 4)


class TestBatchProvenanceAttribution:
    def test_each_entry_attributed_to_its_own_source(self):
        """A 3-source batch must not attribute everything to the first
        source (or a synthetic 'batch-ingestor' actor)."""
        framework = make_framework()
        ingestor = BatchIngestor(framework)
        sources = ["cam-a", "cam-b", "cam-c"]
        items = []
        for source in sources:
            ingestor.register(framework.register_source(source, tier=SourceTier.TRUSTED))
            items.extend(make_items(source, 2))
        report = ingestor.ingest(items)
        assert report.committed == 6

        client = Client(framework, framework.register_source("auditor", tier=SourceTier.TRUSTED))
        by_entry = {entry_id: item for entry_id, item in zip(report.entry_ids, items)}
        seen_actors = set()
        for entry_id, item in by_entry.items():
            trail = client.provenance(entry_id)
            actors = {event["actor"] for event in trail}
            assert actors == {item.source_id}
            seen_actors |= actors
        assert seen_actors == set(sources)

    def test_trail_matches_client_submit_shape(self):
        """Batch ingest writes the same captured → stored trail as
        Client.submit, with the same detail keys."""
        framework = make_framework()
        identity = framework.register_source("cam-t", tier=SourceTier.TRUSTED)
        ingestor = BatchIngestor(framework)
        ingestor.register(identity)
        report = ingestor.ingest(make_items("cam-t", 1))

        client = Client(framework, identity)
        submitted = client.submit(b"reference-payload", dict(META))

        batch_trail = client.provenance(report.entry_ids[0])
        submit_trail = client.provenance(submitted.entry_id)
        assert [e["action"] for e in batch_trail] == [e["action"] for e in submit_trail]
        assert [e["action"] for e in batch_trail] == ["captured", "stored"]
        for batch_event, submit_event in zip(batch_trail, submit_trail):
            assert set(batch_event["details"]) == set(submit_event["details"])

    def test_provenance_chain_verifies(self):
        framework = make_framework()
        ingestor = BatchIngestor(framework)
        ingestor.register(framework.register_source("cam-v", tier=SourceTier.TRUSTED))
        report = ingestor.ingest(make_items("cam-v", 3))
        client = Client(framework, framework.register_source("reader", tier=SourceTier.TRUSTED))
        for entry_id in report.entry_ids:
            assert client.verify_provenance(entry_id)["length"] == 2


class TestPartialAdmission:
    def test_rejected_source_skipped_not_fatal(self):
        framework = make_framework()
        ingestor = BatchIngestor(framework)
        ingestor.register(framework.register_source("good-cam", tier=SourceTier.TRUSTED))
        bad = framework.register_source("bad-cam")
        ingestor.register(bad)
        quarantine(framework, "bad-cam")

        items = make_items("good-cam", 3) + make_items("bad-cam", 2)
        report = ingestor.ingest(items)
        assert report.committed == 3
        assert report.rejected == 2
        assert report.skipped_sources == ("bad-cam", "bad-cam")
        assert report.submitted == 3  # skipped items never became transactions

    def test_unregistered_source_skipped_when_others_admissible(self):
        framework = make_framework()
        ingestor = BatchIngestor(framework)
        ingestor.register(framework.register_source("known", tier=SourceTier.TRUSTED))
        report = ingestor.ingest(make_items("known", 2) + make_items("ghost", 1))
        assert report.committed == 2
        assert report.rejected == 1
        assert "ghost" in report.skipped_sources

    def test_skipped_payloads_not_counted(self):
        framework = make_framework()
        ingestor = BatchIngestor(framework)
        ingestor.register(framework.register_source("only", tier=SourceTier.TRUSTED))
        good = make_items("only", 2)
        report = ingestor.ingest(good + make_items("ghost", 2))
        assert report.payload_bytes == sum(len(i.payload) for i in good)

    def test_all_inadmissible_raises(self):
        framework = make_framework()
        ingestor = BatchIngestor(framework)
        with pytest.raises(UntrustedSourceError, match="no admissible item"):
            ingestor.ingest(make_items("ghost", 3))

    def test_skipped_entries_still_retrievable_for_good_sources(self):
        framework = make_framework()
        ingestor = BatchIngestor(framework)
        identity = framework.register_source("ret-cam", tier=SourceTier.TRUSTED)
        ingestor.register(identity)
        report = ingestor.ingest(make_items("ret-cam", 2) + make_items("ghost", 1))
        client = Client(framework, identity)
        for entry_id in report.entry_ids:
            assert client.retrieve(entry_id).verified


class TestBlocksAccounting:
    def test_blocks_counts_only_data_blocks(self):
        """Provenance/trust follow-up blocks must not inflate the ingest
        block count: 8 items in one batch = 1 data block."""
        framework = make_framework(batch=8)
        ingestor = BatchIngestor(framework)  # provenance ON: cuts extra blocks
        ingestor.register(framework.register_source("blk-cam", tier=SourceTier.TRUSTED))
        height_before = framework.channel.height()
        report = ingestor.ingest(make_items("blk-cam", 8))
        assert report.blocks == 1
        # The follow-ups really did cut more blocks — they are just not
        # charged to ingest throughput.
        assert framework.channel.height() - height_before > report.blocks


class TestCacheStalenessRace:
    def test_block_committed_mid_query_is_not_served_stale(self):
        """A block landing between the chain read and the cache store must
        invalidate the cached result, not be masked by it."""
        framework = make_framework()
        identity = framework.register_source("race-cam", tier=SourceTier.TRUSTED)
        client = Client(framework, identity)
        client.submit(b"first", dict(META))
        engine = client.engine

        query = "source_id = 'race-cam'"
        # Pin the scan route: the race is injected via _execute_paths, and
        # the cache's height snapshot is shared by both routes anyway.
        engine.use_index = False
        original = engine._execute_paths

        def racy_execute(plan):
            rows = original(plan)
            # A writer commits while this query is executing.
            client.submit(b"second", dict(META))
            return rows

        engine._execute_paths = racy_execute
        try:
            assert len(engine.run(query)) == 1
        finally:
            engine._execute_paths = original
        # The cached snapshot predates the mid-query commit; the next run
        # must re-execute and see both entries.
        rows = engine.run(query)
        assert len(rows) == 2
        assert engine.stats.cache_hits == 0


class TestVerifiedFlag:
    def test_missing_data_hash_is_unverified(self):
        framework = make_framework()
        client = Client(framework, framework.register_source("vf-cam", tier=SourceTier.TRUSTED))
        add_result = framework.ipfs.add(b"unverifiable-bytes")
        record = {"entry_id": "synthetic", "cid": add_result.cid.encode()}
        data, verified = client.engine.fetch_payload_verified(record)
        assert data == b"unverifiable-bytes"
        assert verified is False

    def test_present_data_hash_is_verified(self):
        framework = make_framework()
        identity = framework.register_source("vf2-cam", tier=SourceTier.TRUSTED)
        client = Client(framework, identity)
        result = client.submit(b"payload", dict(META))
        row = client.engine.get(result.entry_id, fetch_data=True)
        assert row.verified is True

    def test_verify_false_never_claims_verified(self):
        framework = make_framework()
        identity = framework.register_source("vf3-cam", tier=SourceTier.TRUSTED)
        client = Client(framework, identity)
        result = client.submit(b"payload", dict(META))
        row = client.engine.get(result.entry_id, fetch_data=True, verify=False)
        assert row.verified is False


class TestBatchedConsensus:
    def test_one_instance_per_cut_block(self):
        framework = make_framework(batch=8, consensus="bft")
        ingestor = BatchIngestor(framework, record_provenance=False)
        ingestor.register(framework.register_source("bft-cam", tier=SourceTier.TRUSTED))
        before = framework.channel.orderer.batches_ordered
        report = ingestor.ingest(make_items("bft-cam", 8))
        assert report.committed == 8
        orderer = framework.channel.orderer
        assert orderer.batches_ordered - before == 1
        # All eight transactions share the one decision's sequence number.
        seqs = {orderer.decisions[tx].seq for tx in list(orderer.decisions)[-8:]}
        assert len(seqs) == 1

    def test_mixed_verdicts_in_one_instance(self):
        """One batched instance must still produce per-transaction
        accept/reject outcomes (REJECTED_BY_CONSENSUS flagging)."""
        net, channel, alice = make_network()  # solo channel: tx factory only
        bad_ids = set()

        orderer = BftOrderer(
            max_batch_size=4, validator=lambda tx: tx.tx_id not in bad_ids
        )
        delivered = []
        orderer.register_delivery(lambda block, rejected: delivered.append((block, rejected)))

        txs = []
        for i in range(4):
            proposal, responses = channel.endorse(alice, "kv", "put", [f"k{i}", "v"])
            txs.append(channel.assemble(proposal, responses))
        bad_ids.update({txs[1].tx_id, txs[3].tx_id})
        for tx in txs:
            orderer.submit(tx)
        orderer.flush()

        assert orderer.batches_ordered == 1
        assert [orderer.decisions[tx.tx_id].accepted for tx in txs] == [
            True, False, True, False,
        ]
        (block, rejected), = delivered
        assert len(block.transactions) == 4
        assert rejected == {txs[1].tx_id, txs[3].tx_id}
        # Per-tx votes are projected from the one batch decision.
        for tx in txs:
            decision = orderer.decisions[tx.tx_id]
            assert decision.valid_votes + decision.invalid_votes >= 3

    def test_messages_per_tx_shrink_with_batch_size(self):
        """The amortization claim: consensus msgs/tx at batch 16 must be
        at most half of batch 1."""
        ratios = {}
        for batch in (1, 16):
            framework = make_framework(batch=batch, consensus="bft")
            ingestor = BatchIngestor(framework, record_provenance=False)
            ingestor.register(
                framework.register_source("amortize-cam", tier=SourceTier.TRUSTED)
            )
            orderer = framework.channel.orderer
            msgs_before, txs_before = orderer.consensus_messages, orderer.txs_ordered
            ingestor.ingest(make_items("amortize-cam", 16))
            msgs = orderer.consensus_messages - msgs_before
            txs = orderer.txs_ordered - txs_before
            assert txs == 16
            ratios[batch] = msgs / txs
        assert ratios[16] <= 0.5 * ratios[1]
