"""Tests for query-result caching with height-based invalidation."""

import pytest

from repro.core import Client, Framework, FrameworkConfig
from repro.trust import SourceTier

META = {"timestamp": 1.0, "camera_id": "cache-cam",
        "detections": [{"vehicle_class": "car", "confidence": 0.9}]}


@pytest.fixture()
def env():
    framework = Framework(FrameworkConfig(consensus="solo"))
    client = Client(
        framework, framework.register_source("cache-cam", tier=SourceTier.TRUSTED)
    )
    client.submit(b"first", dict(META))
    return framework, client


class TestQueryCache:
    def test_repeat_query_hits_cache(self, env):
        _, client = env
        q = "source_id = 'cache-cam'"
        first = client.query(q)
        assert client.engine.stats.cache_hits == 0
        second = client.query(q)
        assert client.engine.stats.cache_hits == 1
        assert [r.entry_id for r in first] == [r.entry_id for r in second]

    def test_cache_skips_chaincode_scan(self, env):
        _, client = env
        q = "source_id = 'cache-cam'"
        client.query(q)
        scanned_before = client.engine.stats.rows_scanned
        client.query(q)
        assert client.engine.stats.rows_scanned == scanned_before

    def test_new_block_invalidates(self, env):
        _, client = env
        q = "source_id = 'cache-cam'"
        assert len(client.query(q)) == 1
        client.submit(b"second", dict(META))
        rows = client.query(q)  # height changed: fresh scan, fresh result
        assert len(rows) == 2

    def test_fetch_data_bypasses_cache(self, env):
        _, client = env
        q = "source_id = 'cache-cam'"
        client.query(q, fetch_data=True)
        client.query(q, fetch_data=True)
        assert client.engine.stats.cache_hits == 0

    def test_distinct_queries_cached_separately(self, env):
        _, client = env
        client.query("source_id = 'cache-cam'")
        client.query("vehicle_class = 'car'")
        client.query("source_id = 'cache-cam'")
        client.query("vehicle_class = 'car'")
        assert client.engine.stats.cache_hits == 2

    def test_cache_can_be_disabled(self, env):
        _, client = env
        client.engine.cache_enabled = False
        q = "source_id = 'cache-cam'"
        client.query(q)
        client.query(q)
        assert client.engine.stats.cache_hits == 0

    def test_cached_rows_are_copies_of_the_list(self, env):
        """Mutating a returned list must not corrupt the cache."""
        _, client = env
        q = "source_id = 'cache-cam'"
        rows = client.query(q)
        rows.clear()
        assert len(client.query(q)) == 1


class TestCacheBound:
    def test_cache_is_bounded_with_fifo_eviction(self, env):
        _, client = env
        engine = client.engine
        engine.cache_max_entries = 3
        queries = [f"metadata.timestamp >= {i}" for i in range(5)]
        for q in queries:
            client.query(q)
        assert len(engine._cache) == 3
        assert engine.stats.cache_evictions == 2
        # Oldest-first: the first two queries were evicted, the last three
        # are still warm.
        hits_before = engine.stats.cache_hits
        client.query(queries[-1])
        assert engine.stats.cache_hits == hits_before + 1
        client.query(queries[0])  # evicted: a fresh execution, not a hit
        assert engine.stats.cache_hits == hits_before + 1

    def test_eviction_counter_exported(self, env):
        from repro.obs.metrics import MetricsRegistry, get_registry, set_registry

        _, client = env
        set_registry(MetricsRegistry())
        try:
            engine = client.engine
            engine.cache_max_entries = 1
            client.query("metadata.timestamp >= 1")
            client.query("metadata.timestamp >= 2")
            counter = get_registry().counter("query_cache_evictions_total")
            assert counter.value == 1.0
        finally:
            set_registry(MetricsRegistry())
