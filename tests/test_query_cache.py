"""Tests for query-result caching with height-based invalidation."""

import pytest

from repro.core import Client, Framework, FrameworkConfig
from repro.trust import SourceTier

META = {"timestamp": 1.0, "camera_id": "cache-cam",
        "detections": [{"vehicle_class": "car", "confidence": 0.9}]}


@pytest.fixture()
def env():
    framework = Framework(FrameworkConfig(consensus="solo"))
    client = Client(
        framework, framework.register_source("cache-cam", tier=SourceTier.TRUSTED)
    )
    client.submit(b"first", dict(META))
    return framework, client


class TestQueryCache:
    def test_repeat_query_hits_cache(self, env):
        _, client = env
        q = "source_id = 'cache-cam'"
        first = client.query(q)
        assert client.engine.stats.cache_hits == 0
        second = client.query(q)
        assert client.engine.stats.cache_hits == 1
        assert [r.entry_id for r in first] == [r.entry_id for r in second]

    def test_cache_skips_chaincode_scan(self, env):
        _, client = env
        q = "source_id = 'cache-cam'"
        client.query(q)
        scanned_before = client.engine.stats.rows_scanned
        client.query(q)
        assert client.engine.stats.rows_scanned == scanned_before

    def test_new_block_invalidates(self, env):
        _, client = env
        q = "source_id = 'cache-cam'"
        assert len(client.query(q)) == 1
        client.submit(b"second", dict(META))
        rows = client.query(q)  # height changed: fresh scan, fresh result
        assert len(rows) == 2

    def test_fetch_data_bypasses_cache(self, env):
        _, client = env
        q = "source_id = 'cache-cam'"
        client.query(q, fetch_data=True)
        client.query(q, fetch_data=True)
        assert client.engine.stats.cache_hits == 0

    def test_distinct_queries_cached_separately(self, env):
        _, client = env
        client.query("source_id = 'cache-cam'")
        client.query("vehicle_class = 'car'")
        client.query("source_id = 'cache-cam'")
        client.query("vehicle_class = 'car'")
        assert client.engine.stats.cache_hits == 2

    def test_cache_can_be_disabled(self, env):
        _, client = env
        client.engine.cache_enabled = False
        q = "source_id = 'cache-cam'"
        client.query(q)
        client.query(q)
        assert client.engine.stats.cache_hits == 0

    def test_cached_rows_are_copies_of_the_list(self, env):
        """Mutating a returned list must not corrupt the cache."""
        _, client = env
        q = "source_id = 'cache-cam'"
        rows = client.query(q)
        rows.clear()
        assert len(client.query(q)) == 1
