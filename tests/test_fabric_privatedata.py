"""Tests for private data collections: org-scoped plaintext, public hashes."""

import json

import pytest

from repro.errors import ChaincodeError, FabricError
from repro.fabric import Chaincode, ChaincodeStub, FabricNetwork
from repro.fabric.privatedata import (
    CollectionRegistry,
    PrivateCollection,
    PrivateStateStore,
    private_hash_key,
    value_hash,
)


class EvidenceChaincode(Chaincode):
    """Stores sensitive evidence privately, its hash publicly.

    The value arrives via the transient map, never as a chaincode arg —
    args are signed into the proposal and would leak onto the ledger.
    """

    name = "evidence"

    def store(self, stub: ChaincodeStub, key: str):
        value = stub.get_transient("value")
        if value is None:
            raise ChaincodeError("transient field 'value' is required")
        stub.put_private_data("law-enforcement", key, value)
        stub.put_state("evidence-index:" + key, b"1")  # public marker
        return {"stored": key}

    def read(self, stub: ChaincodeStub, key: str):
        value = stub.get_private_data("law-enforcement", key)
        if value is None:
            raise ChaincodeError(f"no private evidence {key!r}")
        return {"key": key, "value": value.decode()}

    def read_hash(self, stub: ChaincodeStub, key: str):
        return {"hash": stub.get_private_data_hash("law-enforcement", key)}

    def verify(self, stub: ChaincodeStub, key: str, value: str):
        return {"ok": stub.verify_private_disclosure("law-enforcement", key, value.encode())}


@pytest.fixture()
def env():
    net = FabricNetwork()
    channel = net.create_channel("ch", orgs=["police", "city"])
    channel.define_collection("law-enforcement", member_orgs=["police"])
    channel.install_chaincode(EvidenceChaincode())
    client = net.register_identity("officer", "police")
    return net, channel, client


class TestCollectionDefinitions:
    def test_collection_validation(self):
        with pytest.raises(FabricError):
            PrivateCollection(name="", member_orgs=frozenset({"a"}))
        with pytest.raises(FabricError):
            PrivateCollection(name="c", member_orgs=frozenset())

    def test_duplicate_definition_rejected(self, env):
        _, channel, _ = env
        with pytest.raises(FabricError):
            channel.define_collection("law-enforcement", ["police"])

    def test_non_member_store_access_rejected(self):
        registry = CollectionRegistry()
        registry.define(PrivateCollection("c", frozenset({"police"})))
        outsider = PrivateStateStore(org="city", registry=registry)
        with pytest.raises(ChaincodeError):
            outsider.store_for("c")


class TestPrivateFlow:
    def test_member_peer_holds_plaintext(self, env):
        _, channel, client = env
        result = channel.invoke(client, "evidence", "store", ["case-1"],
                       endorsing_orgs=["police"], transient={"value": b"plate KA-01-X-9999"})
        assert result.ok
        police_peer = channel.org_peers("police")[0]
        store = police_peer.private.store_for("law-enforcement")
        assert store.get("case-1") == b"plate KA-01-X-9999"

    def test_non_member_peer_holds_only_hash(self, env):
        _, channel, client = env
        channel.invoke(client, "evidence", "store", ["case-2"],
                       endorsing_orgs=["police"], transient={"value": b"secret"})
        city_peer = channel.org_peers("city")[0]
        # Public hash present on the non-member peer...
        on_chain = city_peer.world.get(private_hash_key("law-enforcement", "case-2"))
        assert on_chain == value_hash(b"secret").encode()
        # ...but no plaintext anywhere in its state or side stores.
        assert not city_peer.private.has_collection("law-enforcement")
        for _, value in city_peer.world.range():
            assert b"secret" not in value

    def test_member_can_read_back_via_chaincode(self, env):
        _, channel, client = env
        channel.invoke(client, "evidence", "store", ["case-3"],
                       endorsing_orgs=["police"], transient={"value": b"witness statement"})
        police_peer = channel.org_peers("police")[0].name
        out = json.loads(channel.query(client, "evidence", "read", ["case-3"], peer=police_peer))
        assert out["value"] == "witness statement"

    def test_non_member_read_fails(self, env):
        _, channel, client = env
        channel.invoke(client, "evidence", "store", ["case-4"],
                       endorsing_orgs=["police"], transient={"value": b"x"})
        city_peer = channel.org_peers("city")[0].name
        with pytest.raises(ChaincodeError, match="not a member"):
            channel.query(client, "evidence", "read", ["case-4"], peer=city_peer)

    def test_anyone_can_verify_disclosure(self, env):
        """A non-member org can check a value disclosed to it off-band."""
        _, channel, client = env
        channel.invoke(client, "evidence", "store", ["case-5"],
                       endorsing_orgs=["police"], transient={"value": b"disclosed later"})
        city_peer = channel.org_peers("city")[0].name
        ok = json.loads(channel.query(client, "evidence", "verify",
                                      ["case-5", "disclosed later"], peer=city_peer))
        bad = json.loads(channel.query(client, "evidence", "verify",
                                       ["case-5", "forged value"], peer=city_peer))
        assert ok["ok"] is True
        assert bad["ok"] is False

    def test_hash_visible_to_all(self, env):
        _, channel, client = env
        channel.invoke(client, "evidence", "store", ["case-6"],
                       endorsing_orgs=["police"], transient={"value": b"v"})
        for peer_name in channel.peers:
            out = json.loads(channel.query(client, "evidence", "read_hash", ["case-6"],
                                           peer=peer_name))
            assert out["hash"] == value_hash(b"v")

    def test_private_payload_not_in_block_bytes(self, env):
        _, channel, client = env
        result = channel.invoke(client, "evidence", "store", ["case-7"],
                       endorsing_orgs=["police"], transient={"value": b"never-on-chain"})
        peer = channel.org_peers("city")[0]
        block = peer.ledger.block(result.block_number)
        for tx in block.transactions:
            assert b"never-on-chain" not in tx.envelope_bytes()

    def test_unknown_collection_rejected(self, env):
        _, channel, client = env

        class BadCc(Chaincode):
            name = "bad"

            def go(self, stub):
                stub.put_private_data("no-such-collection", "k", b"v")
                return {}

        channel.install_chaincode(BadCc())
        with pytest.raises(ChaincodeError, match="unknown private collection"):
            channel.invoke(client, "bad", "go", [], endorsing_orgs=["police"])

    def test_buffered_private_read_within_tx(self, env):
        _, channel, client = env

        class RoundTrip(Chaincode):
            name = "roundtrip"

            def go(self, stub):
                stub.put_private_data("law-enforcement", "k", b"fresh")
                return {"read_back": stub.get_private_data("law-enforcement", "k").decode()}

        channel.install_chaincode(RoundTrip())
        result = channel.invoke(client, "roundtrip", "go", [], endorsing_orgs=["police"])
        assert json.loads(result.response)["read_back"] == "fresh"
