"""Tests for PBFT checkpointing and protocol-state garbage collection."""

from repro.consensus import Behaviour, BftCluster
from repro.net import ConstantLatency, SimNetwork


def make_cluster(interval=10, n=4, behaviours=None):
    return BftCluster(
        n_replicas=n,
        network=SimNetwork(latency=ConstantLatency(base=0.001)),
        behaviours=behaviours,
        checkpoint_interval=interval,
        view_timeout=0.5,
    )


class TestCheckpointing:
    def test_stable_checkpoint_advances(self):
        cluster = make_cluster(interval=10)
        for i in range(25):
            cluster.submit(i)
        cluster.run()
        for replica in cluster.replicas.values():
            assert replica.stable_checkpoint == 19

    def test_slots_garbage_collected(self):
        cluster = make_cluster(interval=5)
        for i in range(12):
            cluster.submit(i)
        cluster.run()
        for replica in cluster.replicas.values():
            # Slots up to the stable checkpoint (seq 9) are gone.
            assert all(seq > 9 for _, seq in replica._slots)
            # The decided log itself is intact.
            assert len(replica.log) == 12

    def test_no_checkpoint_below_interval(self):
        cluster = make_cluster(interval=10)
        for i in range(5):
            cluster.submit(i)
        cluster.run()
        for replica in cluster.replicas.values():
            assert replica.stable_checkpoint == -1
            assert len(replica._slots) == 5

    def test_disabled_by_default(self):
        cluster = BftCluster(
            n_replicas=4, network=SimNetwork(latency=ConstantLatency(base=0.001))
        )
        for i in range(15):
            cluster.submit(i)
        cluster.run()
        for replica in cluster.replicas.values():
            assert replica.stable_checkpoint == -1

    def test_checkpointing_tolerates_byzantine_replica(self):
        cluster = make_cluster(
            interval=5, behaviours={"validator-3": Behaviour.SILENT}
        )
        for i in range(12):
            cluster.submit(i)
        cluster.run()
        honest = [
            r for r in cluster.replicas.values() if r.behaviour is Behaviour.NORMAL
        ]
        # 3 honest replicas still form the 2f+1 checkpoint quorum.
        assert all(r.stable_checkpoint >= 4 for r in honest)

    def test_log_agreement_preserved_across_gc(self):
        cluster = make_cluster(interval=4)
        requests = [cluster.submit(i) for i in range(10)]
        cluster.run()
        for request in requests:
            assert cluster.agreement_reached(request.request_id)

    def test_work_continues_after_checkpoint(self):
        cluster = make_cluster(interval=5)
        for i in range(7):
            cluster.submit(i)
        cluster.run()
        late = cluster.submit("late")
        cluster.run()
        assert cluster.agreement_reached(late.request_id)
