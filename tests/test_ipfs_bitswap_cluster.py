"""Tests for bitswap exchange, IpfsNode, and the cluster as a whole."""

import pytest

from repro.crypto.cid import CID
from repro.errors import BlockNotFoundError, StorageError
from repro.ipfs.bitswap import Engine
from repro.ipfs.block import Block
from repro.ipfs.blockstore import MemoryBlockstore
from repro.ipfs.chunker import FixedSizeChunker
from repro.ipfs.cluster import IpfsCluster
from repro.ipfs.node import IpfsNode
from repro.util.rng import rng_for


def pair():
    a = Engine("a", MemoryBlockstore())
    b = Engine("b", MemoryBlockstore())
    a.connect(b)
    return a, b


class TestBitswapEngine:
    def test_fetch_from_peer(self):
        a, b = pair()
        block = Block.for_data(b"shared block")
        b.blockstore.put(block)
        got = a.want(block.cid, ["b"])
        assert got.data == b"shared block"
        assert a.blockstore.has(block.cid)

    def test_ledger_accounting_both_sides(self):
        a, b = pair()
        block = Block.for_data(b"x" * 100)
        b.blockstore.put(block)
        a.want(block.cid, ["b"])
        assert a.ledger_for("b").bytes_received == 100
        assert b.ledger_for("a").bytes_sent == 100
        assert a.ledger_for("b").blocks_received == 1

    def test_local_block_short_circuits(self):
        a, _ = pair()
        block = Block.for_data(b"local")
        a.blockstore.put(block)
        a.want(block.cid, [])
        assert a.stats.duplicate_wants == 1

    def test_missing_everywhere_raises(self):
        a, _ = pair()
        with pytest.raises(BlockNotFoundError):
            a.want(CID.for_data(b"ghost"), ["b"])
        assert a.stats.fetch_failures == 1

    def test_unknown_provider_skipped(self):
        a, b = pair()
        block = Block.for_data(b"data")
        b.blockstore.put(block)
        got = a.want(block.cid, ["not-connected", "b"])
        assert got.data == b"data"

    def test_freeloader_refused_after_grace(self):
        a, b = pair()
        # Simulate a long history: b already sent a far more than grace.
        ledger = b.ledger_for("a")
        ledger.bytes_sent = Engine.GRACE_BYTES * 10
        ledger.bytes_received = 0
        block = Block.for_data(b"now refused")
        b.blockstore.put(block)
        with pytest.raises(BlockNotFoundError):
            a.want(block.cid, ["b"])
        assert b.stats.refusals == 1

    def test_reciprocating_peer_served(self):
        a, b = pair()
        ledger = b.ledger_for("a")
        ledger.bytes_sent = Engine.GRACE_BYTES * 10
        ledger.bytes_received = Engine.GRACE_BYTES * 9  # healthy ratio
        block = Block.for_data(b"served")
        b.blockstore.put(block)
        assert a.want(block.cid, ["b"]).data == b"served"

    def test_on_transfer_callback(self):
        a, b = pair()
        block = Block.for_data(b"y" * 64)
        b.blockstore.put(block)
        calls = []
        a.want(block.cid, ["b"], on_transfer=lambda peer, n: calls.append((peer, n)))
        assert calls == [("b", 64)]


class TestIpfsNode:
    def test_add_and_cat_local(self):
        node = IpfsNode("n0", chunker=FixedSizeChunker(100))
        data = rng_for(1, "node").bytes(550)
        result = node.add_bytes(data)
        assert node.cat_local(result.cid) == data

    def test_add_auto_pins(self):
        node = IpfsNode("n0")
        result = node.add_bytes(b"pinned content")
        assert node.pins.is_pinned(result.cid)

    def test_gc_after_unpin_removes(self):
        node = IpfsNode("n0", chunker=FixedSizeChunker(50))
        result = node.add_bytes(rng_for(2, "node").bytes(500))
        node.unpin(result.cid)
        gc = node.gc()
        assert gc.removed > 0
        assert not node.has_local(result.cid)

    def test_stat(self):
        node = IpfsNode("n0")
        node.add_bytes(b"a")
        stat = node.stat()
        assert stat.peer_id == "n0"
        assert stat.n_blocks == 1
        assert stat.pinned_roots == 1


class TestIpfsCluster:
    def test_add_then_cat_same_node(self):
        cluster = IpfsCluster(n_nodes=2, chunker=FixedSizeChunker(100))
        data = rng_for(3, "cluster").bytes(1000)
        result = cluster.add(data, node="ipfs-0")
        assert cluster.cat(result.cid, node="ipfs-0") == data

    def test_cross_node_retrieval_via_dht_and_bitswap(self):
        cluster = IpfsCluster(n_nodes=3, chunker=FixedSizeChunker(100))
        data = rng_for(4, "cluster").bytes(2000)
        result = cluster.add(data, node="ipfs-0")
        # ipfs-2 has nothing local; must discover + fetch.
        assert not cluster.node("ipfs-2").has_local(result.cid)
        assert cluster.cat(result.cid, node="ipfs-2") == data
        assert cluster.node("ipfs-2").has_local(result.cid)

    def test_unannounced_content_unreachable_remotely(self):
        cluster = IpfsCluster(n_nodes=2, chunker=FixedSizeChunker(100))
        result = cluster.add(b"secret" * 50, node="ipfs-0", announce=False)
        with pytest.raises(BlockNotFoundError):
            cluster.cat(result.cid, node="ipfs-1")

    def test_unknown_node_rejected(self):
        cluster = IpfsCluster(n_nodes=2)
        with pytest.raises(StorageError):
            cluster.node("nope")

    def test_single_node_cluster(self):
        cluster = IpfsCluster(n_nodes=1)
        result = cluster.add(b"alone")
        assert cluster.cat(result.cid) == b"alone"

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            IpfsCluster(n_nodes=0)

    def test_stat_counts(self):
        cluster = IpfsCluster(n_nodes=2, chunker=FixedSizeChunker(100))
        cluster.add(rng_for(5, "cluster").bytes(500))
        stat = cluster.stat()
        assert stat.n_nodes == 2
        assert stat.total_blocks > 0

    def test_dedup_across_cluster_adds(self):
        cluster = IpfsCluster(n_nodes=2, chunker=FixedSizeChunker(100))
        data = rng_for(6, "cluster").bytes(1000)
        r1 = cluster.add(data, node="ipfs-0")
        r2 = cluster.add(data, node="ipfs-0")
        assert r1.cid == r2.cid

    def test_many_files_many_readers(self):
        cluster = IpfsCluster(n_nodes=4, chunker=FixedSizeChunker(200))
        files = {}
        for i in range(8):
            data = rng_for(7, "cluster", str(i)).bytes(700)
            files[cluster.add(data, node=f"ipfs-{i % 4}").cid] = data
        for i, (cid, data) in enumerate(files.items()):
            reader = f"ipfs-{(i + 1) % 4}"
            assert cluster.cat(cid, node=reader) == data
