"""Tests for blocks and blockstores (memory + filesystem)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.cid import CID
from repro.errors import BlockNotFoundError, InvalidBlockError
from repro.ipfs.block import Block
from repro.ipfs.blockstore import FSBlockstore, MemoryBlockstore


class TestBlock:
    def test_for_data_derives_cid(self):
        block = Block.for_data(b"payload")
        assert block.cid == CID.for_data(b"payload")

    def test_verified_accepts_matching(self):
        cid = CID.for_data(b"payload")
        assert Block.verified(cid, b"payload").data == b"payload"

    def test_verified_rejects_mismatch(self):
        cid = CID.for_data(b"payload")
        with pytest.raises(InvalidBlockError):
            Block.verified(cid, b"tampered")

    def test_len(self):
        assert len(Block.for_data(b"abc")) == 3


def stores(tmp_path):
    return [MemoryBlockstore(), FSBlockstore(tmp_path / "blocks")]


class TestBlockstores:
    def test_put_get_roundtrip(self, tmp_path):
        for store in stores(tmp_path):
            block = Block.for_data(b"hello")
            store.put(block)
            assert store.get(block.cid).data == b"hello"

    def test_has(self, tmp_path):
        for store in stores(tmp_path):
            block = Block.for_data(b"hello")
            assert not store.has(block.cid)
            store.put(block)
            assert store.has(block.cid)

    def test_get_missing_raises(self, tmp_path):
        for store in stores(tmp_path):
            with pytest.raises(BlockNotFoundError):
                store.get(CID.for_data(b"nothing"))

    def test_delete(self, tmp_path):
        for store in stores(tmp_path):
            block = Block.for_data(b"gone")
            store.put(block)
            store.delete(block.cid)
            assert not store.has(block.cid)

    def test_delete_missing_is_noop(self, tmp_path):
        for store in stores(tmp_path):
            store.delete(CID.for_data(b"never"))  # must not raise

    def test_dedup_identical_blocks(self, tmp_path):
        for store in stores(tmp_path):
            block = Block.for_data(b"same")
            store.put(block)
            store.put(block)
            assert len(store) == 1
            assert store.stats.bytes_written == 4

    def test_cids_enumerates_all(self, tmp_path):
        for store in stores(tmp_path):
            blocks = [Block.for_data(bytes([i]) * 10) for i in range(5)]
            for b in blocks:
                store.put(b)
            assert set(store.cids()) == {b.cid for b in blocks}

    def test_stats_track_hits_and_misses(self, tmp_path):
        for store in stores(tmp_path):
            block = Block.for_data(b"x")
            store.put(block)
            store.get(block.cid)
            with pytest.raises(BlockNotFoundError):
                store.get(CID.for_data(b"y"))
            assert store.stats.hits == 1
            assert store.stats.misses == 1


class TestFSBlockstore:
    def test_persistence_across_instances(self, tmp_path):
        root = tmp_path / "persist"
        block = Block.for_data(b"durable")
        FSBlockstore(root).put(block)
        assert FSBlockstore(root).get(block.cid).data == b"durable"

    def test_corruption_detected_on_read(self, tmp_path):
        root = tmp_path / "corrupt"
        store = FSBlockstore(root)
        block = Block.for_data(b"honest bytes")
        store.put(block)
        # Flip bytes on disk behind the store's back.
        path = store._path(block.cid)
        path.write_bytes(b"evil bytes!!")
        with pytest.raises(InvalidBlockError):
            store.get(block.cid)

    def test_sharded_layout(self, tmp_path):
        root = tmp_path / "shards"
        store = FSBlockstore(root)
        block = Block.for_data(b"shard me")
        store.put(block)
        shard = block.cid.encode()[-2:]
        assert (root / shard / f"{block.cid.encode()}.blk").exists()

    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=8, unique=True))
    def test_property_roundtrip_many(self, payloads):
        store = MemoryBlockstore()
        blocks = [Block.for_data(p) for p in payloads]
        for b in blocks:
            store.put(b)
        for b in blocks:
            assert store.get(b.cid).data == b.data
