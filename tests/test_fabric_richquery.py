"""Tests for CouchDB-style rich queries."""

import json

import pytest

from repro.errors import QueryError
from repro.fabric.richquery import match_selector, select

from tests.fabric_helpers import make_network


DOC = {
    "user_id": "mob-1",
    "tier": "untrusted",
    "score": 0.42,
    "profile": {"org": "crowd", "active": True},
}


class TestMatchSelector:
    def test_implicit_equality(self):
        assert match_selector(DOC, {"tier": "untrusted"})
        assert not match_selector(DOC, {"tier": "trusted"})

    def test_nested_fields(self):
        assert match_selector(DOC, {"profile.org": "crowd"})
        assert not match_selector(DOC, {"profile.org": "city"})

    def test_comparison_operators(self):
        assert match_selector(DOC, {"score": {"$lt": 0.5}})
        assert match_selector(DOC, {"score": {"$gte": 0.42}})
        assert not match_selector(DOC, {"score": {"$gt": 0.42}})
        assert match_selector(DOC, {"score": {"$ne": 1.0}})

    def test_in_nin(self):
        assert match_selector(DOC, {"tier": {"$in": ["trusted", "untrusted"]}})
        assert match_selector(DOC, {"tier": {"$nin": ["trusted"]}})

    def test_exists(self):
        assert match_selector(DOC, {"score": {"$exists": True}})
        assert match_selector(DOC, {"missing": {"$exists": False}})
        assert not match_selector(DOC, {"missing": {"$exists": True}})

    def test_regex(self):
        assert match_selector(DOC, {"user_id": {"$regex": r"^mob-\d+$"}})
        assert not match_selector(DOC, {"user_id": {"$regex": r"^cam"}})

    def test_combinators(self):
        assert match_selector(DOC, {"$and": [{"tier": "untrusted"}, {"score": {"$lt": 1}}]})
        assert match_selector(DOC, {"$or": [{"tier": "trusted"}, {"score": {"$lt": 1}}]})
        assert match_selector(DOC, {"$not": {"tier": "trusted"}})
        assert not match_selector(DOC, {"$not": {"tier": "untrusted"}})

    def test_multiple_conditions_per_field(self):
        assert match_selector(DOC, {"score": {"$gt": 0.1, "$lt": 0.5}})
        assert not match_selector(DOC, {"score": {"$gt": 0.1, "$lt": 0.2}})

    def test_missing_field_never_matches(self):
        assert not match_selector(DOC, {"missing": {"$lt": 5}})
        assert not match_selector(DOC, {"missing": "x"})

    def test_cross_type_comparison_false(self):
        assert not match_selector(DOC, {"tier": {"$lt": 5}})

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            match_selector(DOC, {"score": {"$almost": 0.4}})
        with pytest.raises(QueryError):
            match_selector(DOC, {"$xor": []})

    def test_invalid_regex_is_query_error(self):
        # An unbalanced pattern must surface as a typed QueryError, never a
        # raw re.error leaking out of the selector engine.
        with pytest.raises(QueryError, match="regex"):
            match_selector(DOC, {"user_id": {"$regex": "mob-("}})
        with pytest.raises(QueryError, match="regex"):
            match_selector(DOC, {"user_id": {"$regex": "[unclosed"}})

    def test_regex_on_non_string_field_never_matches(self):
        assert not match_selector(DOC, {"score": {"$regex": r"\d+"}})

    def test_in_nin_require_array_operand(self):
        # CouchDB semantics: the operand must be an array. A scalar — or a
        # string, whose `in` would silently do substring matching — is a
        # malformed selector, not a non-match.
        for op in ("$in", "$nin"):
            with pytest.raises(QueryError, match="array"):
                match_selector(DOC, {"tier": {op: "untrusted"}})
            with pytest.raises(QueryError, match="array"):
                match_selector(DOC, {"score": {op: 0.4}})

    def test_exists_false_with_comparison_never_matches(self):
        # $exists: false asserts absence; a comparison needs a present
        # value — the conjunction is unsatisfiable on any document.
        assert not match_selector(DOC, {"missing": {"$exists": False, "$lt": 5}})
        assert not match_selector(DOC, {"score": {"$exists": False, "$lt": 5}})
        # With $exists: true the comparison applies normally.
        assert match_selector(DOC, {"score": {"$exists": True, "$lt": 5}})


class TestSelect:
    ROWS = [
        ("u1", json.dumps({"tier": "trusted", "n": 1}).encode()),
        ("u2", json.dumps({"tier": "untrusted", "n": 2}).encode()),
        ("u3", json.dumps({"tier": "untrusted", "n": 3}).encode()),
        ("blob", b"\x00\x01raw bytes"),
        ("arr", b"[1,2,3]"),
    ]

    def test_filters_and_parses(self):
        hits = select(self.ROWS, {"tier": "untrusted"})
        assert [k for k, _ in hits] == ["u2", "u3"]

    def test_non_json_rows_skipped(self):
        assert select(self.ROWS, {}) and all(k.startswith("u") for k, _ in select(self.ROWS, {}))

    def test_limit(self):
        hits = select(self.ROWS, {"tier": "untrusted"}, limit=1)
        assert len(hits) == 1


class TestStubRichQuery:
    def test_end_to_end_selector_query(self):
        """Rich query through a chaincode on a live channel."""
        from repro.fabric import Chaincode

        class Registry(Chaincode):
            name = "registry"

            def add(self, stub, user_id, tier, score):
                doc = {"user_id": user_id, "tier": tier, "score": float(score)}
                stub.put_state("user:" + user_id, json.dumps(doc).encode())
                return doc

            def find(self, stub, selector_json):
                return [doc for _, doc in stub.get_query_result(selector_json)]

        net, channel, alice = make_network()
        channel.install_chaincode(Registry())
        channel.invoke(alice, "registry", "add", ["cam-1", "trusted", "1.0"])
        channel.invoke(alice, "registry", "add", ["mob-1", "untrusted", "0.3"])
        channel.invoke(alice, "registry", "add", ["mob-2", "untrusted", "0.8"])

        selector = json.dumps({"tier": "untrusted", "score": {"$lt": 0.5}})
        hits = json.loads(channel.query(alice, "registry", "find", [selector]))
        assert [h["user_id"] for h in hits] == ["mob-1"]

    def test_bad_selector_rejected(self):
        from repro.errors import ChaincodeError
        from repro.fabric import Chaincode

        class Q(Chaincode):
            name = "q"

            def find(self, stub, selector_json):
                return stub.get_query_result(selector_json)

        net, channel, alice = make_network()
        channel.install_chaincode(Q())
        with pytest.raises(ChaincodeError, match="not valid JSON"):
            channel.query(alice, "q", "find", ["{broken"])
