"""Property-based tests of system-level invariants (hypothesis).

These drive randomized workloads through the real stack and assert the
invariants everything else depends on: MVCC serializability, cross-peer
state agreement, end-to-end payload integrity, and BFT safety under any
admissible fault assignment.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consensus import Behaviour, BftCluster
from repro.fabric.snapshot import state_digest
from repro.net import ConstantLatency, SimNetwork

from tests.fabric_helpers import make_network

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestMVCCSerializability:
    @relaxed
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["k0", "k1", "k2"]),  # contended keys
                st.integers(min_value=1, max_value=4),  # batch position spread
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_counter_equals_valid_increments(self, schedule):
        """Whatever the batching and conflicts, each counter's final value
        equals the number of increments that committed VALID on it."""
        net, channel, alice = make_network(max_batch_size=3)
        tx_keys = []
        for key, _spread in schedule:
            tx_keys.append((channel.invoke_async(alice, "kv", "increment", [key]), key))
        channel.flush()
        valid_per_key: dict[str, int] = {}
        for tx_id, key in tx_keys:
            if channel.result(tx_id).ok:
                valid_per_key[key] = valid_per_key.get(key, 0) + 1
        for key, expected in valid_per_key.items():
            out = json.loads(channel.query(alice, "kv", "get", [key]))
            assert int(out["value"]) == expected

    @relaxed
    @given(st.integers(min_value=2, max_value=6))
    def test_conflicting_batch_exactly_one_winner(self, batch):
        """All increments of one key in one block: exactly one commits."""
        net, channel, alice = make_network(max_batch_size=batch)
        txs = [channel.invoke_async(alice, "kv", "increment", ["hot"]) for _ in range(batch)]
        channel.flush()
        winners = sum(1 for t in txs if channel.result(t).ok)
        assert winners == 1


class TestPeerAgreement:
    @relaxed
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "increment"]),
                st.sampled_from(["a", "b", "c", "d"]),
                st.text(alphabet="xyz", min_size=1, max_size=4),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_all_peers_converge_identically(self, ops):
        """Any op sequence leaves every peer with byte-identical state and
        the same chain head."""
        net, channel, alice = make_network(peers_per_org=2)
        for op, key, value in ops:
            try:
                if op == "put":
                    channel.invoke(alice, "kv", "put", [key, value])
                elif op == "delete":
                    channel.invoke(alice, "kv", "delete", [key])
                else:
                    channel.invoke(alice, "kv", "increment", [key])
            except Exception:
                continue  # application-level failures are fine; state must still agree
        peers = list(channel.peers.values())
        digests = {state_digest(p.world) for p in peers}
        heads = {p.ledger.last_hash() for p in peers}
        assert len(digests) == 1
        assert len(heads) == 1
        for peer in peers:
            peer.ledger.verify_chain()


class TestEndToEndIntegrity:
    @relaxed
    @given(st.binary(min_size=0, max_size=50_000))
    def test_submit_retrieve_roundtrip(self, payload):
        """Any payload survives the full store+retrieve path verified."""
        from repro.core import Client, Framework, FrameworkConfig
        from repro.trust import SourceTier

        framework = Framework(FrameworkConfig(consensus="solo", chunk_size=4096))
        client = Client(
            framework, framework.register_source("prop-cam", tier=SourceTier.TRUSTED)
        )
        receipt = client.submit(payload, {"timestamp": 1.0, "detections": []})
        result = client.retrieve(receipt.entry_id)
        assert result.data == payload
        assert result.verified


class TestBftSafetyProperty:
    @relaxed
    @given(
        st.lists(
            st.sampled_from(
                [
                    Behaviour.SILENT,
                    Behaviour.WRONG_DIGEST,
                    Behaviour.ALWAYS_VALID,
                    Behaviour.ALWAYS_INVALID,
                ]
            ),
            min_size=0,
            max_size=2,  # n=7 tolerates f=2
        ),
        st.integers(min_value=1, max_value=4),
    )
    def test_agreement_under_any_admissible_faults(self, faults, n_requests):
        """With at most f arbitrary (non-primary-equivocating) faults in
        n=7, every request reaches identical agreement on honest replicas."""
        behaviours = {
            f"validator-{6 - i}": behaviour for i, behaviour in enumerate(faults)
        }
        cluster = BftCluster(
            n_replicas=7,
            network=SimNetwork(latency=ConstantLatency(base=0.001)),
            behaviours=behaviours,
            view_timeout=0.5,
        )
        requests = [cluster.submit({"n": i}) for i in range(n_requests)]
        cluster.run(until=30.0)
        for request in requests:
            assert cluster.agreement_reached(request.request_id)
