"""Unit and property tests for base58btc and base32 encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.util.encoding import b32decode, b32encode, b58decode, b58encode


class TestBase58:
    def test_empty(self):
        assert b58encode(b"") == ""
        assert b58decode("") == b""

    def test_known_vectors(self):
        # Standard base58 test vectors.
        assert b58encode(b"hello world") == "StV1DL6CwTryKyV"
        assert b58decode("StV1DL6CwTryKyV") == b"hello world"

    def test_leading_zeros_preserved(self):
        data = b"\x00\x00\x01"
        encoded = b58encode(data)
        assert encoded.startswith("11")
        assert b58decode(encoded) == data

    def test_all_zero_bytes(self):
        assert b58encode(b"\x00" * 4) == "1111"
        assert b58decode("1111") == b"\x00" * 4

    def test_invalid_character_rejected(self):
        # '0', 'O', 'I', 'l' are excluded from the alphabet.
        for ch in "0OIl":
            with pytest.raises(EncodingError):
                b58decode(f"abc{ch}")

    @given(st.binary(max_size=128))
    def test_roundtrip(self, data):
        assert b58decode(b58encode(data)) == data


class TestBase32:
    def test_empty(self):
        assert b32encode(b"") == ""
        assert b32decode("") == b""

    def test_known_vector(self):
        # RFC 4648 vector "foobar" -> MZXW6YTBOI (lowercase, unpadded here).
        assert b32encode(b"foobar") == "mzxw6ytboi"
        assert b32decode("mzxw6ytboi") == b"foobar"

    def test_single_byte(self):
        assert b32encode(b"f") == "my"
        assert b32decode("my") == b"f"

    def test_invalid_character_rejected(self):
        with pytest.raises(EncodingError):
            b32decode("abc1")  # '1' not in RFC 4648 alphabet

    def test_nonzero_padding_bits_rejected(self):
        # 'mz' has non-zero trailing bits ('z' = 25 -> padding bits set).
        with pytest.raises(EncodingError):
            b32decode("mz")

    @given(st.binary(max_size=128))
    def test_roundtrip(self, data):
        assert b32decode(b32encode(data)) == data

    @given(st.binary(min_size=1, max_size=64))
    def test_encoding_is_lowercase(self, data):
        assert b32encode(data) == b32encode(data).lower()
