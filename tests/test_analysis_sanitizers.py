"""Tests for the runtime sanitizers: endorsement divergence, ledger
invariants (incl. tamper pinpointing), lock-order checking, consensus."""

import dataclasses
import threading
from types import SimpleNamespace

import pytest

from repro.analysis import (
    GuardedShared,
    LockRegistry,
    Sanitizer,
    TrackedLock,
    check_store,
    install_sanitizers,
    last_report,
    make_lock,
    parse_modes,
)
from repro.analysis import lockcheck
from repro.analysis import runtime as analysis_runtime
from repro.analysis.runtime import MODES
from repro.errors import AnalysisError
from repro.fabric import Chaincode

from tests.fabric_helpers import make_network


@pytest.fixture(autouse=True)
def _reset_sanitizer_globals():
    yield
    lockcheck.deactivate()
    analysis_runtime._ACTIVE = None
    analysis_runtime._LAST_REPORT = None


class FlakyChaincode(Chaincode):
    """Nondeterministic on purpose: every simulation writes a new value."""

    name = "flaky"

    def __init__(self):
        self._calls = 0

    def bump(self, stub):
        self._calls += 1
        stub.put_state("counter", str(self._calls).encode())
        return {"calls": self._calls}


class TestModeParsing:
    def test_off_spellings(self):
        for spec in ("", "0", "off", "none"):
            assert parse_modes(spec) == frozenset()

    def test_all_spellings(self):
        for spec in ("1", "all", "on", "true"):
            assert parse_modes(spec) == frozenset(MODES)

    def test_explicit_list(self):
        assert parse_modes("ledger, locks") == frozenset({"ledger", "locks"})

    def test_unknown_mode_rejected(self):
        with pytest.raises(AnalysisError):
            parse_modes("ledger,turbo")

    def test_install_is_noop_without_modes(self):
        net, channel, client = make_network("solo")
        assert install_sanitizers(channel, spec="") is None
        assert channel.sanitizer is None


class TestDivergenceSanitizer:
    def test_nondeterministic_chaincode_detected_on_single_peer(self):
        # One org, one peer: the endorsement-policy cross-check that would
        # normally expose nondeterminism never runs — exactly the gap the
        # sanitizer's re-simulation closes.
        net, channel, client = make_network("solo", orgs=("org1",))
        channel.install_chaincode(FlakyChaincode())
        sanitizer = install_sanitizers(channel, spec="divergence")
        channel.invoke(client, "flaky", "bump", [])
        report = sanitizer.finalize()
        san301 = [f for f in report.findings if f.rule_id == "SAN301"]
        assert san301, "re-simulation should expose the divergent write"
        assert san301[0].path == "chaincode:flaky"
        assert report.checks["divergence"] >= 1

    def test_deterministic_chaincode_clean(self):
        net, channel, client = make_network("solo")
        sanitizer = install_sanitizers(channel, spec="divergence")
        channel.invoke(client, "kv", "put", ["a", "1"])
        report = sanitizer.finalize()
        assert report.ok
        assert report.checks["divergence"] >= 2  # both endorsing peers


class TestLedgerSanitizer:
    def test_honest_run_has_zero_findings(self):
        net, channel, client = make_network("solo")
        sanitizer = install_sanitizers(channel, spec="ledger")
        for i in range(3):
            channel.invoke(client, "kv", "put", [f"k{i}", str(i)])
        report = sanitizer.finalize()
        assert report.ok
        # 3 blocks x 2 peers committed, each audited.
        assert report.checks["ledger"] == 6
        assert last_report() is report

    def test_offline_audit_of_honest_chain_clean(self):
        net, channel, client = make_network("solo")
        for i in range(3):
            channel.invoke(client, "kv", "put", [f"k{i}", str(i)])
        peer = next(iter(channel.peers.values()))
        assert check_store(peer.ledger, peer.world) == []

    def test_tampered_block_pinpointed_to_block_and_tx(self):
        net, channel, client = make_network("solo")
        for i in range(3):
            channel.invoke(client, "kv", "put", [f"k{i}", str(i)])
        peer = next(iter(channel.peers.values()))
        store = peer.ledger
        number, block = next(
            (b.number, b) for b in store.blocks() if b.transactions
        )
        victim = block.transactions[0]
        forged_tx = dataclasses.replace(victim, response='{"key":"evil"}')
        forged = dataclasses.replace(
            block, transactions=(forged_tx,) + block.transactions[1:]
        )
        store._blocks[number - store.base_height] = forged
        findings = check_store(store)
        assert [f.rule_id for f in findings] == ["SAN303"]
        message = findings[0].message
        assert f"block {number}" in message
        assert "tampered: tx 0" in message
        assert victim.tx_id[:16] in message


class TestLockSanitizer:
    def test_opposite_acquisition_order_reported(self):
        registry = LockRegistry()
        a, b = TrackedLock("A", registry), TrackedLock("B", registry)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        san401 = [f for f in registry.findings() if f.rule_id == "SAN401"]
        assert san401
        assert "A" in san401[0].message and "B" in san401[0].message

    def test_opposite_order_across_threads_reported(self):
        registry = LockRegistry()
        a, b = TrackedLock("A", registry), TrackedLock("B", registry)

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        for target in (forward, backward):
            thread = threading.Thread(target=target)
            thread.start()
            thread.join()
        assert any(f.rule_id == "SAN401" for f in registry.findings())

    def test_consistent_order_clean(self):
        registry = LockRegistry()
        a, b = TrackedLock("A", registry), TrackedLock("B", registry)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert registry.findings() == []

    def test_unguarded_shared_write_reported(self):
        registry = LockRegistry()
        guard = TrackedLock("stats", registry)
        shared = GuardedShared({}, guard, "stats.map", registry)
        with guard:
            shared["guarded"] = 1  # fine: guard held
        shared["rogue"] = 2
        findings = registry.findings()
        assert [f.rule_id for f in findings] == ["SAN402"]
        assert "stats.map" in findings[0].message

    def test_make_lock_is_plain_when_inactive(self):
        assert not isinstance(make_lock("x"), TrackedLock)

    def test_make_lock_is_tracked_when_active(self):
        registry = LockRegistry()
        lockcheck.activate(registry)
        lock = make_lock("x")
        assert isinstance(lock, TrackedLock)
        with lock:
            assert lock.held_by_current_thread()


class TestConsensusSanitizer:
    def _sanitizer_over(self, consistent: bool) -> Sanitizer:
        sanitizer = Sanitizer(frozenset({"consensus"}))
        sanitizer.channel = SimpleNamespace(
            orderer=SimpleNamespace(
                cluster=SimpleNamespace(log_prefix_consistent=lambda: consistent)
            )
        )
        return sanitizer

    def test_consistent_logs_clean(self):
        report = self._sanitizer_over(True).finalize()
        assert report.ok and report.checks["consensus"] == 1

    def test_inconsistent_logs_reported(self):
        report = self._sanitizer_over(False).finalize()
        assert [f.rule_id for f in report.findings] == ["SAN306"]

    def test_solo_orderer_without_cluster_skipped(self):
        net, channel, client = make_network("solo")
        sanitizer = install_sanitizers(channel, spec="consensus")
        channel.invoke(client, "kv", "put", ["a", "1"])
        report = sanitizer.finalize()
        assert report.ok and report.checks["consensus"] == 0


class TestLockWrapping:
    """guard_shared and SAN401 must see through instrumentation wrappers in
    either composition order (satellite: TimedLock/TrackedLock nesting)."""

    @staticmethod
    def _orders(registry):
        tracked_inside = lockcheck.TimedLock(
            "wrapped", lockcheck.TrackedLock("wrapped", registry))
        tracked_outside = lockcheck.TrackedLock(
            "wrapped", registry,
            inner=lockcheck.TimedLock("wrapped", threading.Lock()))
        return tracked_inside, tracked_outside

    def test_unwrap_tracked_handles_both_orders(self):
        registry = LockRegistry()
        for lock in self._orders(registry):
            tracked = lockcheck.unwrap_tracked(lock)
            assert isinstance(tracked, lockcheck.TrackedLock)
            assert tracked.name == "wrapped"

    def test_unwrap_tracked_is_none_for_plain_locks(self):
        assert lockcheck.unwrap_tracked(threading.Lock()) is None
        assert lockcheck.unwrap_tracked(
            lockcheck.TimedLock("t", threading.Lock())) is None

    def test_lock_name_survives_wrapping(self):
        registry = LockRegistry()
        for lock in self._orders(registry):
            assert lockcheck.lock_name(lock) == "wrapped"
        assert lockcheck.lock_name(threading.Lock()) is None

    def test_guard_shared_active_through_either_order(self):
        for picker in (0, 1):
            registry = LockRegistry()
            lockcheck.activate(registry)
            guard = self._orders(registry)[picker]
            shared = lockcheck.guard_shared({}, guard, "shared.map")
            assert isinstance(shared, GuardedShared)
            with guard:
                shared["ok"] = 1
            shared["rogue"] = 2
            findings = registry.findings()
            assert [f.rule_id for f in findings] == ["SAN402"]
            assert "shared.map" in findings[0].message
            lockcheck.deactivate()

    def test_guard_shared_noop_for_uninstrumented_guard(self):
        registry = LockRegistry()
        lockcheck.activate(registry)
        raw = {}
        assert lockcheck.guard_shared(raw, threading.Lock(), "x") is raw

    def test_san401_reports_user_facing_names_through_wrappers(self):
        registry = LockRegistry()
        a = lockcheck.TimedLock("A", lockcheck.TrackedLock("A", registry))
        b = lockcheck.TrackedLock(
            "B", registry, inner=lockcheck.TimedLock("B", threading.Lock()))
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        san401 = [f for f in registry.findings() if f.rule_id == "SAN401"]
        assert san401
        assert "A" in san401[0].message and "B" in san401[0].message
