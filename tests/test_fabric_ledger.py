"""Tests for blocks, the hash chain, and the block store."""

import pytest

from repro.errors import LedgerError
from repro.fabric import GENESIS_PREVIOUS_HASH
from repro.fabric.identity import Identity
from repro.fabric.ledger import Block, BlockStore
from repro.fabric.tx import (
    Endorsement,
    ReadWriteSet,
    Transaction,
    TxProposal,
    ValidationCode,
    WriteEntry,
)


def make_tx(n=0):
    identity = Identity.create("alice", "org1")
    proposal = TxProposal(
        tx_id=f"tx-{n}",
        channel="ch",
        chaincode="kv",
        fn="put",
        args=("k", str(n)),
        creator=identity.info(),
        timestamp=float(n),
        signature=b"\x00" * 64,
    )
    rwset = ReadWriteSet(writes=(WriteEntry(key="k", value=str(n).encode()),))
    endorsement = Endorsement(endorser=identity.info(), signature=b"\x00" * 64)
    return Transaction(
        proposal=proposal, rwset=rwset, response="{}", endorsements=(endorsement,)
    )


def make_block(number, prev, n_txs=2):
    txs = tuple(make_tx(number * 10 + i) for i in range(n_txs))
    return Block.build(number=number, previous_hash=prev, transactions=txs, timestamp=1.0)


class TestBlock:
    def test_header_hash_deterministic(self):
        b = make_block(0, GENESIS_PREVIOUS_HASH)
        assert b.header.hash() == b.header.hash()

    def test_data_hash_covers_transactions(self):
        b1 = Block.build(0, GENESIS_PREVIOUS_HASH, (make_tx(1),), 1.0)
        b2 = Block.build(0, GENESIS_PREVIOUS_HASH, (make_tx(2),), 1.0)
        assert b1.header.data_hash != b2.header.data_hash

    def test_with_validation_requires_matching_length(self):
        b = make_block(0, GENESIS_PREVIOUS_HASH, n_txs=2)
        with pytest.raises(LedgerError):
            b.with_validation([ValidationCode.VALID])

    def test_tx_merkle_proof(self):
        b = make_block(0, GENESIS_PREVIOUS_HASH, n_txs=4)
        tree = b.tx_merkle_tree()
        proof = tree.proof(2)
        proof.verify(b.transactions[2].envelope_bytes(), tree.root)


class TestBlockStore:
    def test_append_and_height(self):
        store = BlockStore()
        b0 = make_block(0, GENESIS_PREVIOUS_HASH)
        store.append(b0)
        assert store.height == 1
        assert store.block(0) is b0

    def test_chain_grows_with_linked_hashes(self):
        store = BlockStore()
        b0 = make_block(0, GENESIS_PREVIOUS_HASH)
        store.append(b0)
        b1 = make_block(1, b0.header.hash())
        store.append(b1)
        store.verify_chain()

    def test_wrong_number_rejected(self):
        store = BlockStore()
        with pytest.raises(LedgerError):
            store.append(make_block(5, GENESIS_PREVIOUS_HASH))

    def test_broken_link_rejected(self):
        store = BlockStore()
        store.append(make_block(0, GENESIS_PREVIOUS_HASH))
        with pytest.raises(LedgerError):
            store.append(make_block(1, "ff" * 32))

    def test_forged_data_hash_rejected(self):
        store = BlockStore()
        b0 = make_block(0, GENESIS_PREVIOUS_HASH)
        # Tamper: swap transactions but keep the old header.
        forged = Block(header=b0.header, transactions=(make_tx(99),))
        with pytest.raises(LedgerError):
            store.append(forged)

    def test_find_tx(self):
        store = BlockStore()
        b0 = make_block(0, GENESIS_PREVIOUS_HASH, n_txs=3).with_validation(
            [ValidationCode.VALID, ValidationCode.MVCC_READ_CONFLICT, ValidationCode.VALID]
        )
        store.append(b0)
        block, tx, code = store.find_tx("tx-1")
        assert block.number == 0
        assert tx.tx_id == "tx-1"
        assert code is ValidationCode.MVCC_READ_CONFLICT

    def test_find_missing_tx_raises(self):
        with pytest.raises(LedgerError):
            BlockStore().find_tx("ghost")

    def test_missing_block_raises(self):
        with pytest.raises(LedgerError):
            BlockStore().block(0)

    def test_last_hash_genesis(self):
        assert BlockStore().last_hash() == GENESIS_PREVIOUS_HASH

    def test_verify_chain_detects_post_hoc_tamper(self):
        store = BlockStore()
        b0 = make_block(0, GENESIS_PREVIOUS_HASH)
        store.append(b0)
        b1 = make_block(1, b0.header.hash())
        store.append(b1)
        # Simulate direct mutation of history.
        store._blocks[0] = Block(header=b0.header, transactions=(make_tx(77),))
        with pytest.raises(LedgerError):
            store.verify_chain()
