"""Tests for clocks and deterministic RNG derivation."""

import pytest

from repro.util.clock import MonotonicClock, SimClock, WallClock, isoformat
from repro.util.rng import derive_seed, rng_for


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(5.0).now() == 5.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now() == 1.5
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_cannot_go_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_time_does_not_move_on_its_own(self):
        clock = SimClock()
        assert clock.now() == clock.now() == 0.0


class TestRealClocks:
    def test_wall_clock_is_epoch_scale(self):
        assert WallClock().now() > 1.6e9  # after 2020

    def test_monotonic_never_decreases(self):
        clock = MonotonicClock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestIsoformat:
    def test_epoch(self):
        assert isoformat(0.0) == "1970-01-01T00:00:00.000Z"

    def test_fractional_seconds(self):
        assert isoformat(0.5).endswith(".500Z")

    def test_sortable(self):
        assert isoformat(100.0) < isoformat(200.0)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_parent_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_path_not_concatenation_ambiguous(self):
        assert derive_seed(42, "ab", "c") != derive_seed(42, "a", "bc")

    def test_rng_for_streams_independent(self):
        a = rng_for(7, "x").random(4)
        b = rng_for(7, "y").random(4)
        assert not (a == b).all()

    def test_rng_for_reproducible(self):
        assert (rng_for(7, "x").random(4) == rng_for(7, "x").random(4)).all()
