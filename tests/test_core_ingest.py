"""Tests for batched ingestion."""

import pytest

from repro.core import BatchIngestor, Client, Framework, FrameworkConfig
from repro.errors import UntrustedSourceError
from repro.trust import SourceTier
from repro.workloads.traffic import IngestItem, ingest_stream


def make_framework(batch=8, consensus="solo"):
    return Framework(FrameworkConfig(consensus=consensus, max_batch_size=batch))


def make_items(source_id, n=5):
    return [
        IngestItem(
            source_id=source_id,
            payload=f"frame-{i}".encode() * 50,
            metadata={"timestamp": float(i), "detections": []},
            observation=None,
        )
        for i in range(n)
    ]


class TestBatchIngestor:
    def test_batch_commits_all(self):
        framework = make_framework()
        ingestor = BatchIngestor(framework)
        identity = framework.register_source("cam-b", tier=SourceTier.TRUSTED)
        ingestor.register(identity)
        report = ingestor.ingest(make_items("cam-b", 6))
        assert report.submitted == 6
        assert report.committed == 6
        assert report.rejected == 0
        assert report.tx_per_s > 0

    def test_batching_cuts_fewer_blocks_than_items(self):
        framework = make_framework(batch=8)
        ingestor = BatchIngestor(framework, record_provenance=False)
        identity = framework.register_source("cam-c", tier=SourceTier.TRUSTED)
        ingestor.register(identity)
        report = ingestor.ingest(make_items("cam-c", 8))
        assert report.blocks < report.submitted

    def test_entries_retrievable_after_batch(self):
        framework = make_framework()
        ingestor = BatchIngestor(framework)
        identity = framework.register_source("cam-d", tier=SourceTier.TRUSTED)
        ingestor.register(identity)
        report = ingestor.ingest(make_items("cam-d", 3))
        client = Client(framework, identity)
        for entry_id in report.entry_ids:
            result = client.retrieve(entry_id)
            assert result.verified

    def test_unregistered_identity_rejected(self):
        framework = make_framework()
        ingestor = BatchIngestor(framework)
        with pytest.raises(UntrustedSourceError, match="no registered identity"):
            ingestor.ingest(make_items("ghost", 1))

    def test_quarantined_source_rejected(self):
        framework = make_framework()
        identity = framework.register_source("bad-mob")
        for _ in range(30):
            framework.trust.record_validation("bad-mob", False, 0, 4)
        ingestor = BatchIngestor(framework)
        ingestor.register(identity)
        with pytest.raises(UntrustedSourceError, match="rejected"):
            ingestor.ingest(make_items("bad-mob", 1))

    def test_untrusted_source_trust_updated_once_per_batch(self):
        framework = make_framework()
        identity = framework.register_source("mob-e")
        ingestor = BatchIngestor(framework, record_provenance=False)
        ingestor.register(identity)
        before = framework.trust.score("mob-e")
        ingestor.ingest(make_items("mob-e", 5))
        assert framework.trust.score("mob-e") > before
        # One coalesced on-chain score write for the batch.
        client = Client(framework, identity)
        on_chain = client.on_chain_trust("mob-e")
        assert on_chain["score"] == pytest.approx(framework.trust.score("mob-e"), abs=1e-5)

    def test_vision_stream_end_to_end(self):
        framework = make_framework(batch=16)
        ingestor = BatchIngestor(framework, record_provenance=False)
        items = list(ingest_stream(n_videos=2, frames_per_video=2, seed=5))
        sources = {item.source_id for item in items}
        for source in sources:
            ingestor.register(framework.register_source(source, tier=SourceTier.TRUSTED))
        report = ingestor.ingest(items)
        assert report.committed == len(items)
        assert report.mib_per_s > 0

    def test_throughput_beats_sequential(self):
        """The point of batching: fewer consensus rounds per item."""
        import time

        items = make_items("seq-cam", 10)

        framework_seq = Framework(FrameworkConfig(consensus="bft", max_batch_size=1))
        client = Client(
            framework_seq, framework_seq.register_source("seq-cam", tier=SourceTier.TRUSTED)
        )
        start = time.perf_counter()
        for item in items:
            client.submit(item.payload, dict(item.metadata))
        sequential = time.perf_counter() - start

        framework_batch = Framework(FrameworkConfig(consensus="bft", max_batch_size=16))
        ingestor = BatchIngestor(framework_batch, record_provenance=False)
        ingestor.register(
            framework_batch.register_source("seq-cam", tier=SourceTier.TRUSTED)
        )
        start = time.perf_counter()
        ingestor.ingest(items)
        batched = time.perf_counter() - start

        assert batched < sequential
