"""Tests for parallel_map: ordering, error propagation, cancellation."""

import threading
import time

import pytest

from repro.util.parallel import DEFAULT_IO_WORKERS, effective_workers, parallel_map


class TestBasics:
    def test_results_in_input_order(self):
        assert parallel_map(lambda x: x * 2, range(10)) == [x * 2 for x in range(10)]

    def test_empty_input(self):
        assert parallel_map(lambda x: x, []) == []

    def test_single_item_runs_inline(self):
        thread_names = []
        parallel_map(lambda x: thread_names.append(threading.current_thread().name), [1])
        assert thread_names == [threading.current_thread().name]

    def test_max_workers_one_runs_inline(self):
        thread_names = set()
        parallel_map(
            lambda x: thread_names.add(threading.current_thread().name),
            range(4),
            max_workers=1,
        )
        assert thread_names == {threading.current_thread().name}

    def test_effective_workers_bounds(self):
        assert effective_workers(0) == 1
        assert effective_workers(1) == 1
        assert effective_workers(100) == DEFAULT_IO_WORKERS
        assert effective_workers(100, max_workers=3) == 3
        assert effective_workers(2, max_workers=8) == 2


class TestErrors:
    def test_first_error_propagates(self):
        def boom(x):
            if x == 3:
                raise ValueError(f"item {x}")
            return x

        with pytest.raises(ValueError, match="item 3"):
            parallel_map(boom, range(6), max_workers=2)

    def test_first_failing_item_wins_over_later_failures(self):
        def boom(x):
            raise ValueError(f"item {x}")

        with pytest.raises(ValueError, match="item 0"):
            parallel_map(boom, range(4), max_workers=2)

    def test_not_yet_started_items_are_cancelled_after_failure(self):
        # One worker: items run strictly in submission order, so everything
        # queued behind the failing item must be cancelled, not executed.
        executed = []
        gate = threading.Event()

        def task(x):
            if x == 0:
                gate.wait(timeout=5)
                raise ValueError("first fails")
            executed.append(x)
            return x

        def run():
            with pytest.raises(ValueError, match="first fails"):
                parallel_map(task, range(20), max_workers=1)

        runner = threading.Thread(target=run)
        runner.start()
        gate.set()
        runner.join(timeout=10)
        assert not runner.is_alive()
        # With max_workers=1 nothing behind item 0 had started: the failure
        # must keep it that way (the serial path would not run them either).
        assert executed == []

    def test_in_flight_items_are_awaited_not_leaked(self):
        # Two workers: item 1 is already running when item 0 fails. It must
        # finish (threads cannot be interrupted) and be awaited before
        # parallel_map raises — no daemonized stragglers.
        item1_started = threading.Event()
        finished = []

        def task(x):
            if x == 0:
                # Fail only once item 1 is provably on a worker thread, so
                # its future can no longer be cancelled.
                assert item1_started.wait(timeout=5)
                raise ValueError("fail fast")
            item1_started.set()
            time.sleep(0.05)
            finished.append(x)
            return x

        with pytest.raises(ValueError, match="fail fast"):
            parallel_map(task, [0, 1], max_workers=2)
        assert finished == [1]
