"""Tests for repro.index: the block-incremental authenticated secondary index.

Covers the tentpole acceptance criteria: incremental maintenance matches a
from-scratch rebuild, the query planner/executor route through the index
with answers byte-identical to chaincode scans, Merkle membership proofs
verify without chain replay (and reject tampering), the index survives
crash recovery through the durability paths, and the explorer audits the
epoch digests.
"""

import dataclasses
import json

import pytest

from repro.core import Client, Framework, FrameworkConfig
from repro.errors import MerkleProofError, QueryError
from repro.index import (
    BlockFilter,
    PeerIndex,
    verify_answer_records,
    verify_posting_proof,
)
from repro.query import QueryEngine, parse_query, plan_query
from repro.trust import SourceTier
from repro.util.serialization import canonical_json


def make_framework(**overrides):
    defaults = dict(consensus="solo", n_ipfs_nodes=2)
    defaults.update(overrides)
    return Framework(FrameworkConfig(**defaults))


META = {
    "timestamp": 100.0,
    "camera_id": "idx-cam",
    "detections": [{"vehicle_class": "car", "confidence": 0.9}],
}


def populate(framework, n=6, source="idx-cam"):
    client = Client(framework, framework.register_source(source, tier=SourceTier.TRUSTED))
    receipts = []
    for i in range(n):
        meta = dict(META)
        meta["timestamp"] = 100.0 + 700.0 * i  # spread across time buckets
        meta["detections"] = [
            {"vehicle_class": ("car" if i % 2 == 0 else "truck"), "confidence": 0.9}
        ]
        receipts.append(client.submit(f"payload-{i}".encode(), meta))
    return client, receipts


class TestIncrementalMaintenance:
    def test_every_peer_indexes_every_block(self):
        framework = make_framework(peers_per_org=2)
        populate(framework, n=4)
        height = framework.channel.height()
        roots = set()
        for peer in framework.channel.peers.values():
            assert peer.index is not None
            assert peer.index.height == height
            assert set(peer.index.epochs) == set(range(height))
            roots.add(peer.index.root())
        assert len(roots) == 1  # all peers agree on the epoch root

    def test_incremental_matches_from_world_rebuild(self):
        framework = make_framework()
        populate(framework, n=5)
        peer = next(iter(framework.channel.peers.values()))
        rebuilt = PeerIndex.from_world(peer.world, peer.ledger.height)
        assert rebuilt.root() == peer.index.root()
        assert rebuilt.epochs[peer.ledger.height - 1] == (
            peer.index.epochs[peer.ledger.height - 1]
        )

    def test_lookup_matches_world_scan(self):
        framework = make_framework()
        _, receipts = populate(framework, n=5)
        peer = next(iter(framework.channel.peers.values()))
        expected = sorted(r.entry_id for r in receipts)
        assert peer.index.lookup("source", "idx-cam") == expected
        assert peer.index.lookup("camera", "idx-cam") == expected
        trucks = peer.index.lookup("class", "truck")
        assert trucks == sorted(
            r.entry_id for i, r in enumerate(receipts) if i % 2 == 1
        )

    def test_time_range_lookup(self):
        framework = make_framework()
        _, receipts = populate(framework, n=5)
        peer = next(iter(framework.channel.peers.values()))
        # Timestamps are 100, 800, 1500, 2200, 2900.
        ids = peer.index.lookup_time_range(700.0, 1600.0)
        assert ids == sorted([receipts[1].entry_id, receipts[2].entry_id])
        assert peer.index.lookup_time_range(10_000.0, 20_000.0) == []

    def test_trust_band_lookup(self):
        framework = make_framework()
        _, receipts = populate(framework, n=2)
        framework.record_trust_on_chain("idx-cam")
        peer = next(iter(framework.channel.peers.values()))
        assert peer.index.band_of.get("idx-cam") == "trusted"
        assert peer.index.lookup("trust_band", "trusted") == sorted(
            r.entry_id for r in receipts
        )

    def test_block_filters_narrow_blocks(self):
        framework = make_framework()
        _, receipts = populate(framework, n=4)
        peer = next(iter(framework.channel.peers.values()))
        blocks = peer.index.blocks_possibly_containing("source", "idx-cam")
        assert blocks  # the uploads' blocks admit the token
        # A bloom filter can false-positive but never false-negative: every
        # block that really contains the value must be reported.
        data_blocks = {
            peer.world.get_version(f"data:{r.entry_id}").block for r in receipts
        }
        assert data_blocks <= set(blocks)

    def test_filter_roundtrip(self):
        filt = BlockFilter()
        filt.add("source=cam-1")
        restored = BlockFilter.from_doc(filt.to_doc())
        assert "source=cam-1" in restored
        assert "source=cam-2" not in restored


class TestProofs:
    def test_membership_proof_verifies_without_chain(self):
        framework = make_framework()
        _, receipts = populate(framework, n=3)
        peer = next(iter(framework.channel.peers.values()))
        trusted_root = peer.index.root()  # obtained out-of-band
        proof = peer.index.prove("source", "idx-cam")
        # Verification sees only the proof and the trusted root — no peer,
        # no ledger, no chain replay.
        assert verify_posting_proof(proof, trusted_root)
        records = [
            json.loads(peer.world.get(f"data:{r.entry_id}")) for r in receipts
        ]
        records.sort(key=lambda r: r["entry_id"])
        assert verify_answer_records(records, (proof,), trusted_root) == 3

    def test_tampered_record_rejected(self):
        framework = make_framework()
        _, receipts = populate(framework, n=2)
        peer = next(iter(framework.channel.peers.values()))
        proof = peer.index.prove("source", "idx-cam")
        records = [
            json.loads(peer.world.get(f"data:{r.entry_id}")) for r in receipts
        ]
        records.sort(key=lambda r: r["entry_id"])
        records[0]["cid"] = "bafy-forged"
        with pytest.raises(MerkleProofError):
            verify_answer_records(records, (proof,), peer.index.root())

    def test_wrong_root_rejected(self):
        framework = make_framework()
        populate(framework, n=2)
        peer = next(iter(framework.channel.peers.values()))
        proof = peer.index.prove("source", "idx-cam")
        with pytest.raises(MerkleProofError):
            verify_posting_proof(proof, "00" * 32)

    def test_tampered_entries_rejected(self):
        framework = make_framework()
        populate(framework, n=2)
        peer = next(iter(framework.channel.peers.values()))
        proof = peer.index.prove("source", "idx-cam")
        forged = dataclasses.replace(
            proof, entries=tuple([(eid, "ff" * 32) for eid, _ in proof.entries])
        )
        with pytest.raises(MerkleProofError):
            verify_posting_proof(forged, peer.index.root())

    def test_unknown_posting_raises(self):
        framework = make_framework()
        populate(framework, n=1)
        peer = next(iter(framework.channel.peers.values()))
        with pytest.raises(MerkleProofError):
            peer.index.prove("camera", "no-such-camera")


class TestPlannerRouting:
    def test_equality_routes(self):
        for text, dim, value in (
            ("source_id = 'cam-1'", "source", "cam-1"),
            ("camera_id = 'cam-2'", "camera", "cam-2"),
            ("vehicle_class = 'truck'", "class", "truck"),
            ("violation_type = 'speeding'", "violation", "speeding"),
        ):
            plan = plan_query(parse_query(text))
            assert plan.index_route is not None, text
            assert plan.index_route.dim == dim
            assert plan.index_route.value == value

    def test_time_route(self):
        plan = plan_query(parse_query(
            "metadata.timestamp >= 100 AND metadata.timestamp < 900"
        ))
        assert plan.index_route is not None
        assert plan.index_route.dim == "time"
        lo, hi = plan.index_route.time_range
        assert lo == 100.0 and hi >= 900.0

    def test_unindexed_predicate_has_no_route(self):
        plan = plan_query(parse_query("color = 'red'"))
        assert plan.index_route is None
        assert plan.full_scan

    def test_explain_mentions_route(self):
        plan = plan_query(parse_query("source_id = 'cam-1'"))
        assert "authenticated route: source=cam-1" in plan.explain()


class TestExecutorRouting:
    def test_index_and_scan_answers_byte_identical(self):
        framework = make_framework()
        client, _ = populate(framework, n=5)
        engine = client.engine
        engine.cache_enabled = False
        for text in (
            "source_id = 'idx-cam'",
            "vehicle_class = 'truck'",
            "metadata.timestamp >= 0 AND metadata.timestamp <= 2000 "
            "ORDER BY metadata.timestamp LIMIT 2",
        ):
            engine.use_index = True
            indexed = [r.record for r in engine.run(text)]
            engine.use_index = False
            scanned = [r.record for r in engine.run(text)]
            assert canonical_json(indexed) == canonical_json(scanned), text

    def test_index_route_counts_hits(self):
        framework = make_framework()
        client, _ = populate(framework, n=3)
        engine = client.engine
        engine.cache_enabled = False
        engine.run("source_id = 'idx-cam'")
        assert engine.stats.index_hits == 1
        engine.use_index = False
        engine.run("source_id = 'idx-cam'")
        assert engine.stats.index_hits == 1  # scan route doesn't count

    def test_fallback_when_no_peer_serves_index(self):
        framework = make_framework()
        client, receipts = populate(framework, n=3)
        engine = client.engine
        engine.cache_enabled = False
        for peer in framework.channel.peers.values():
            peer.index = None
        rows = engine.run("source_id = 'idx-cam'")
        assert len(rows) == len(receipts)
        assert engine.stats.index_misses == 1

    def test_run_verified_end_to_end(self):
        framework = make_framework()
        client, receipts = populate(framework, n=4)
        answer = client.engine.run_verified("source_id = 'idx-cam'")
        assert {r["entry_id"] for r in answer.records} == {
            r.entry_id for r in receipts
        }
        assert answer.verify() == len(receipts)
        # The proofs also verify against an out-of-band trusted root.
        peer = next(iter(framework.channel.peers.values()))
        assert answer.verify(peer.index.epochs[peer.ledger.height - 1]) == (
            len(receipts)
        )

    def test_run_verified_rejects_unroutable_query(self):
        framework = make_framework()
        client, _ = populate(framework, n=1)
        with pytest.raises(QueryError):
            client.engine.run_verified("color = 'red'")

    def test_run_verified_unknown_value_is_empty(self):
        framework = make_framework()
        client, _ = populate(framework, n=1)
        answer = client.engine.run_verified("source_id = 'ghost'")
        assert answer.records == ()
        assert answer.proofs == ()
        assert answer.verify() == 0


class TestDurability:
    def test_wal_replay_restores_index(self):
        framework = make_framework(
            consensus="bft", peers_per_org=2, durability=True, checkpoint_interval=4
        )
        populate(framework, n=6)
        peer = framework.channel.peers["peer1.org1"]
        root_before = peer.index.root()
        epochs_before = dict(peer.index.epochs)
        outcome = framework.durability.crash_and_recover("peer1.org1")
        assert outcome.kind == "wal_replay", outcome.detail()
        assert peer.index.root() == root_before
        assert dict(peer.index.epochs) == epochs_before
        assert peer.index.height == peer.ledger.height

    def test_state_transfer_rebuilds_index(self):
        from repro.storage import CORRUPT

        framework = make_framework(
            consensus="bft", peers_per_org=2, durability=True, checkpoint_interval=4
        )
        populate(framework, n=6)
        peer = framework.channel.peers["peer1.org1"]
        root_before = peer.index.root()
        framework.durability.damage_wal("peer1.org1", CORRUPT)
        outcome = framework.durability.crash_and_recover("peer1.org1")
        assert outcome.kind == "state_transfer", outcome.detail()
        assert peer.index.root() == root_before
        assert peer.index.height == peer.ledger.height

    def test_index_doc_roundtrip(self):
        framework = make_framework()
        populate(framework, n=4)
        framework.record_trust_on_chain("idx-cam")
        peer = next(iter(framework.channel.peers.values()))
        restored = PeerIndex.from_doc(peer.index.to_doc())
        assert restored.root() == peer.index.root()
        assert restored.height == peer.index.height
        assert restored.epochs == peer.index.epochs
        assert restored.lookup("source", "idx-cam") == (
            peer.index.lookup("source", "idx-cam")
        )


class TestExplorerIntegration:
    def test_block_views_carry_epochs(self):
        from repro.obs.explorer import LedgerExplorer

        framework = make_framework()
        populate(framework, n=3)
        explorer = LedgerExplorer(framework.channel)
        views = explorer.blocks()
        peer = next(iter(framework.channel.peers.values()))
        for view in views:
            assert view["index_epoch"] == peer.index.epochs[view["number"]]

    def test_audit_checks_epochs(self):
        from repro.obs.explorer import LedgerExplorer

        framework = make_framework()
        populate(framework, n=3)
        report = LedgerExplorer(framework.channel).audit_chain(offchain=False)
        assert report.ok
        assert report.index_epochs_checked == framework.channel.height()

    def test_audit_flags_forged_epoch(self):
        from repro.obs.explorer import LedgerExplorer

        framework = make_framework()
        populate(framework, n=3)
        peer = next(iter(framework.channel.peers.values()))
        last = peer.ledger.height - 1
        peer.index.epochs[last] = "ab" * 32
        report = LedgerExplorer(framework.channel).audit_chain(offchain=False)
        assert not report.ok
        assert any(f.check == "index_epoch" for f in report.findings)


class TestSanitizerMode:
    def test_clean_run_has_no_findings(self):
        framework = make_framework(sanitize="index")
        try:
            client, _ = populate(framework, n=3)
            client.engine.cache_enabled = False
            client.engine.run("source_id = 'idx-cam'")
            report = framework.sanitizer.finalize()
        finally:
            import repro.analysis.runtime as runtime

            runtime._ACTIVE = None
        assert report.ok, report.render()
        assert report.checks["index"] > 0

    def test_divergent_index_is_flagged(self):
        framework = make_framework(sanitize="index")
        try:
            client, _ = populate(framework, n=2)
            peer = next(iter(framework.channel.peers.values()))
            # Corrupt one posting chain, then commit another block: SAN308's
            # from-scratch rebuild can no longer reproduce the live root.
            posting = peer.index.postings[("source", "idx-cam")]
            posting.chain = "00" * 32
            client.submit(b"one-more", dict(META))
            report = framework.sanitizer.finalize()
        finally:
            import repro.analysis.runtime as runtime

            runtime._ACTIVE = None
        assert any(f.rule_id == "SAN308" for f in report.findings)
