"""End-to-end durability: WAL replay, checkpoint restore, damaged-WAL state
transfer, orderer crash semantics, validator frontiers, and SAN307."""

import pytest

from repro.analysis.runtime import Sanitizer
from repro.core import Framework, FrameworkConfig
from repro.errors import DurabilityError
from repro.fabric.snapshot import states_agree
from repro.fabric.worldstate import Version
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.storage import CORRUPT, TRUNCATE, DurabilityManager

from tests.fabric_helpers import KvChaincode, make_network


@pytest.fixture(autouse=True)
def _fresh_registry():
    set_registry(MetricsRegistry())
    yield
    set_registry(MetricsRegistry())


def durable_network(checkpoint_interval=4, wal_sync_every=1, **kwargs):
    """A two-org network journaling from genesis, like Framework wires it."""
    net, channel, alice = make_network(peers_per_org=2, **kwargs)
    manager = DurabilityManager(
        channel,
        checkpoint_interval=checkpoint_interval,
        wal_sync_every=wal_sync_every,
    )
    return net, channel, alice, manager


def put_n(channel, alice, n, prefix="k"):
    for i in range(n):
        channel.invoke(alice, "kv", "put", [f"{prefix}{i}", str(i)])


def reference(channel, name):
    peer = channel.peers[name]
    others = [p for p in channel.peers.values() if p is not peer]
    return peer, others[0]


class TestWalReplay:
    def test_amnesia_crash_replays_to_parity(self):
        net, channel, alice, manager = durable_network(checkpoint_interval=4)
        put_n(channel, alice, 6)
        peer, other = reference(channel, "peer1.org1")
        outcome = manager.crash_and_recover("peer1.org1")
        assert outcome.kind == "wal_replay"
        assert outcome.lag_blocks == 0
        assert peer.ledger.height == other.ledger.height
        assert states_agree(peer, other)

    def test_mid_interval_crash_replays_only_past_the_checkpoint(self):
        net, channel, alice, manager = durable_network(checkpoint_interval=4)
        put_n(channel, alice, 6)  # checkpoint at 4, WAL holds 5..6
        outcome = manager.crash_and_recover("peer1.org1")
        assert outcome.checkpoint_height == 4
        assert outcome.replayed_blocks == 2

    def test_torn_write_drops_the_tail_and_catches_up(self):
        net, channel, alice, manager = durable_network(
            checkpoint_interval=8, wal_sync_every=2
        )
        put_n(channel, alice, 5)  # height 5: block 5 unsynced
        peer, other = reference(channel, "peer1.org1")
        outcome = manager.crash_and_recover("peer1.org1", torn=True)
        assert outcome.wal_damage == "torn_tail"
        assert outcome.kind == "wal_replay"
        assert outcome.caught_up_blocks >= 1  # delivered, not replayed
        assert states_agree(peer, other)

    def test_recovery_checkpoints_so_the_next_crash_is_cheap(self):
        net, channel, alice, manager = durable_network(checkpoint_interval=4)
        put_n(channel, alice, 6)
        manager.crash_and_recover("peer1.org1")
        second = manager.crash_and_recover("peer1.org1")
        assert second.kind == "wal_replay"
        assert second.replayed_blocks == 0  # fresh checkpoint covers it all

    def test_unknown_peer_is_a_typed_error(self):
        _, _, _, manager = durable_network()
        with pytest.raises(DurabilityError, match="unknown peer"):
            manager.crash_and_recover("peer9.org9")


class TestStateTransfer:
    def test_corrupt_wal_falls_back_to_verified_state_transfer(self):
        net, channel, alice, manager = durable_network(
            checkpoint_interval=8, wal_sync_every=1
        )
        put_n(channel, alice, 5)
        peer, other = reference(channel, "peer1.org1")
        assert "frame" in manager.damage_wal("peer1.org1", CORRUPT)
        outcome = manager.crash_and_recover("peer1.org1")
        assert outcome.kind == "state_transfer"
        assert outcome.wal_damage == "corrupt"
        assert peer.ledger.height == other.ledger.height
        assert states_agree(peer, other)

    def test_truncated_wal_recovers_with_zero_data_loss(self):
        net, channel, alice, manager = durable_network(
            checkpoint_interval=8, wal_sync_every=1
        )
        put_n(channel, alice, 5)
        peer, other = reference(channel, "peer3.org2")
        manager.damage_wal("peer3.org2", TRUNCATE)
        outcome = manager.crash_and_recover("peer3.org2")
        assert states_agree(peer, other)
        assert outcome.height == other.ledger.height

    def test_no_donor_degrades_to_full_resync(self):
        net, channel, alice, manager = durable_network(checkpoint_interval=8)
        put_n(channel, alice, 3)
        manager.damage_wal("peer1.org1", CORRUPT)
        for name, p in channel.peers.items():
            if name != "peer1.org1":
                p.online = False
        outcome = manager.crash_and_recover("peer1.org1")
        assert outcome.kind == "full_resync"
        assert manager.stats.full_resyncs == 1

    def test_recovery_metrics_are_exported(self):
        _, channel, alice, manager = durable_network(checkpoint_interval=4)
        put_n(channel, alice, 5)
        manager.crash_and_recover("peer1.org1")
        manager.damage_wal("peer2.org2", CORRUPT)
        manager.crash_and_recover("peer2.org2")
        counters = get_registry().snapshot()["counters"]
        assert counters.get('recoveries_total{kind="wal_replay"}') == 1
        assert counters.get('recoveries_total{kind="state_transfer"}') == 1
        assert counters.get('wal_damage_total{mode="corrupt"}') == 1
        assert counters.get("checkpoints_total", 0) >= 2


class TestOrdererDurability:
    def test_crash_drops_queued_but_uncut_txs_and_counts_them(self):
        net, channel, alice, manager = durable_network(
            consensus="bft", max_batch_size=10
        )
        tx_ids = [
            channel.invoke_async(alice, "kv", "put", [f"q{i}", str(i)])
            for i in range(3)
        ]
        dropped = manager.crash_orderer()
        assert sorted(dropped) == sorted(tx_ids)
        counters = get_registry().snapshot()["counters"]
        assert counters.get('txs_dropped_total{reason="orderer_crash"}') == 3
        channel.flush()  # nothing left to cut
        assert channel.height() == 0

    def test_batched_txs_survive_because_the_batch_wal_is_synced(self):
        net, channel, alice, manager = durable_network(
            consensus="bft", max_batch_size=2
        )
        put_n(channel, alice, 4)
        batches = manager.pending_batches()
        batched_txs = {tx for txs in batches.values() for tx in txs}
        assert len(batched_txs) == 4
        dropped = manager.crash_orderer()  # queue is empty: batches already cut
        assert dropped == []
        assert manager.pending_batches() == batches  # synced records survive
        assert channel.height() == 4  # and every batched tx committed

    def test_resilient_invoke_resubmits_after_an_orderer_crash(self):
        """Satellite path: the client's retry layer re-proposes a tx the
        orderer crash silently dropped between submit and flush."""
        framework = Framework(
            FrameworkConfig(
                consensus="bft",
                durability=True,
                checkpoint_interval=4,
                max_batch_size=8,
                resilience_seed=0,
            )
        )
        framework.channel.install_chaincode(KvChaincode())
        channel, manager = framework.channel, framework.durability
        orig_flush = channel.orderer.flush
        crashed = {"n": 0}

        def crashing_flush():
            if crashed["n"] == 0:
                crashed["n"] += 1
                manager.crash_orderer()
            return orig_flush()

        channel.orderer.flush = crashing_flush
        result = framework.resilient_invoke(
            framework.admin, "kv", "put", ["resubmitted", "yes"]
        )
        assert result.ok
        assert crashed["n"] == 1
        counters = get_registry().snapshot()["counters"]
        assert counters.get('txs_dropped_total{reason="orderer_crash"}', 0) >= 1
        assert any(k.startswith("retries_total") for k in counters)


class TestValidatorFrontiers:
    def test_frontier_digests_verify_against_live_logs(self):
        net, channel, alice, manager = durable_network(
            consensus="bft", checkpoint_interval=2
        )
        put_n(channel, alice, 4)
        verdict = manager.verify_validator_frontiers()
        assert len(verdict) == 4
        assert all(verdict.values())

    def test_solo_orderer_has_no_frontiers(self):
        _, channel, alice, manager = durable_network(consensus="solo")
        put_n(channel, alice, 2)
        assert manager.verify_validator_frontiers() == {}
        assert manager.checkpoint_validators() == 0


class TestSan307:
    def _attach(self, channel):
        sanitizer = Sanitizer(frozenset(["recovery"]))
        sanitizer.channel = channel
        channel.sanitizer = sanitizer
        for peer in channel.peers.values():
            peer.sanitizer = sanitizer
        return sanitizer

    def test_clean_recovery_produces_no_findings(self):
        net, channel, alice, manager = durable_network(checkpoint_interval=4)
        sanitizer = self._attach(channel)
        put_n(channel, alice, 5)
        manager.crash_and_recover("peer1.org1")
        report = sanitizer.report()
        assert report.findings == []
        assert report.checks["recovery"] == 1

    def test_post_recovery_divergence_is_flagged(self):
        net, channel, alice, manager = durable_network(checkpoint_interval=4)
        sanitizer = self._attach(channel)
        put_n(channel, alice, 5)
        peer = channel.peers["peer1.org1"]
        manager.crash_and_recover("peer1.org1")
        peer.world.apply_write("k0", b"tampered", Version(99, 0), "evil", 0.0)
        sanitizer.check_recovery(peer, channel)
        findings = sanitizer.report().findings
        assert any(
            f.rule_id == "SAN307" and "diverges" in f.message for f in findings
        )
