"""End-to-end integration tests of the assembled framework (Figure 1)."""

import hashlib

import pytest

from repro.core import Client, Framework, FrameworkConfig
from repro.errors import TrustError, UntrustedSourceError
from repro.fabric import ValidationCode
from repro.trust import SourceTier
from repro.vision import SceneGenerator, SimulatedYolo, StaticCamera


@pytest.fixture(scope="module")
def bft_framework():
    return Framework(FrameworkConfig(consensus="bft", n_validators=4))


def make_client(framework, name, tier=SourceTier.UNTRUSTED):
    identity = framework.register_source(name, tier=tier)
    return Client(framework, identity)


META = {"timestamp": 1234.0, "camera_id": "cam-X",
        "detections": [{"vehicle_class": "car", "confidence": 0.92}]}


class TestStoreRetrieve:
    def test_full_store_path(self, bft_framework):
        client = make_client(bft_framework, "cam-sr-1", SourceTier.TRUSTED)
        receipt = client.submit(b"video-frame-bytes", dict(META))
        assert receipt.ok
        assert receipt.validation_code is ValidationCode.VALID
        assert receipt.cid.startswith("b")
        assert receipt.data_hash == hashlib.sha256(b"video-frame-bytes").hexdigest()

    def test_retrieve_returns_verified_bytes(self, bft_framework):
        client = make_client(bft_framework, "cam-sr-2", SourceTier.TRUSTED)
        receipt = client.submit(b"payload-123", dict(META))
        result = client.retrieve(receipt.entry_id)
        assert result.data == b"payload-123"
        assert result.verified
        assert result.record["cid"] == receipt.cid

    def test_data_lands_in_ipfs_and_metadata_on_chain(self, bft_framework):
        client = make_client(bft_framework, "cam-sr-3", SourceTier.TRUSTED)
        receipt = client.submit(b"hybrid-split", dict(META))
        # Off-chain: the cluster serves the bytes by CID.
        from repro.crypto.cid import CID

        assert bft_framework.ipfs.cat(CID.parse(receipt.cid)) == b"hybrid-split"
        # On-chain: no peer's world state holds the raw bytes, only metadata.
        record = client.get_metadata(receipt.entry_id)
        assert record["data_hash"] == receipt.data_hash
        for peer in bft_framework.channel.peers.values():
            for key, value in peer.world.range():
                assert b"hybrid-split" not in value

    def test_unregistered_source_rejected(self, bft_framework):
        from repro.fabric import Identity

        ghost = Identity.create("ghost", "org1")
        bft_framework.fabric.msp_registry.enroll(ghost)  # MSP yes, trust no
        client = Client(bft_framework, ghost)
        with pytest.raises(TrustError):
            client.submit(b"x", dict(META))

    def test_ledger_verifies_after_many_submissions(self, bft_framework):
        client = make_client(bft_framework, "cam-sr-4", SourceTier.TRUSTED)
        for i in range(3):
            client.submit(f"frame-{i}".encode(), dict(META))
        for peer in bft_framework.channel.peers.values():
            peer.ledger.verify_chain()


class TestProvenance:
    def test_lineage_records_store_and_access(self, bft_framework):
        client = make_client(bft_framework, "cam-prov-1", SourceTier.TRUSTED)
        receipt = client.submit(b"provenance-payload", dict(META))
        client.retrieve(receipt.entry_id)
        lineage = client.provenance(receipt.entry_id)
        assert [e["action"] for e in lineage] == ["captured", "stored", "accessed"]
        assert lineage[1]["details"]["cid"] == receipt.cid

    def test_provenance_chain_verifies(self, bft_framework):
        client = make_client(bft_framework, "cam-prov-2", SourceTier.TRUSTED)
        receipt = client.submit(b"verify-me", dict(META))
        result = client.verify_provenance(receipt.entry_id)
        assert result["length"] == 2


class TestTrustIntegration:
    def test_untrusted_source_score_evolves_and_lands_on_chain(self, bft_framework):
        client = make_client(bft_framework, "mob-trust-1")
        before = client.trust_score()
        for i in range(5):
            client.submit(f"obs-{i}".encode(), dict(META))
        after = client.trust_score()
        assert after > before
        on_chain = client.on_chain_trust()
        assert on_chain["score"] == pytest.approx(after, abs=1e-5)

    def test_trusted_source_skips_scoring(self, bft_framework):
        client = make_client(bft_framework, "cam-trust-2", SourceTier.TRUSTED)
        receipt = client.submit(b"trusted-data", dict(META))
        assert receipt.trust_score == 1.0

    def test_quarantined_source_rejected(self):
        framework = Framework(FrameworkConfig(consensus="solo"))
        client = make_client(framework, "mob-bad")
        # Crash the score below the floor.
        for _ in range(30):
            framework.trust.record_validation("mob-bad", False, 0, 4)
        assert framework.trust.tier("mob-bad") is SourceTier.QUARANTINED
        with pytest.raises(UntrustedSourceError):
            client.submit(b"refused", dict(META))

    def test_consensus_votes_feed_validator_pool(self, bft_framework):
        client = make_client(bft_framework, "cam-vp-1", SourceTier.TRUSTED)
        receipt = client.submit(b"vp-data", dict(META))
        votes = bft_framework.consensus_votes(receipt.tx_id)
        assert len(votes) >= 3  # 2f+1 of 4
        assert all(votes.values())

    def test_cross_validation_raises_corroborated_score(self):
        framework = Framework(FrameworkConfig(consensus="solo"))
        cam = make_client(framework, "cam-cv", SourceTier.TRUSTED)
        mob = make_client(framework, "mob-cv")
        from repro.trust.crossval import Observation

        cam_obs = Observation("cam-cv", lat=12.95, lon=77.6, timestamp=50.0, counts={"car": 3})
        cam.submit(b"cam-frame", dict(META), observation=cam_obs)
        agreeing = Observation("mob-cv", lat=12.95, lon=77.6, timestamp=55.0, counts={"car": 3})
        mob.submit(b"mob-photo", dict(META), observation=agreeing)
        record = framework.trust.chain_record("mob-cv")
        assert record["cross_validation"] > 0.8


class TestVisionPipeline:
    def test_submit_frame_end_to_end(self):
        framework = Framework(FrameworkConfig(consensus="solo"))
        client = make_client(framework, "cam-vision", SourceTier.TRUSTED)
        scene = SceneGenerator(seed=21, density=4.0).scene("e2e")
        frame = StaticCamera("cam-vision").capture(scene)
        receipt = client.submit_frame(frame)
        assert receipt.ok
        result = client.retrieve(receipt.entry_id)
        assert result.data == frame.to_bytes()
        assert result.record["metadata"]["source_id"] == "cam-vision"
        # Detections made it into the on-chain metadata.
        n_dets = len(result.record["metadata"]["detections"])
        assert n_dets == len(SimulatedYolo().detect(frame))

    def test_frame_query_by_vehicle_class(self):
        framework = Framework(FrameworkConfig(consensus="solo"))
        client = make_client(framework, "cam-vq", SourceTier.TRUSTED)
        gen = SceneGenerator(seed=22, density=5.0)
        camera = StaticCamera("cam-vq")
        for i in range(3):
            client.submit_frame(camera.capture(gen.scene(f"q{i}")))
        rows = client.query("source_id = 'cam-vq'")
        assert len(rows) == 3


class TestFrameworkShape:
    def test_paper_testbed_defaults(self):
        config = FrameworkConfig()
        assert config.orgs == ("org1", "org2")
        assert config.n_ipfs_nodes == 2
        assert config.consensus == "bft"

    def test_solo_mode_has_no_validators(self):
        framework = Framework(FrameworkConfig(consensus="solo"))
        assert framework.consensus_votes("whatever") == {}

    def test_all_chaincodes_installed(self, bft_framework):
        peer = next(iter(bft_framework.channel.peers.values()))
        assert set(peer.chaincodes.names()) == {
            "admin_enrollment",
            "user_registration",
            "data_upload",
            "data_retrieval",
            "provenance",
            "trust_score",
            "access_control",
        }
