"""Tests for strict admission: contradicted submissions blocked up-front."""

import pytest

from repro.core import Client, Framework, FrameworkConfig
from repro.errors import UntrustedSourceError
from repro.trust import SourceTier
from repro.trust.crossval import Observation

JUNCTION = dict(lat=12.97, lon=77.59)
META = {"timestamp": 1.0, "detections": []}


@pytest.fixture()
def strict_env():
    framework = Framework(FrameworkConfig(consensus="solo", strict_admission=True))
    cam = Client(framework, framework.register_source("s-cam", tier=SourceTier.TRUSTED))
    mob = Client(framework, framework.register_source("s-mob"))
    return framework, cam, mob


class TestStrictAdmission:
    def test_contradicted_submission_refused_before_storage(self, strict_env):
        framework, cam, mob = strict_env
        cam.submit(b"truth", dict(META),
                   observation=Observation("s-cam", timestamp=10.0, counts={"car": 4}, **JUNCTION))
        blocks_before = framework.channel.height()
        lie = Observation("s-mob", timestamp=12.0, counts={"car": 0, "truck": 9}, **JUNCTION)
        with pytest.raises(UntrustedSourceError, match="contradicts"):
            mob.submit(b"fabricated", dict(META), observation=lie)
        # Nothing but the trust-score update reached the chain; the data
        # record itself was never stored.
        rows = cam.query("source_id = 's-mob'")
        assert rows == []
        assert framework.channel.height() >= blocks_before  # trust write only

    def test_refusal_damages_trust_score(self, strict_env):
        framework, cam, mob = strict_env
        cam.submit(b"truth", dict(META),
                   observation=Observation("s-cam", timestamp=10.0, counts={"car": 4}, **JUNCTION))
        before = framework.trust.score("s-mob")
        lie = Observation("s-mob", timestamp=12.0, counts={"truck": 9}, **JUNCTION)
        with pytest.raises(UntrustedSourceError):
            mob.submit(b"fabricated", dict(META), observation=lie)
        assert framework.trust.score("s-mob") < before

    def test_corroborated_submission_accepted(self, strict_env):
        framework, cam, mob = strict_env
        cam.submit(b"truth", dict(META),
                   observation=Observation("s-cam", timestamp=10.0, counts={"car": 4}, **JUNCTION))
        agreeing = Observation("s-mob", timestamp=12.0, counts={"car": 4}, **JUNCTION)
        receipt = mob.submit(b"honest report", dict(META), observation=agreeing)
        assert receipt.ok

    def test_no_trusted_neighbours_means_no_gate(self, strict_env):
        """Absence of corroboration is not evidence of falsehood."""
        framework, cam, mob = strict_env
        lonely = Observation("s-mob", timestamp=1.0, counts={"car": 2},
                             lat=13.5, lon=78.5)  # far from everything
        receipt = mob.submit(b"uncorroborated", dict(META), observation=lonely)
        assert receipt.ok

    def test_observationless_submissions_not_gated(self, strict_env):
        _, _, mob = strict_env
        receipt = mob.submit(b"no observation", dict(META))
        assert receipt.ok

    def test_trusted_sources_never_gated(self, strict_env):
        framework, cam, _ = strict_env
        cam.submit(b"t1", dict(META),
                   observation=Observation("s-cam", timestamp=10.0, counts={"car": 4}, **JUNCTION))
        # Even a contradicting trusted report is recorded (it becomes new truth).
        receipt = cam.submit(b"t2", dict(META),
                             observation=Observation("s-cam", timestamp=11.0,
                                                     counts={"truck": 9}, **JUNCTION))
        assert receipt.ok

    def test_default_mode_is_permissive(self):
        framework = Framework(FrameworkConfig(consensus="solo"))
        cam = Client(framework, framework.register_source("p-cam", tier=SourceTier.TRUSTED))
        mob = Client(framework, framework.register_source("p-mob"))
        cam.submit(b"truth", dict(META),
                   observation=Observation("p-cam", timestamp=10.0, counts={"car": 4}, **JUNCTION))
        lie = Observation("p-mob", timestamp=12.0, counts={"truck": 9}, **JUNCTION)
        receipt = mob.submit(b"recorded but scored down", dict(META), observation=lie)
        assert receipt.ok  # permissive mode records and lets the score fall
