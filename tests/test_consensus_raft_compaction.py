"""Tests for Raft log compaction and InstallSnapshot catch-up."""

from repro.consensus import RaftCluster, Role
from repro.net import ConstantLatency, SimNetwork


def make_cluster(n=3, seed=11):
    net = SimNetwork(latency=ConstantLatency(base=0.002))
    return RaftCluster(n_nodes=n, network=net, seed=seed)


def settle(cluster, duration=1.0, step=0.1):
    end = cluster.network.clock.now() + duration
    while cluster.network.clock.now() < end:
        cluster.network.run(until=cluster.network.clock.now() + step)


class TestCompaction:
    def test_compact_folds_committed_prefix(self):
        cluster = make_cluster()
        leader = cluster.elect()
        for i in range(10):
            cluster.submit(i)
        settle(cluster, 1.0)
        assert leader.commit_index == 10
        compacted = leader.compact()
        assert compacted == 10
        assert len(leader.log) == 0
        assert leader.committed_payloads() == list(range(10))

    def test_compact_noop_without_commits(self):
        cluster = make_cluster()
        leader = cluster.elect()
        assert leader.compact() == 0

    def test_replication_continues_after_compaction(self):
        cluster = make_cluster()
        leader = cluster.elect()
        for i in range(5):
            cluster.submit(i)
        settle(cluster, 1.0)
        leader.compact()
        for i in range(5, 8):
            cluster.submit(i)
        settle(cluster, 1.0)
        for name in cluster.node_names:
            assert cluster.committed_payloads(name) == list(range(8))

    def test_lagging_follower_gets_install_snapshot(self):
        """A follower down across a compaction catches up via snapshot."""
        cluster = make_cluster(n=3)
        leader = cluster.elect()
        follower = next(n for n in cluster.node_names if n != leader.name)
        cluster.network.set_node_up(follower, False)
        for i in range(6):
            cluster.submit(i)
        settle(cluster, 1.0)
        leader.compact()  # the entries the follower missed are now gone
        assert len(leader.log) == 0
        cluster.network.set_node_up(follower, True)
        settle(cluster, 3.0)
        assert cluster.committed_payloads(follower) == list(range(6))

    def test_snapshot_commit_callbacks_fire(self):
        committed = []
        net = SimNetwork(latency=ConstantLatency(base=0.002))
        cluster = RaftCluster(
            n_nodes=3, network=net, seed=13,
            on_commit=lambda node, idx, e: committed.append((node, idx, e.payload)),
        )
        leader = cluster.elect()
        follower = next(n for n in cluster.node_names if n != leader.name)
        cluster.network.set_node_up(follower, False)
        for i in range(4):
            cluster.submit(i)
        settle(cluster, 1.0)
        leader.compact()
        cluster.network.set_node_up(follower, True)
        settle(cluster, 3.0)
        # The snapshot-adopting follower reported every entry exactly once.
        follower_commits = [(idx, p) for n, idx, p in committed if n == follower]
        assert follower_commits == [(1, 0), (2, 1), (3, 2), (4, 3)]

    def test_compacted_leader_survives_reelection(self):
        cluster = make_cluster(n=5, seed=17)
        leader = cluster.elect()
        for i in range(6):
            cluster.submit(i)
        settle(cluster, 1.0)
        for node in cluster.nodes.values():
            node.compact()
        cluster.network.set_node_up(leader.name, False)
        settle(cluster, 2.0)
        new_leader = cluster.leader()
        assert new_leader is not None and new_leader.name != leader.name
        cluster.submit("post-compaction")
        settle(cluster, 1.0)
        assert "post-compaction" in cluster.committed_payloads(new_leader.name)
        assert cluster.committed_payloads(new_leader.name)[:6] == list(range(6))

    def test_mixed_compaction_states_stay_consistent(self):
        """Some nodes compacted, some not: logs must still agree."""
        cluster = make_cluster(n=3, seed=19)
        leader = cluster.elect()
        for i in range(6):
            cluster.submit(i)
        settle(cluster, 1.0)
        leader.compact()  # only the leader compacts
        for i in range(6, 9):
            cluster.submit(i)
        settle(cluster, 1.0)
        payloads = {n: tuple(cluster.committed_payloads(n)) for n in cluster.node_names}
        assert len(set(payloads.values())) == 1
        assert payloads[leader.name] == tuple(range(9))
