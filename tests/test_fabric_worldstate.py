"""Tests for the versioned world state, composite keys, and history."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LedgerError
from repro.fabric.worldstate import (
    Version,
    WorldState,
    composite_prefix_range,
    make_composite_key,
    split_composite_key,
)


def ws_put(ws, key, value, block, tx=0, tx_id="tx", ts=0.0):
    ws.apply_write(key, value, Version(block, tx), tx_id, ts)


class TestWorldState:
    def test_get_put(self):
        ws = WorldState()
        ws_put(ws, "k", b"v", 1)
        assert ws.get("k") == b"v"
        assert ws.get_version("k") == Version(1, 0)

    def test_missing_key_none(self):
        assert WorldState().get("nope") is None
        assert WorldState().get_version("nope") is None

    def test_overwrite_advances_version(self):
        ws = WorldState()
        ws_put(ws, "k", b"v1", 1)
        ws_put(ws, "k", b"v2", 2)
        assert ws.get("k") == b"v2"
        assert ws.get_version("k") == Version(2, 0)

    def test_stale_write_rejected(self):
        ws = WorldState()
        ws_put(ws, "k", b"v2", 5)
        with pytest.raises(LedgerError):
            ws_put(ws, "k", b"old", 3)

    def test_delete(self):
        ws = WorldState()
        ws_put(ws, "k", b"v", 1)
        ws_put(ws, "k", None, 2)
        assert ws.get("k") is None
        assert not ws.has("k")
        # Delete still advances the version (MVCC sees the tombstone).
        assert ws.get_version("k") == Version(2, 0)

    def test_range_scan_sorted(self):
        ws = WorldState()
        for key in ["b", "a", "d", "c"]:
            ws_put(ws, key, key.encode(), 1)
        assert [k for k, _ in ws.range("a", "c")] == ["a", "b"]
        assert [k for k, _ in ws.range()] == ["a", "b", "c", "d"]

    def test_range_open_bounds(self):
        ws = WorldState()
        for key in ["a", "b", "c"]:
            ws_put(ws, key, b"x", 1)
        assert [k for k, _ in ws.range(start="b")] == ["b", "c"]
        assert [k for k, _ in ws.range(end="b")] == ["a"]

    def test_range_after_delete(self):
        ws = WorldState()
        for key in ["a", "b", "c"]:
            ws_put(ws, key, b"x", 1)
        ws_put(ws, "b", None, 2)
        assert [k for k, _ in ws.range()] == ["a", "c"]

    def test_history_ordered(self):
        ws = WorldState()
        ws_put(ws, "k", b"v1", 1, tx_id="t1")
        ws_put(ws, "k", b"v2", 2, tx_id="t2")
        ws_put(ws, "k", None, 3, tx_id="t3")
        history = ws.history("k")
        assert [h.tx_id for h in history] == ["t1", "t2", "t3"]
        assert [h.is_delete for h in history] == [False, False, True]

    def test_version_ordering(self):
        assert Version(1, 5) < Version(2, 0)
        assert Version(2, 1) < Version(2, 2)

    @given(st.dictionaries(st.text(min_size=1, max_size=8), st.binary(min_size=1, max_size=8), max_size=20))
    def test_property_range_matches_sorted_dict(self, items):
        ws = WorldState()
        for i, (k, v) in enumerate(items.items()):
            ws_put(ws, k, v, 1, tx=i)
        assert ws.range() == sorted(items.items())


class TestCompositeKeys:
    def test_roundtrip(self):
        key = make_composite_key("vehicle", ["bangalore", "cam-7", "frame-1"])
        obj, attrs = split_composite_key(key)
        assert obj == "vehicle"
        assert attrs == ["bangalore", "cam-7", "frame-1"]

    def test_no_attributes(self):
        key = make_composite_key("marker", [])
        obj, attrs = split_composite_key(key)
        assert (obj, attrs) == ("marker", [])

    def test_separator_in_parts_rejected(self):
        with pytest.raises(LedgerError):
            make_composite_key("a\x00b", [])
        with pytest.raises(LedgerError):
            make_composite_key("a", ["x\x00y"])

    def test_split_non_composite_rejected(self):
        with pytest.raises(LedgerError):
            split_composite_key("plain-key")

    def test_prefix_range_selects_subtree(self):
        ws = WorldState()
        keys = {
            make_composite_key("cat", ["fruit", "apple"]): b"1",
            make_composite_key("cat", ["fruit", "banana"]): b"2",
            make_composite_key("cat", ["veg", "carrot"]): b"3",
            make_composite_key("other", ["fruit", "apple"]): b"4",
        }
        for i, (k, v) in enumerate(keys.items()):
            ws_put(ws, k, v, 1, tx=i)
        start, end = composite_prefix_range("cat", ["fruit"])
        rows = ws.range(start, end)
        assert sorted(v for _, v in rows) == [b"1", b"2"]

    def test_prefix_range_full_object_type(self):
        ws = WorldState()
        for i, item in enumerate(["a", "b"]):
            ws_put(ws, make_composite_key("cat", ["x", item]), b"v", 1, tx=i)
        start, end = composite_prefix_range("cat", [])
        assert len(ws.range(start, end)) == 2

    def test_prefix_is_not_confused_by_similar_attr(self):
        """Attribute 'ab' must not match prefix query for 'a'."""
        ws = WorldState()
        ws_put(ws, make_composite_key("cat", ["ab", "x"]), b"1", 1)
        start, end = composite_prefix_range("cat", ["a"])
        assert ws.range(start, end) == []

    @given(
        st.text(alphabet=st.characters(blacklist_characters="\x00"), min_size=1, max_size=6),
        st.lists(
            st.text(alphabet=st.characters(blacklist_characters="\x00"), max_size=6),
            max_size=4,
        ),
    )
    def test_property_roundtrip(self, obj, attrs):
        key = make_composite_key(obj, attrs)
        assert split_composite_key(key) == (obj, attrs)
