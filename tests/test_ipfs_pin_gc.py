"""Tests for pinning and garbage collection."""

import pytest

from repro.crypto.cid import CID
from repro.errors import PinError
from repro.ipfs.blockstore import MemoryBlockstore
from repro.ipfs.chunker import FixedSizeChunker
from repro.ipfs.dag import DagService
from repro.ipfs.pin import PinManager, collect_garbage
from repro.ipfs.unixfs import UnixFS
from repro.util.rng import rng_for


def make_fs():
    store = MemoryBlockstore()
    return store, UnixFS(store, chunker=FixedSizeChunker(100), fanout=4)


class TestPinManager:
    def test_pin_and_check(self):
        pins = PinManager()
        cid = CID.for_data(b"x")
        pins.pin(cid)
        assert pins.is_pinned(cid)

    def test_unpin(self):
        pins = PinManager()
        cid = CID.for_data(b"x")
        pins.pin(cid)
        pins.unpin(cid)
        assert not pins.is_pinned(cid)

    def test_unpin_never_pinned_raises(self):
        with pytest.raises(PinError):
            PinManager().unpin(CID.for_data(b"x"))

    def test_direct_pin_upgrade_to_recursive(self):
        pins = PinManager()
        cid = CID.for_data(b"x")
        pins.pin(cid, recursive=False)
        pins.pin(cid, recursive=True)
        assert cid in pins.recursive and cid not in pins.direct

    def test_direct_pin_on_recursive_rejected(self):
        pins = PinManager()
        cid = CID.for_data(b"x")
        pins.pin(cid, recursive=True)
        with pytest.raises(PinError):
            pins.pin(cid, recursive=False)


class TestGC:
    def test_gc_keeps_pinned_tree(self):
        store, fs = make_fs()
        data = rng_for(1, "gc").bytes(1000)
        result = fs.add_file(data)
        pins = PinManager()
        pins.pin(result.cid)
        gc = collect_garbage(store, pins, DagService(store))
        assert gc.removed == 0
        assert fs.read_file(result.cid) == data

    def test_gc_removes_unpinned_tree(self):
        store, fs = make_fs()
        keep = fs.add_file(rng_for(2, "gc").bytes(1000))
        drop = fs.add_file(rng_for(3, "gc").bytes(1000))
        pins = PinManager()
        pins.pin(keep.cid)
        gc = collect_garbage(store, pins, DagService(store))
        assert gc.removed > 0
        assert gc.reclaimed_bytes > 0
        assert store.has(keep.cid)
        assert not store.has(drop.cid)

    def test_gc_respects_shared_blocks(self):
        """A block shared by a pinned and an unpinned file must survive."""
        store, fs = make_fs()
        common = rng_for(4, "gc").bytes(500)
        unique = rng_for(5, "gc").bytes(500)
        kept = fs.add_file(common)
        fs.add_file(common + unique)  # shares leading chunks with `kept`
        pins = PinManager()
        pins.pin(kept.cid)
        collect_garbage(store, pins, DagService(store))
        assert fs.read_file(kept.cid) == common

    def test_gc_direct_pin_keeps_only_that_block(self):
        store, fs = make_fs()
        result = fs.add_file(rng_for(6, "gc").bytes(1000))
        pins = PinManager()
        pins.pin(result.cid, recursive=False)  # root only, not children
        collect_garbage(store, pins, DagService(store))
        assert store.has(result.cid)
        assert len(store) == 1

    def test_gc_empty_store(self):
        store = MemoryBlockstore()
        gc = collect_garbage(store, PinManager(), DagService(store))
        assert gc.removed == 0 and gc.kept == 0
