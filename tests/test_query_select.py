"""Tests for SELECT projections in the query language."""

import pytest

from repro.errors import QueryParseError
from repro.query import Query, parse_query
from repro.query.ast import TrueExpr


RECORDS = [
    {"entry_id": "e1", "cid": "bafy1", "source_id": "cam-A",
     "data_hash": "aa", "metadata": {"timestamp": 100.0, "camera_id": "cam-A",
                                     "detections": [{"vehicle_class": "car"}]}},
    {"entry_id": "e2", "cid": "bafy2", "source_id": "cam-B",
     "data_hash": "bb", "metadata": {"timestamp": 200.0, "camera_id": "cam-B",
                                     "detections": []}},
]


class TestParsing:
    def test_select_single_field(self):
        q = parse_query("SELECT source_id WHERE source_id = 'cam-A'")
        assert q.select == ("source_id",)

    def test_select_multiple_fields(self):
        q = parse_query("SELECT source_id, metadata.timestamp")
        assert q.select == ("source_id", "metadata.timestamp")
        assert isinstance(q.where, TrueExpr)

    def test_select_with_full_clause_chain(self):
        q = parse_query(
            "SELECT metadata.timestamp WHERE source_id = 'cam-A' "
            "ORDER BY metadata.timestamp DESC LIMIT 3"
        )
        assert q.select == ("metadata.timestamp",)
        assert q.limit == 3 and q.descending

    def test_no_select_means_whole_record(self):
        assert parse_query("source_id = 'cam-A'").select is None

    def test_empty_select_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT WHERE x = 1")

    def test_query_validation(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            Query(select=())


class TestProjection:
    def test_projects_requested_fields(self):
        q = parse_query("SELECT source_id")
        rows = q.apply_post(list(RECORDS))
        assert rows[0] == {"entry_id": "e1", "cid": "bafy1", "source_id": "cam-A"}

    def test_nested_paths_rebuilt(self):
        q = parse_query("SELECT metadata.timestamp")
        rows = q.apply_post(list(RECORDS))
        assert rows[0]["metadata"] == {"timestamp": 100.0}
        assert "data_hash" not in rows[0]

    def test_entry_id_and_cid_always_kept(self):
        q = parse_query("SELECT metadata.camera_id")
        for row in q.apply_post(list(RECORDS)):
            assert "entry_id" in row and "cid" in row

    def test_missing_fields_omitted(self):
        q = parse_query("SELECT metadata.nonexistent")
        rows = q.apply_post(list(RECORDS))
        assert "metadata" not in rows[0]

    def test_projection_after_order_and_limit(self):
        q = parse_query("SELECT source_id ORDER BY metadata.timestamp DESC LIMIT 1")
        rows = q.apply_post(list(RECORDS))
        assert len(rows) == 1
        assert rows[0]["source_id"] == "cam-B"


class TestEndToEnd:
    def test_projection_through_engine(self):
        from repro.core import Client, Framework, FrameworkConfig
        from repro.trust import SourceTier

        framework = Framework(FrameworkConfig(consensus="solo"))
        client = Client(
            framework, framework.register_source("sel-cam", tier=SourceTier.TRUSTED)
        )
        client.submit(b"payload", {"timestamp": 5.0, "camera_id": "sel-cam",
                                   "detections": []})
        rows = client.query("SELECT metadata.timestamp WHERE source_id = 'sel-cam'")
        assert len(rows) == 1
        record = rows[0].record
        assert record["metadata"] == {"timestamp": 5.0}
        assert set(record) == {"entry_id", "cid", "metadata"}
        # Projected rows stay retrievable (entry_id survived).
        assert client.retrieve(record["entry_id"]).verified
