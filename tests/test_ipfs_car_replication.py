"""Tests for CAR import/export and the replication manager."""

import pytest

from repro.crypto.cid import CID
from repro.errors import StorageError
from repro.ipfs import FixedSizeChunker, IpfsCluster, MemoryBlockstore, UnixFS
from repro.ipfs.block import Block
from repro.ipfs.car import export_car, import_car
from repro.ipfs.replication import ReplicationManager
from repro.util.rng import rng_for


def make_fs():
    store = MemoryBlockstore()
    return store, UnixFS(store, chunker=FixedSizeChunker(100), fanout=4)


class TestCar:
    def test_roundtrip_single_file(self):
        src, fs = make_fs()
        data = rng_for(1, "car").bytes(1000)
        root = fs.add_file(data).cid

        car = export_car(src, [root])
        dst = MemoryBlockstore()
        roots = import_car(dst, car)
        assert roots == [root]
        assert UnixFS(dst).read_file(root) == data

    def test_multiple_roots_shared_blocks_written_once(self):
        src, fs = make_fs()
        common = rng_for(2, "car").bytes(500)
        r1 = fs.add_file(common).cid
        r2 = fs.add_file(common + b"tail-bytes" * 30).cid  # shares chunks
        car = export_car(src, [r1, r2])
        dst = MemoryBlockstore()
        import_car(dst, car)
        assert UnixFS(dst).read_file(r1) == common
        # Dedup: the CAR holds no more blocks than the source store.
        assert len(dst) <= len(src)

    def test_small_raw_file(self):
        src, fs = make_fs()
        root = fs.add_file(b"tiny").cid
        dst = MemoryBlockstore()
        import_car(dst, export_car(src, [root]))
        assert dst.get(root).data == b"tiny"

    def test_empty_roots_rejected(self):
        src, _ = make_fs()
        with pytest.raises(StorageError):
            export_car(src, [])

    def test_corrupted_block_rejected(self):
        src, fs = make_fs()
        root = fs.add_file(rng_for(3, "car").bytes(300)).cid
        car = bytearray(export_car(src, [root]))
        # Flip one byte near the end (inside some block's payload).
        car[-5] ^= 0xFF
        from repro.errors import InvalidBlockError

        with pytest.raises((InvalidBlockError, StorageError)):
            import_car(MemoryBlockstore(), bytes(car))

    def test_incomplete_car_rejected(self):
        src, fs = make_fs()
        data = rng_for(4, "car").bytes(1000)
        root = fs.add_file(data).cid
        # Export, then strip the final section (drop one block).
        full = export_car(src, [root])
        partial_store = MemoryBlockstore()
        # Re-export from a store missing a leaf to force incompleteness.
        leaf = fs.leaf_cids(root)[-1]
        for cid in src.cids():
            if cid != leaf:
                partial_store.put(src.get(cid))
        with pytest.raises(StorageError, match="incomplete|not found"):
            export_car(partial_store, [root])
        # And importing a truncated byte string fails cleanly too.
        with pytest.raises(StorageError):
            import_car(MemoryBlockstore(), full[: len(full) - 40])

    def test_bad_header_rejected(self):
        with pytest.raises(StorageError):
            import_car(MemoryBlockstore(), b"\x05notjs")


class TestReplicationManager:
    def make(self, n_nodes=4, factor=2):
        cluster = IpfsCluster(n_nodes=n_nodes, chunker=FixedSizeChunker(100))
        return cluster, ReplicationManager(cluster, replication_factor=factor)

    def test_replicate_reaches_factor(self):
        cluster, mgr = self.make()
        data = rng_for(5, "rep").bytes(800)
        root = cluster.add(data, node="ipfs-0").cid
        status = mgr.replicate(root)
        assert status.healthy
        assert len(status.holders) >= 2

    def test_placement_stable(self):
        cluster, mgr = self.make()
        cid = CID.for_data(b"stable")
        assert mgr.placement(cid) == mgr.placement(cid)

    def test_placement_differs_across_cids(self):
        cluster, mgr = self.make(n_nodes=6, factor=2)
        placements = {tuple(mgr.placement(CID.for_data(bytes([i])))) for i in range(20)}
        assert len(placements) > 1  # not everything lands on the same pair

    def test_unheld_cid_rejected(self):
        _, mgr = self.make()
        with pytest.raises(StorageError, match="no cluster node holds"):
            mgr.replicate(CID.for_data(b"phantom"))

    def test_replicas_are_complete_copies(self):
        cluster, mgr = self.make()
        data = rng_for(6, "rep").bytes(1500)
        root = cluster.add(data, node="ipfs-0").cid
        status = mgr.replicate(root)
        for holder in status.holders:
            assert cluster.node(holder).cat_local(root) == data

    def test_repair_after_node_loss(self):
        cluster, mgr = self.make(n_nodes=4, factor=2)
        data = rng_for(7, "rep").bytes(900)
        root = cluster.add(data, node="ipfs-0").cid
        status = mgr.replicate(root)
        victim = status.holders[0]
        cluster.remove_node(victim)
        degraded = mgr.status(root)
        # Repair restores the factor from the surviving copy.
        repaired = mgr.repair()
        assert any(s.cid == root for s in repaired) or degraded.healthy
        assert mgr.status(root).healthy
        # Data still fully readable from any current holder.
        holder = mgr.status(root).holders[0]
        assert cluster.node(holder).cat_local(root) == data

    def test_repair_noop_when_healthy(self):
        cluster, mgr = self.make()
        root = cluster.add(rng_for(8, "rep").bytes(400)).cid
        mgr.replicate(root)
        assert mgr.repair() == []

    def test_factor_capped_by_cluster_size(self):
        cluster, mgr = self.make(n_nodes=2, factor=5)
        root = cluster.add(rng_for(9, "rep").bytes(400)).cid
        status = mgr.replicate(root)
        assert status.desired == 2
        assert status.healthy

    def test_invalid_factor_rejected(self):
        cluster = IpfsCluster(n_nodes=2)
        with pytest.raises(StorageError):
            ReplicationManager(cluster, replication_factor=0)

    def test_remove_unknown_node_rejected(self):
        cluster, _ = self.make()
        with pytest.raises(StorageError):
            cluster.remove_node("ipfs-99")
