"""Tests for PBFT consensus: agreement, validity voting, Byzantine faults."""

import pytest

from repro.consensus import Behaviour, BftCluster
from repro.errors import ConsensusError
from repro.net import ConstantLatency, SimNetwork


def make_cluster(n=4, validator=None, behaviours=None, **kwargs):
    net = SimNetwork(latency=ConstantLatency(base=0.001))
    return BftCluster(
        n_replicas=n, network=net, validator=validator, behaviours=behaviours, **kwargs
    )


class TestHappyPath:
    def test_single_request_commits_everywhere(self):
        cluster = make_cluster()
        req = cluster.submit({"op": "put", "key": "a"})
        cluster.run()
        log = cluster.decided_log()
        assert len(log) == 1
        assert log[0].request.request_id == req.request_id
        assert log[0].accepted
        assert cluster.agreement_reached(req.request_id)

    def test_all_honest_replicas_have_identical_logs(self):
        cluster = make_cluster()
        for i in range(5):
            cluster.submit({"n": i})
        cluster.run()
        logs = [
            [(d.seq, d.request.request_id, d.accepted) for d in sorted(r.log, key=lambda d: d.seq)]
            for r in cluster.replicas.values()
        ]
        assert all(log == logs[0] for log in logs)
        assert len(logs[0]) == 5

    def test_sequence_numbers_are_consecutive(self):
        cluster = make_cluster()
        for i in range(10):
            cluster.submit(i)
        cluster.run()
        assert [d.seq for d in cluster.decided_log()] == list(range(10))

    def test_larger_cluster(self):
        cluster = make_cluster(n=7)
        req = cluster.submit("payload")
        cluster.run()
        assert cluster.agreement_reached(req.request_id)

    def test_too_small_cluster_rejected(self):
        with pytest.raises(ConsensusError):
            make_cluster(n=3)

    def test_accepted_records_vote_counts(self):
        cluster = make_cluster()
        cluster.submit("x")
        cluster.run()
        decision = cluster.decided_log()[0]
        assert decision.valid_votes >= 3
        assert decision.invalid_votes == 0


class TestValidationVoting:
    def test_invalid_transaction_rejected_but_ordered(self):
        cluster = make_cluster(validator=lambda name, req: req.payload != "bad")
        good = cluster.submit("good")
        bad = cluster.submit("bad")
        cluster.run()
        log = {d.request.request_id: d for d in cluster.decided_log()}
        assert log[good.request_id].accepted
        assert not log[bad.request_id].accepted
        # Rejection is still an agreement: all replicas decided it.
        assert cluster.agreement_reached(bad.request_id)

    def test_validator_sees_replica_name(self):
        seen = set()

        def validator(name, req):
            seen.add(name)
            return True

        cluster = make_cluster(validator=validator)
        cluster.submit("x")
        cluster.run()
        assert len(seen) == 4  # every replica validated independently


class TestByzantineFaults:
    def test_one_silent_replica_tolerated(self):
        cluster = make_cluster(behaviours={"validator-3": Behaviour.SILENT})
        req = cluster.submit("payload")
        cluster.run()
        assert cluster.agreement_reached(req.request_id)

    def test_one_crashed_replica_tolerated(self):
        cluster = make_cluster(behaviours={"validator-2": Behaviour.CRASHED})
        req = cluster.submit("payload")
        cluster.run()
        assert cluster.agreement_reached(req.request_id)

    def test_one_wrong_digest_replica_tolerated(self):
        cluster = make_cluster(behaviours={"validator-1": Behaviour.WRONG_DIGEST})
        req = cluster.submit("payload")
        cluster.run()
        assert cluster.agreement_reached(req.request_id)

    def test_one_endorser_of_invalid_data_outvoted(self):
        """A corrupt validator endorsing bad data cannot flip the verdict."""
        cluster = make_cluster(
            validator=lambda name, req: req.payload != "bad",
            behaviours={"validator-0": Behaviour.ALWAYS_VALID},
        )
        bad = cluster.submit("bad")
        cluster.run()
        log = {d.request.request_id: d for d in cluster.decided_log()}
        assert not log[bad.request_id].accepted

    def test_one_rejector_of_valid_data_outvoted(self):
        cluster = make_cluster(behaviours={"validator-2": Behaviour.ALWAYS_INVALID})
        req = cluster.submit("fine")
        cluster.run()
        log = {d.request.request_id: d for d in cluster.decided_log()}
        assert log[req.request_id].accepted

    def test_two_byzantine_of_four_break_liveness(self):
        """Beyond f=1 faults in n=4, requests cannot commit."""
        cluster = make_cluster(
            behaviours={
                "validator-2": Behaviour.SILENT,
                "validator-3": Behaviour.SILENT,
            },
            view_timeout=0.5,
        )
        req = cluster.submit("stuck")
        cluster.run(until=3.0)
        assert not cluster.agreement_reached(req.request_id)

    def test_f_of_seven_byzantine_tolerated(self):
        # n=7 -> f=2: two simultaneous faults of different kinds.
        cluster = make_cluster(
            n=7,
            behaviours={
                "validator-5": Behaviour.WRONG_DIGEST,
                "validator-6": Behaviour.ALWAYS_INVALID,
            },
        )
        req = cluster.submit("robust")
        cluster.run()
        log = {d.request.request_id: d for d in cluster.decided_log()}
        assert log[req.request_id].accepted


class TestViewChange:
    def test_crashed_primary_triggers_view_change(self):
        cluster = make_cluster(
            behaviours={"validator-0": Behaviour.CRASHED}, view_timeout=0.5
        )
        req = cluster.submit("survives primary crash")
        cluster.run(until=10.0)
        honest = [r for r in cluster.replicas.values() if r.behaviour is Behaviour.NORMAL]
        assert all(r.view >= 1 for r in honest)
        assert cluster.agreement_reached(req.request_id)

    def test_silent_primary_request_eventually_commits(self):
        cluster = make_cluster(
            behaviours={"validator-0": Behaviour.SILENT}, view_timeout=0.5
        )
        req = cluster.submit("needs new primary")
        cluster.run(until=10.0)
        assert cluster.agreement_reached(req.request_id)

    def test_equivocating_primary_does_not_split_honest_replicas(self):
        cluster = make_cluster(
            behaviours={"validator-0": Behaviour.EQUIVOCATE}, view_timeout=0.5
        )
        req = cluster.submit("no fork")
        cluster.run(until=10.0)
        # Either the request commits identically everywhere or nowhere;
        # honest replicas must never decide different values.
        decisions = {}
        for r in cluster.replicas.values():
            if r.behaviour is not Behaviour.NORMAL:
                continue
            for d in r.log:
                if d.request.request_id == req.request_id:
                    decisions.setdefault(r.name, (d.seq, d.accepted))
        assert len(set(decisions.values())) <= 1


class TestDecisionCallback:
    def test_on_decision_called_per_replica(self):
        events = []
        cluster = make_cluster(on_decision=lambda name, d: events.append(name))
        cluster.submit("observed")
        cluster.run()
        assert len(events) == 4


class TestViewChangeSafety:
    """Cross-view agreement: no seq may ever decide two different requests."""

    def test_prepared_replica_refuses_conflicting_reproposal(self):
        from repro.consensus.bft import _digest
        from repro.consensus.messages import ClientRequest, PrePrepare

        cluster = make_cluster()
        req = cluster.submit("first")
        cluster.run()
        replica = cluster.replicas["validator-1"]
        assert replica._prepared_digest[0] == _digest(req)
        # A later view's primary tries to order a *different* request at a
        # seq this replica already prepared: it must not participate.
        replica.view = 1
        rogue = ClientRequest(request_id="rogue", payload="other")
        replica._dispatch(PrePrepare(1, 0, _digest(rogue), rogue))
        assert (1, 0) not in replica._slots
        assert [d.request.request_id for d in replica.log] == [req.request_id]

    def test_reproposal_of_same_request_still_accepted(self):
        from repro.consensus.bft import _digest
        from repro.consensus.messages import PrePrepare

        cluster = make_cluster()
        req = cluster.submit("first")
        cluster.run()
        replica = cluster.replicas["validator-1"]
        replica.view = 1
        replica._dispatch(PrePrepare(1, 0, _digest(req), req))
        assert (1, 0) in replica._slots  # same digest: participation allowed

    def test_view_change_votes_carry_prepared_frontier(self):
        cluster = make_cluster()
        for i in range(3):
            cluster.submit(f"r{i}")
        cluster.run()
        for replica in cluster.replicas.values():
            assert replica._max_prepared_seq() == 2

    def test_new_primary_proposes_past_decided_slots(self):
        cluster = make_cluster(view_timeout=0.5)
        for i in range(2):
            cluster.submit(f"pre-{i}")
        cluster.run()
        # Primary dies; the re-proposed request must land on a fresh seq
        # (>= 2), never colliding with a slot the old view decided.
        cluster.network.set_node_up("validator-0", False)
        req = cluster.submit("after crash")
        cluster.run(until=30.0)
        decided = [
            d
            for name, r in cluster.replicas.items()
            if name != "validator-0"
            for d in r.log
            if d.request.request_id == req.request_id
        ]
        assert decided
        assert all(d.seq >= 2 for d in decided)
        assert cluster.log_prefix_consistent()
