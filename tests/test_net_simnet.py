"""Tests for the discrete-event network simulator."""

import pytest

from repro.errors import NetworkError, NodeUnreachableError
from repro.net import ConstantLatency, Message, NetNode, SimNetwork


def make_net(**kwargs) -> SimNetwork:
    return SimNetwork(latency=ConstantLatency(base=0.01, bandwidth_bps=1e9), **kwargs)


class Recorder(NetNode):
    """Node that records every delivered message."""

    def __init__(self, name, network):
        super().__init__(name, network)
        self.received: list[Message] = []

    def on_message(self, msg):
        self.received.append(msg)


class TestBasicDelivery:
    def test_send_delivers_after_latency(self):
        net = make_net()
        a = Recorder("a", net)
        b = Recorder("b", net)
        a.send("b", {"hello": 1})
        assert b.received == []  # nothing until the loop runs
        net.run()
        assert len(b.received) == 1
        assert b.received[0].payload == {"hello": 1}
        assert net.clock.now() >= 0.01

    def test_messages_preserve_send_order_on_equal_latency(self):
        net = make_net()
        a = Recorder("a", net)
        b = Recorder("b", net)
        for i in range(10):
            a.send("b", i, size_bytes=0)
        net.run()
        assert [m.payload for m in b.received] == list(range(10))

    def test_broadcast_reaches_all_but_sender(self):
        net = make_net()
        nodes = [Recorder(f"n{i}", net) for i in range(5)]
        nodes[0].broadcast("ping")
        net.run()
        assert all(len(n.received) == 1 for n in nodes[1:])
        assert nodes[0].received == []

    def test_unknown_destination_raises(self):
        net = make_net()
        Recorder("a", net)
        with pytest.raises(NodeUnreachableError):
            net.send("a", "ghost", "x")

    def test_unknown_source_raises(self):
        net = make_net()
        Recorder("a", net)
        with pytest.raises(NetworkError):
            net.send("ghost", "a", "x")

    def test_duplicate_registration_rejected(self):
        net = make_net()
        Recorder("a", net)
        with pytest.raises(NetworkError):
            Recorder("a", net)

    def test_transmission_delay_scales_with_size(self):
        net = SimNetwork(latency=ConstantLatency(base=0.0, bandwidth_bps=8.0))
        a = Recorder("a", net)
        Recorder("b", net)
        a.send("b", "x", size_bytes=16)  # 16 bytes at 8 bit/s = 16 s
        net.run()
        assert net.clock.now() == pytest.approx(16.0)


class TestDeterminism:
    def _run_once(self, seed):
        net = SimNetwork(drop_rate=0.3, seed=seed)
        recs = [Recorder(f"n{i}", net) for i in range(4)]
        for i in range(20):
            recs[i % 4].broadcast(i)
        net.run()
        return [(m.src, m.dst, m.payload) for r in recs for m in r.received], net.stats.dropped_rate

    def test_same_seed_same_trace(self):
        assert self._run_once(7) == self._run_once(7)

    def test_different_seed_different_drops(self):
        assert self._run_once(1) != self._run_once(2)


class TestFaults:
    def test_down_node_drops_messages(self):
        net = make_net()
        a = Recorder("a", net)
        b = Recorder("b", net)
        net.set_node_up("b", False)
        a.send("b", "lost")
        net.run()
        assert b.received == []
        assert net.stats.dropped_down == 1

    def test_restart_restores_delivery(self):
        net = make_net()
        a = Recorder("a", net)
        b = Recorder("b", net)
        net.set_node_up("b", False)
        net.set_node_up("b", True)
        a.send("b", "back")
        net.run()
        assert len(b.received) == 1

    def test_partition_blocks_cross_traffic(self):
        net = make_net()
        a = Recorder("a", net)
        b = Recorder("b", net)
        c = Recorder("c", net)
        net.partition(["a", "b"], ["c"])
        a.send("b", "ok")
        a.send("c", "blocked")
        net.run()
        assert len(b.received) == 1
        assert c.received == []
        assert net.stats.dropped_partition == 1

    def test_heal_restores_traffic(self):
        net = make_net()
        a = Recorder("a", net)
        c = Recorder("c", net)
        net.partition(["a"], ["c"])
        net.heal()
        a.send("c", "through")
        net.run()
        assert len(c.received) == 1

    def test_message_in_flight_when_partition_forms_is_lost(self):
        net = make_net()
        a = Recorder("a", net)
        c = Recorder("c", net)
        a.send("c", "doomed")
        net.partition(["a"], ["c"])  # before the event loop runs
        net.run()
        assert c.received == []

    def test_drop_rate_drops_roughly_that_fraction(self):
        net = SimNetwork(drop_rate=0.5, seed=3)
        a = Recorder("a", net)
        b = Recorder("b", net)
        for i in range(400):
            a.send("b", i)
        net.run()
        assert 120 < len(b.received) < 280  # wide band around 200

    def test_invalid_drop_rate_rejected(self):
        with pytest.raises(ValueError):
            SimNetwork(drop_rate=1.0)


class TestEventLoop:
    def test_run_until_bounds_time(self):
        net = make_net()
        a = Recorder("a", net)
        b = Recorder("b", net)
        net.schedule(5.0, lambda: a.send("b", "late"))
        net.run(until=1.0)
        assert b.received == []
        assert net.clock.now() == 1.0
        net.run()
        assert len(b.received) == 1

    def test_timers_fire_in_order(self):
        net = make_net()
        fired = []
        net.schedule(2.0, lambda: fired.append("second"))
        net.schedule(1.0, lambda: fired.append("first"))
        net.run()
        assert fired == ["first", "second"]

    def test_max_events_guards_livelock(self):
        net = make_net()

        def rearm():
            net.schedule(0.001, rearm)

        net.schedule(0.0, rearm)
        processed = net.run(max_events=100)
        assert processed == 100

    def test_negative_schedule_rejected(self):
        net = make_net()
        with pytest.raises(ValueError):
            net.schedule(-1.0, lambda: None)

    def test_run_returns_event_count(self):
        net = make_net()
        a = Recorder("a", net)
        Recorder("b", net)
        a.send("b", 1)
        a.send("b", 2)
        assert net.run() == 2

    def test_stats_track_bytes(self):
        net = make_net()
        a = Recorder("a", net)
        Recorder("b", net)
        a.send("b", "x", size_bytes=1000)
        net.run()
        assert net.stats.bytes_sent == 1000
        assert net.stats.bytes_delivered == 1000


class TestLatencyModels:
    def test_pairwise_override(self):
        from repro.net import PairwiseLatency

        model = PairwiseLatency(fallback=ConstantLatency(base=0.001))
        model.set_link("a", "c", ConstantLatency(base=1.0))
        assert model.delay("a", "b", 0) == pytest.approx(0.001)
        assert model.delay("a", "c", 0) >= 1.0
        assert model.delay("c", "a", 0) >= 1.0  # symmetric by default

    def test_jitter_bounded(self):
        from repro.net import JitterLatency

        model = JitterLatency(base=0.01, jitter=0.005, seed=1)
        delays = [model.delay("a", "b", 0) for _ in range(100)]
        assert all(0.01 <= d <= 0.015 for d in delays)

    def test_lognormal_positive(self):
        from repro.net import LogNormalLatency

        model = LogNormalLatency(median=0.02, seed=1)
        assert all(model.delay("a", "b", 100) > 0 for _ in range(100))

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            ConstantLatency(base=-1)
        with pytest.raises(ValueError):
            ConstantLatency(bandwidth_bps=0)
