"""Tests for cross-validation, the trust engine, and the validator pool."""

import pytest

from repro.errors import TrustError
from repro.trust import (
    CrossValidator,
    Observation,
    SourceTier,
    TrustEngine,
    ValidatorPool,
)


def obs(source="s", lat=12.97, lon=77.59, t=100.0, **counts):
    return Observation(source_id=source, lat=lat, lon=lon, timestamp=t, counts=counts)


class TestCrossValidator:
    def test_no_neighbours_neutral(self):
        cv = CrossValidator()
        assert cv.score(obs()) == pytest.approx(0.5)

    def test_perfect_match_scores_high(self):
        cv = CrossValidator()
        cv.add_trusted(obs(source="cam", car=3, truck=1))
        assert cv.score(obs(source="mobile", car=3, truck=1)) > 0.9

    def test_contradiction_scores_low(self):
        cv = CrossValidator()
        cv.add_trusted(obs(source="cam", car=10))
        assert cv.score(obs(source="mobile", car=0, truck=7)) < 0.35

    def test_distance_gates_comparison(self):
        cv = CrossValidator(max_distance_deg=0.01)
        cv.add_trusted(obs(source="cam", lat=12.97, car=5))
        far = obs(source="mobile", lat=13.50, car=0)  # ~60 km away
        assert cv.score(far) == pytest.approx(0.5)  # not comparable

    def test_time_gates_comparison(self):
        cv = CrossValidator(max_time_gap_s=60)
        cv.add_trusted(obs(source="cam", t=0.0, car=5))
        assert cv.score(obs(source="mobile", t=500.0, car=0)) == pytest.approx(0.5)

    def test_near_miss_degrades_gracefully(self):
        cv = CrossValidator()
        cv.add_trusted(obs(source="cam", car=10))
        close = cv.score(obs(source="m", car=9))
        off = cv.score(obs(source="m", car=5))
        way_off = cv.score(obs(source="m", car=0))
        assert close > off > way_off

    def test_multiple_neighbours_averaged(self):
        cv = CrossValidator()
        cv.add_trusted(obs(source="cam1", car=10))
        cv.add_trusted(obs(source="cam2", car=0))
        mid = cv.score(obs(source="m", car=10))
        assert 0.4 < mid < 0.9  # pulled down by the disagreeing camera

    def test_prune_drops_old_records(self):
        cv = CrossValidator(window_s=100)
        cv.add_trusted(obs(source="cam", t=0.0))
        cv.add_trusted(obs(source="cam", t=950.0))
        dropped = cv.prune(now=1000.0)
        assert dropped == 1
        assert cv.trusted_count() == 1


class TestTrustEngine:
    def make(self):
        engine = TrustEngine()
        engine.register_source("camera-1", SourceTier.TRUSTED)
        engine.register_source("mobile-1", SourceTier.UNTRUSTED)
        return engine

    def test_trusted_source_full_score(self):
        engine = self.make()
        assert engine.score("camera-1") == 1.0
        decision = engine.admit("camera-1")
        assert decision.admitted and not decision.requires_corroboration

    def test_untrusted_source_admitted_with_validation(self):
        engine = self.make()
        decision = engine.admit("mobile-1")
        assert decision.admitted
        assert decision.requires_corroboration  # below trusted threshold

    def test_duplicate_registration_rejected(self):
        engine = self.make()
        with pytest.raises(TrustError):
            engine.register_source("mobile-1")

    def test_unknown_source_rejected(self):
        with pytest.raises(TrustError):
            self.make().admit("ghost")

    def test_cannot_register_into_quarantine(self):
        with pytest.raises(TrustError):
            self.make().register_source("x", SourceTier.QUARANTINED)

    def test_good_behaviour_earns_trusted_level_score(self):
        engine = self.make()
        for _ in range(40):
            engine.record_validation("mobile-1", True, valid_votes=4, invalid_votes=0)
        assert engine.score("mobile-1") > engine.trusted_threshold
        assert not engine.admit("mobile-1").requires_corroboration

    def test_bad_behaviour_quarantines(self):
        engine = self.make()
        for _ in range(30):
            engine.record_validation("mobile-1", False, valid_votes=0, invalid_votes=4)
        assert engine.tier("mobile-1") is SourceTier.QUARANTINED
        assert not engine.admit("mobile-1").admitted

    def test_quarantined_source_can_earn_release(self):
        engine = self.make()
        for _ in range(30):
            engine.record_validation("mobile-1", False, valid_votes=0, invalid_votes=4)
        assert engine.tier("mobile-1") is SourceTier.QUARANTINED
        for _ in range(60):
            engine.record_corroborated_accept("mobile-1", cross_validation=0.95)
        assert engine.tier("mobile-1") is SourceTier.UNTRUSTED
        assert engine.admit("mobile-1").admitted

    def test_corroborated_accept_requires_corroboration(self):
        engine = self.make()
        with pytest.raises(TrustError):
            engine.record_corroborated_accept("mobile-1", cross_validation=0.3)

    def test_trusted_observations_feed_cross_validation(self):
        engine = self.make()
        engine.observe_trusted(obs(source="camera-1", car=5))
        score = engine.cross_validate(obs(source="mobile-1", car=5))
        assert score > 0.9

    def test_untrusted_cannot_feed_trusted_window(self):
        engine = self.make()
        with pytest.raises(TrustError):
            engine.observe_trusted(obs(source="mobile-1", car=5))

    def test_observation_updates_cross_signal(self):
        engine = self.make()
        engine.observe_trusted(obs(source="camera-1", car=5))
        engine.record_validation(
            "mobile-1", True, valid_votes=4, invalid_votes=0,
            observation=obs(source="mobile-1", car=5),
        )
        record = engine.chain_record("mobile-1")
        assert record["cross_validation"] > 0.9

    def test_chain_record_tiers(self):
        engine = self.make()
        assert engine.chain_record("camera-1")["tier"] == "trusted"
        assert engine.chain_record("mobile-1")["tier"] == "untrusted"

    def test_sources_by_tier(self):
        engine = self.make()
        assert engine.sources(SourceTier.TRUSTED) == ["camera-1"]
        assert engine.sources() == ["camera-1", "mobile-1"]


class TestValidatorPool:
    def make(self, n=4):
        pool = ValidatorPool(min_votes=5, flags_to_remove=2)
        for i in range(n):
            pool.add_validator(f"v{i}")
        return pool

    def test_honest_validators_never_flagged(self):
        pool = self.make()
        for _ in range(50):
            pool.observe_decision(True, {f"v{i}": True for i in range(4)})
        assert pool.flagged() == []
        assert pool.active() == ["v0", "v1", "v2", "v3"]

    def test_consistent_dissenter_flagged_then_removed(self):
        pool = self.make()
        removed_events = []
        for _ in range(50):
            votes = {"v0": True, "v1": True, "v2": True, "v3": False}
            removed_events += pool.observe_decision(True, votes)
        assert "v3" in pool.removed()
        assert removed_events.count("v3") == 1

    def test_silent_validator_accrues_absences(self):
        pool = self.make()
        for _ in range(50):
            pool.observe_decision(True, {"v0": True, "v1": True, "v2": True})
        assert "v3" in pool.removed()

    def test_occasional_disagreement_tolerated(self):
        pool = self.make()
        for i in range(60):
            votes = {f"v{j}": True for j in range(4)}
            if i % 10 == 0:
                votes["v3"] = False  # 10% dissent, under the 1/3 threshold
            pool.observe_decision(True, votes)
        assert "v3" not in pool.removed()
        assert pool.record("v3").flags == 0

    def test_no_flagging_before_evidence_floor(self):
        pool = self.make()
        pool.observe_decision(True, {"v0": True, "v1": True, "v2": True, "v3": False})
        assert pool.record("v3").flags == 0

    def test_removed_validator_not_active(self):
        pool = self.make()
        for _ in range(50):
            pool.observe_decision(True, {"v0": True, "v1": True, "v2": True, "v3": False})
        assert "v3" not in pool.active()

    def test_duplicate_add_rejected(self):
        pool = self.make()
        with pytest.raises(TrustError):
            pool.add_validator("v0")

    def test_unknown_record_rejected(self):
        with pytest.raises(TrustError):
            self.make().record("ghost")

    def test_stats_shape(self):
        pool = self.make(2)
        pool.observe_decision(True, {"v0": True, "v1": False})
        stats = pool.stats()
        assert stats["v1"]["disagreements"] == 1
        assert stats["v0"]["votes"] == 1
