"""Tests for the tracing layer: nesting, error capture, no-op mode."""

import pytest

from repro import obs
from repro.obs import NOOP_SPAN, Tracer, current_span, enabled, get_tracer
from repro.obs.tracer import span as obs_span


@pytest.fixture(autouse=True)
def _no_global_tracer_leak():
    yield
    obs.disable()


class TestSpanNesting:
    def test_parent_child_linkage(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None

    def test_three_levels_share_one_trace(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                with tracer.span("c") as c:
                    pass
        assert c.parent_id == b.span_id
        assert b.parent_id == a.span_id
        assert {a.trace_id, b.trace_id, c.trace_id} == {a.span_id}

    def test_siblings_share_parent_not_ids(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.parent_id == second.parent_id == root.span_id
        assert first.span_id != second.span_id

    def test_current_span_tracks_innermost(self):
        tracer = Tracer()
        assert current_span() is None
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_separate_roots_get_separate_traces(self):
        tracer = Tracer()
        with tracer.span("one") as one:
            pass
        with tracer.span("two") as two:
            pass
        assert one.trace_id != two.trace_id
        assert len(tracer.roots()) == 2

    def test_timing_is_monotone_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.duration_s >= inner.duration_s >= 0
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s


class TestErrorCapture:
    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans("doomed")
        assert span.status == "error"
        assert span.error == "ValueError: boom"
        assert span.finished

    def test_error_in_child_leaves_parent_ok(self):
        tracer = Tracer()
        with tracer.span("parent"):
            try:
                with tracer.span("child"):
                    raise RuntimeError("inner failure")
            except RuntimeError:
                pass
        assert tracer.spans("parent")[0].status == "ok"
        assert tracer.spans("child")[0].status == "error"

    def test_context_restored_after_error(self):
        tracer = Tracer()
        with pytest.raises(KeyError):
            with tracer.span("fails"):
                raise KeyError("x")
        assert current_span() is None


class TestQueries:
    def test_children_and_descendants(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("mid"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("mid2"):
                pass
        kids = tracer.children(root)
        assert [s.name for s in kids] == ["mid", "mid2"]
        assert {s.name for s in tracer.descendants(root)} == {"mid", "leaf", "mid2"}

    def test_tree_nests_dicts(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        (tree,) = tracer.tree()
        assert tree["name"] == "root"
        assert tree["children"][0]["name"] == "child"
        assert tree["children"][0]["children"] == []

    def test_tree_lines_indent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        lines = tracer.tree_lines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert list(tracer.finished) == []


class TestGlobalTracer:
    def test_disabled_span_is_shared_noop(self):
        obs.disable()
        sp = obs_span("anything")
        assert sp is NOOP_SPAN
        assert obs_span("other") is sp  # same object every call
        with sp as inner:
            inner.set_attr("ignored", 1)

    def test_enable_records_module_level_spans(self):
        with enabled() as tracer:
            with obs_span("traced") as sp:
                sp.set_attr("k", "v")
        assert tracer.spans("traced")[0].attrs == {"k": "v"}

    def test_enabled_restores_previous_tracer(self):
        outer = obs.enable()
        with enabled() as inner:
            assert get_tracer() is inner
        assert get_tracer() is outer

    def test_registry_integration(self):
        registry = obs.MetricsRegistry()
        with enabled(registry=registry):
            with obs_span("measured"):
                pass
            with pytest.raises(ValueError):
                with obs_span("measured"):
                    raise ValueError("no")
        snap = registry.snapshot()
        assert snap["counters"]['spans_total{name="measured",status="ok"}'] == 1
        assert snap["counters"]['spans_total{name="measured",status="error"}'] == 1
        assert snap["histograms"]['span_seconds{name="measured"}']["n"] == 2


class TestRingBufferRetention:
    def test_unbounded_by_default(self):
        tracer = Tracer()
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished) == 10
        assert tracer.dropped == 0

    def test_max_spans_bounds_retention_and_counts_drops(self):
        tracer = Tracer(max_spans=3)
        for i in range(8):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished) == 3
        assert [s.name for s in tracer.finished] == ["s5", "s6", "s7"]
        assert tracer.dropped == 5

    def test_dropped_spans_still_counted_in_metrics(self):
        registry = obs.MetricsRegistry()
        tracer = Tracer(registry=registry, max_spans=2)
        for i in range(5):
            with tracer.span("s"):
                pass
        snap = registry.snapshot()
        assert snap["counters"]["spans_dropped_total"] == 3
        # Metrics see every span — only retention is bounded.
        assert snap["counters"]['spans_total{name="s",status="ok"}'] == 5

    def test_invalid_max_spans_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_enable_installs_bounded_tracer_by_default(self):
        from repro.obs.tracer import DEFAULT_MAX_SPANS

        with enabled() as tracer:
            assert tracer.max_spans == DEFAULT_MAX_SPANS
        with enabled(max_spans=None) as tracer:
            assert tracer.max_spans is None
