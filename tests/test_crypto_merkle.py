"""Tests for Merkle trees and inclusion proofs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.merkle import MerkleTree, merkle_root
from repro.errors import MerkleProofError


class TestMerkleTree:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_single_leaf_root_is_leaf_hash(self):
        tree = MerkleTree([b"only"])
        assert len(tree) == 1
        proof = tree.proof(0)
        assert proof.steps == ()
        proof.verify(b"only", tree.root)

    def test_root_changes_with_leaf_content(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root

    def test_root_changes_with_leaf_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_proofs_verify_for_all_leaves(self):
        leaves = [f"tx-{i}".encode() for i in range(7)]  # odd count
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            tree.proof(i).verify(leaf, tree.root)

    def test_proof_fails_for_wrong_leaf(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        with pytest.raises(MerkleProofError):
            tree.proof(1).verify(b"x", tree.root)

    def test_proof_fails_for_wrong_root(self):
        tree = MerkleTree([b"a", b"b"])
        other = MerkleTree([b"a", b"c"])
        assert not tree.proof(0).is_valid(b"a", other.root)

    def test_proof_index_out_of_range(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(IndexError):
            tree.proof(1)

    def test_leaf_not_confusable_with_interior_node(self):
        """Domain separation: a two-leaf root used as a leaf gives a new root."""
        inner = MerkleTree([b"a", b"b"]).root
        assert MerkleTree([inner]).root != MerkleTree([b"a", b"b"]).root

    def test_odd_promotion_no_phantom_leaf(self):
        """Tree of [a,b,c] must differ from tree of [a,b,c,c] (no duplication)."""
        assert MerkleTree([b"a", b"b", b"c"]).root != MerkleTree([b"a", b"b", b"c", b"c"]).root


class TestMerkleRoot:
    def test_empty_defined(self):
        assert isinstance(merkle_root([]), bytes)
        assert len(merkle_root([])) == 32

    def test_matches_tree(self):
        leaves = [b"x", b"y", b"z"]
        assert merkle_root(leaves) == MerkleTree(leaves).root


@given(st.lists(st.binary(max_size=32), min_size=1, max_size=33))
def test_property_all_proofs_verify(leaves):
    tree = MerkleTree(leaves)
    for i, leaf in enumerate(leaves):
        assert tree.proof(i).is_valid(leaf, tree.root)


@given(st.lists(st.binary(max_size=16), min_size=2, max_size=16), st.data())
def test_property_mutated_leaf_fails(leaves, data):
    tree = MerkleTree(leaves)
    idx = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    mutated = leaves[idx] + b"\x01"
    assert not tree.proof(idx).is_valid(mutated, tree.root)


@given(st.lists(st.binary(max_size=16), min_size=1, max_size=16))
def test_property_root_deterministic(leaves):
    assert MerkleTree(leaves).root == MerkleTree(leaves).root
