"""Tests for the chaincode stub: rwset capture, composite keys, events."""

import pytest

from repro.errors import ChaincodeError
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.fabric.identity import Identity
from repro.fabric.worldstate import Version, WorldState

from tests.fabric_helpers import KvChaincode


def make_stub(world=None, tx_id="tx-1"):
    world = world or WorldState()
    creator = Identity.create("alice", "org1").info()
    return ChaincodeStub(
        world=world, tx_id=tx_id, creator=creator, timestamp=100.0, chaincode_name="kv"
    )


class TestStubStateAccess:
    def test_read_records_version(self):
        world = WorldState()
        world.apply_write("k", b"v", Version(3, 1), "t0", 0.0)
        stub = make_stub(world)
        assert stub.get_state("k") == b"v"
        reads = stub.rwset().reads
        assert len(reads) == 1
        assert reads[0].key == "k" and reads[0].version == Version(3, 1)

    def test_read_missing_records_none_version(self):
        stub = make_stub()
        assert stub.get_state("ghost") is None
        assert stub.rwset().reads[0].version is None

    def test_write_then_read_sees_buffered_value(self):
        stub = make_stub()
        stub.put_state("k", b"new")
        assert stub.get_state("k") == b"new"
        # Reading own write adds no read-set entry.
        assert stub.rwset().reads == ()

    def test_delete_then_read_sees_none(self):
        world = WorldState()
        world.apply_write("k", b"v", Version(1, 0), "t0", 0.0)
        stub = make_stub(world)
        stub.del_state("k")
        assert stub.get_state("k") is None

    def test_writes_never_touch_live_state(self):
        world = WorldState()
        stub = make_stub(world)
        stub.put_state("k", b"v")
        assert world.get("k") is None

    def test_last_write_wins_in_write_set(self):
        stub = make_stub()
        stub.put_state("k", b"v1")
        stub.put_state("k", b"v2")
        writes = stub.rwset().writes
        assert len(writes) == 1
        assert writes[0].value == b"v2"

    def test_empty_key_rejected(self):
        with pytest.raises(ChaincodeError):
            make_stub().put_state("", b"v")

    def test_non_bytes_value_rejected(self):
        with pytest.raises(ChaincodeError):
            make_stub().put_state("k", "not-bytes")

    def test_range_merges_buffered_writes(self):
        world = WorldState()
        world.apply_write("a", b"1", Version(1, 0), "t", 0.0)
        world.apply_write("c", b"3", Version(1, 1), "t", 0.0)
        stub = make_stub(world)
        stub.put_state("b", b"2")
        stub.del_state("c")
        rows = stub.get_state_by_range("a", "z")
        assert rows == [("a", b"1"), ("b", b"2")]

    def test_rwset_digest_deterministic(self):
        s1, s2 = make_stub(), make_stub()
        for stub in (s1, s2):
            stub.get_state("x")
            stub.put_state("y", b"1")
        assert s1.rwset().digest() == s2.rwset().digest()

    def test_context_accessors(self):
        stub = make_stub(tx_id="tx-42")
        assert stub.get_tx_id() == "tx-42"
        assert stub.get_creator().name == "alice"
        assert stub.get_timestamp() == 100.0


class TestDispatch:
    def test_dispatch_routes_and_serializes(self):
        stub = make_stub()
        out = KvChaincode().dispatch(stub, "put", ["k", "v"])
        # Responses render as canonical JSON (sorted keys, compact): the
        # response string is part of what every endorser signs.
        assert out == '{"key":"k"}'

    def test_unknown_function_rejected(self):
        with pytest.raises(ChaincodeError):
            KvChaincode().dispatch(make_stub(), "nope", [])

    def test_private_function_rejected(self):
        with pytest.raises(ChaincodeError):
            KvChaincode().dispatch(make_stub(), "_make_stub", [])

    def test_dunder_rejected(self):
        with pytest.raises(ChaincodeError):
            KvChaincode().dispatch(make_stub(), "__init__", [])

    def test_wrong_arity_is_chaincode_error(self):
        with pytest.raises(ChaincodeError):
            KvChaincode().dispatch(make_stub(), "put", ["only-one"])

    def test_application_error_propagates(self):
        with pytest.raises(ChaincodeError, match="deliberate"):
            KvChaincode().dispatch(make_stub(), "boom", [])

    def test_events_captured(self):
        stub = make_stub()
        KvChaincode().dispatch(stub, "emit", ["DataValidated"])
        events = stub.events()
        assert len(events) == 1
        assert events[0].name == "DataValidated"
        assert events[0].payload == {"from": "alice"}


class TestCrossChaincode:
    def test_nested_invocation_shares_rwset(self):
        world = WorldState()
        creator = Identity.create("alice", "org1").info()
        other = KvChaincode()

        def invoker(cc_name, fn, args, stub):
            assert cc_name == "kv"
            return other.dispatch(stub, fn, args)

        stub = ChaincodeStub(
            world=world,
            tx_id="t",
            creator=creator,
            timestamp=0.0,
            chaincode_name="caller",
            invoker=invoker,
        )

        class Caller(Chaincode):
            name = "caller"

            def run(self, stub):
                stub.invoke_chaincode("kv", "put", ["nested-key", "nested-value"])
                return {}

        Caller().dispatch(stub, "run", [])
        writes = {w.key: w.value for w in stub.rwset().writes}
        assert writes == {"nested-key": b"nested-value"}

    def test_invocation_without_invoker_rejected(self):
        with pytest.raises(ChaincodeError):
            make_stub().invoke_chaincode("kv", "put", ["a", "b"])
