"""Tests for state snapshots, checkpointed block stores, and peer bootstrap."""

import json

import pytest

from repro.errors import LedgerError
from repro.fabric import Peer
from repro.fabric.snapshot import (
    Snapshot,
    adopt_snapshot,
    bootstrap_peer,
    state_digest,
    states_agree,
    take_snapshot,
)

from tests.fabric_helpers import make_network


class TestStateDigest:
    def test_identical_peers_agree(self):
        net, channel, alice = make_network(peers_per_org=2)
        for i in range(4):
            channel.invoke(alice, "kv", "put", [f"k{i}", str(i)])
        peers = list(channel.peers.values())
        assert states_agree(peers[0], peers[1])
        assert state_digest(peers[0].world) == state_digest(peers[1].world)

    def test_divergence_detected(self):
        net, channel, alice = make_network(peers_per_org=2)
        channel.invoke(alice, "kv", "put", ["k", "v"])
        peers = list(channel.peers.values())
        from repro.fabric.worldstate import Version

        peers[1].world.apply_write("k", b"tampered", Version(99, 0), "evil", 0.0)
        assert not states_agree(peers[0], peers[1])

    def test_empty_states_agree(self):
        net, channel, _ = make_network(peers_per_org=2)
        peers = list(channel.peers.values())
        assert states_agree(peers[0], peers[1])


class TestSnapshotRoundtrip:
    def make_populated(self, n=5):
        net, channel, alice = make_network()
        for i in range(n):
            channel.invoke(alice, "kv", "put", [f"key-{i}", f"value-{i}"])
        return net, channel, alice

    def test_serialization_roundtrip(self):
        _, channel, _ = self.make_populated()
        peer = next(iter(channel.peers.values()))
        snap = take_snapshot(peer, channel.name)
        assert Snapshot.from_bytes(snap.to_bytes()) == snap

    def test_malformed_snapshot_rejected(self):
        with pytest.raises(LedgerError):
            Snapshot.from_bytes(b'{"channel":"x"}')

    def test_bootstrap_reproduces_state(self):
        net, channel, alice = self.make_populated()
        source = next(iter(channel.peers.values()))
        snap = take_snapshot(source, channel.name)

        fresh = Peer("bootstrapped", source.identity, net.msp_registry)
        bootstrap_peer(fresh, snap)
        assert fresh.world.get("key-3") == b"value-3"
        assert fresh.ledger.height == source.ledger.height
        assert states_agree(fresh, source)

    def test_bootstrap_rejects_tampered_snapshot(self):
        net, channel, alice = self.make_populated()
        source = next(iter(channel.peers.values()))
        snap = take_snapshot(source, channel.name)
        tampered = Snapshot(
            channel=snap.channel,
            height=snap.height,
            last_block_hash=snap.last_block_hash,
            entries=snap.entries[:-1],  # drop a key but keep the digest
            digest=snap.digest,
        )
        fresh = Peer("victim", source.identity, net.msp_registry)
        with pytest.raises(LedgerError, match="digest mismatch"):
            bootstrap_peer(fresh, tampered)

    def test_bootstrap_requires_fresh_peer(self):
        net, channel, alice = self.make_populated()
        source = next(iter(channel.peers.values()))
        snap = take_snapshot(source, channel.name)
        with pytest.raises(LedgerError, match="fresh peer"):
            bootstrap_peer(source, snap)

    def test_bootstrapped_peer_commits_future_blocks(self):
        """The end goal: a snapshot-joined peer keeps up from the checkpoint."""
        net, channel, alice = self.make_populated()
        source = next(iter(channel.peers.values()))
        snap = take_snapshot(source, channel.name)

        fresh = Peer(
            "late-joiner", source.identity, net.msp_registry,
            collections=channel.collections,
        )
        bootstrap_peer(fresh, snap)
        channel.join_peer(fresh)  # installs chaincodes

        result = channel.invoke(alice, "kv", "put", ["post-snapshot", "yes"])
        assert result.ok
        assert fresh.world.get("post-snapshot") == b"yes"
        assert states_agree(fresh, source)
        fresh.ledger.verify_chain()  # verifies from the checkpoint forward

    def test_checkpointed_store_rejects_pre_checkpoint_queries(self):
        net, channel, alice = self.make_populated()
        source = next(iter(channel.peers.values()))
        snap = take_snapshot(source, channel.name)
        fresh = Peer("cp", source.identity, net.msp_registry)
        bootstrap_peer(fresh, snap)
        with pytest.raises(LedgerError, match="predates"):
            fresh.ledger.block(0)

    def test_lagging_revived_peer_adopts_snapshot_instead_of_full_replay(self):
        """A peer offline through many commits rejoins via verified snapshot
        adoption — its store starts at the checkpoint, not at genesis."""
        net, channel, alice = make_network(peers_per_org=2)
        lagger = channel.peers["peer1.org1"]
        lagger.online = False
        for i in range(6):
            channel.invoke(alice, "kv", "put", [f"while-away-{i}", str(i)])
        source = channel.peers["peer0.org1"]
        assert lagger.ledger.height < source.ledger.height

        lagger.online = True
        skipped = adopt_snapshot(lagger, take_snapshot(source, channel.name))
        assert skipped == lagger.ledger.height == source.ledger.height
        assert states_agree(lagger, source)
        # The adopted store is checkpoint-based: pre-snapshot blocks were
        # never replayed, so querying one is a typed error — the proof this
        # was adoption, not a from-genesis replay.
        with pytest.raises(LedgerError, match="predates"):
            lagger.ledger.block(0)
        # And the peer keeps committing from the checkpoint forward.
        result = channel.invoke(alice, "kv", "put", ["after-adopt", "yes"])
        assert result.ok
        assert lagger.world.get("after-adopt") == b"yes"

    def test_adopt_rejects_tampered_snapshot(self):
        net, channel, alice = self.make_populated()
        source = next(iter(channel.peers.values()))
        snap = take_snapshot(source, channel.name)
        tampered = Snapshot(
            channel=snap.channel,
            height=snap.height,
            last_block_hash=snap.last_block_hash,
            entries=snap.entries[:-1],
            digest=snap.digest,
        )
        victim = Peer("victim", source.identity, net.msp_registry)
        with pytest.raises(LedgerError, match="digest mismatch"):
            adopt_snapshot(victim, tampered)

    def test_adopt_refuses_to_rewind_a_peer_past_the_snapshot(self):
        net, channel, alice = self.make_populated()
        peers = list(channel.peers.values())
        snap = take_snapshot(peers[0], channel.name)
        channel.invoke(alice, "kv", "put", ["newer", "v"])
        with pytest.raises(LedgerError, match="rewind"):
            adopt_snapshot(peers[0], snap)

    def test_mvcc_versions_survive_bootstrap(self):
        """Read-version checks must work against snapshot-loaded state."""
        net, channel, alice = self.make_populated()
        source = next(iter(channel.peers.values()))
        snap = take_snapshot(source, channel.name)
        fresh = Peer(
            "mvcc-check", source.identity, net.msp_registry,
            collections=channel.collections,
        )
        bootstrap_peer(fresh, snap)
        channel.join_peer(fresh)
        # increment reads key-0's version; it must match on both peers.
        channel.invoke(alice, "kv", "put", ["counter", "0"])
        result = channel.invoke(alice, "kv", "increment", ["counter"])
        assert result.ok
        out = json.loads(channel.query(alice, "kv", "get", ["counter"], peer="mvcc-check"))
        assert out["value"] == "1"
