"""Tests for the aggregation layer."""

import pytest

from repro.errors import QueryError
from repro.query import Avg, Count, Max, Metric, Min, Std, Sum, aggregate, explode, time_series

RECORDS = [
    {"entry_id": "1", "source_id": "cam-A",
     "metadata": {"timestamp": 100.0, "detections": [
         {"vehicle_class": "car", "confidence": 0.9},
         {"vehicle_class": "truck", "confidence": 0.8}]}},
    {"entry_id": "2", "source_id": "cam-A",
     "metadata": {"timestamp": 700.0, "detections": [
         {"vehicle_class": "car", "confidence": 0.7}]}},
    {"entry_id": "3", "source_id": "cam-B",
     "metadata": {"timestamp": 750.0, "detections": []}},
]


class TestMetrics:
    def test_count(self):
        assert Count().compute(RECORDS) == 3

    def test_avg_over_path(self):
        rows = explode(RECORDS, "metadata.detections")
        assert Avg("confidence").compute(rows) == pytest.approx(0.8)

    def test_min_max_sum_std(self):
        rows = explode(RECORDS, "metadata.detections")
        assert Min("confidence").compute(rows) == pytest.approx(0.7)
        assert Max("confidence").compute(rows) == pytest.approx(0.9)
        assert Sum("confidence").compute(rows) == pytest.approx(2.4)
        assert Std("confidence").compute(rows) > 0

    def test_missing_values_ignored(self):
        assert Avg("metadata.nothing").compute(RECORDS) == 0

    def test_invalid_metric_rejected(self):
        with pytest.raises(QueryError):
            Metric(name="x", kind="median")
        with pytest.raises(QueryError):
            Metric(name="x", kind="avg")  # no path


class TestExplode:
    def test_one_row_per_detection(self):
        rows = explode(RECORDS, "metadata.detections")
        assert len(rows) == 3
        assert {r["vehicle_class"] for r in rows} == {"car", "truck"}

    def test_parent_fields_preserved(self):
        rows = explode(RECORDS, "metadata.detections")
        assert all("source_id" in r for r in rows)

    def test_non_list_path_skipped(self):
        assert explode(RECORDS, "source_id") == []


class TestAggregate:
    def test_group_by_source(self):
        out = aggregate(RECORDS, [Count()], group_by="source_id")
        assert out["cam-A"]["count"] == 2
        assert out["cam-B"]["count"] == 1

    def test_single_group_default(self):
        out = aggregate(RECORDS, [Count()])
        assert out == {"all": {"count": 3}}

    def test_detections_per_class(self):
        rows = explode(RECORDS, "metadata.detections")
        out = aggregate(rows, [Count(), Avg("confidence")], group_by="vehicle_class")
        assert out["car"]["count"] == 2
        assert out["car"]["avg(confidence)"] == pytest.approx(0.8)
        assert out["truck"]["count"] == 1

    def test_requires_metric(self):
        with pytest.raises(QueryError):
            aggregate(RECORDS, [])

    def test_group_by_and_key_fn_exclusive(self):
        with pytest.raises(QueryError):
            aggregate(RECORDS, [Count()], group_by="x", key_fn=lambda r: 1)

    def test_custom_key_fn(self):
        out = aggregate(RECORDS, [Count()], key_fn=lambda r: len(r["metadata"]["detections"]))
        assert out[0]["count"] == 1
        assert out[1]["count"] == 1
        assert out[2]["count"] == 1


class TestTimeSeries:
    def test_buckets(self):
        out = time_series(RECORDS, [Count()], bucket_s=600.0)
        assert out[0.0]["count"] == 1
        assert out[600.0]["count"] == 2

    def test_missing_timestamps_dropped(self):
        records = RECORDS + [{"entry_id": "4", "metadata": {}}]
        out = time_series(records, [Count()], bucket_s=600.0)
        assert sum(v["count"] for v in out.values()) == 3

    def test_invalid_bucket_rejected(self):
        with pytest.raises(QueryError):
            time_series(RECORDS, [Count()], bucket_s=0)

    def test_end_to_end_with_query_engine(self):
        """Aggregate real on-chain records from a populated framework."""
        from repro.core import Client, Framework, FrameworkConfig
        from repro.trust import SourceTier

        framework = Framework(FrameworkConfig(consensus="solo"))
        cam = Client(framework, framework.register_source("agg-cam", tier=SourceTier.TRUSTED))
        for i in range(4):
            cam.submit(f"frame-{i}".encode(), {
                "timestamp": 300.0 * i,
                "detections": [{"vehicle_class": "car", "confidence": 0.8 + 0.01 * i}],
            })
        rows = [r.record for r in cam.query("source_id = 'agg-cam'")]
        series = time_series(rows, [Count()], bucket_s=600.0)
        assert sum(v["count"] for v in series.values()) == 4
        per_class = aggregate(
            explode(rows, "metadata.detections"),
            [Count(), Avg("confidence")],
            group_by="vehicle_class",
        )
        assert per_class["car"]["count"] == 4
