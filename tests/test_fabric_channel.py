"""Integration tests for the full execute-order-validate flow."""

import json

import pytest

from repro.errors import ChaincodeError, FabricError
from repro.fabric import AllOf, FabricNetwork, Role, ValidationCode
from repro.fabric.gossip import sync_peer

from tests.fabric_helpers import KvChaincode, make_network


class TestInvokeQuery:
    def test_invoke_commits_and_query_reads(self):
        net, channel, alice = make_network()
        result = channel.invoke(alice, "kv", "put", ["color", "red"])
        assert result.ok
        assert result.block_number == 0
        out = json.loads(channel.query(alice, "kv", "get", ["color"]))
        assert out["value"] == "red"

    def test_state_identical_on_all_peers(self):
        net, channel, alice = make_network(peers_per_org=2)
        channel.invoke(alice, "kv", "put", ["k", "v"])
        values = {p.world.get("k") for p in channel.peers.values()}
        assert values == {b"v"}

    def test_ledgers_identical_on_all_peers(self):
        net, channel, alice = make_network(peers_per_org=2)
        for i in range(3):
            channel.invoke(alice, "kv", "put", [f"k{i}", str(i)])
        hashes = {p.ledger.last_hash() for p in channel.peers.values()}
        assert len(hashes) == 1
        for p in channel.peers.values():
            p.ledger.verify_chain()

    def test_chaincode_failure_aborts_before_ordering(self):
        net, channel, alice = make_network()
        with pytest.raises(ChaincodeError, match="deliberate"):
            channel.invoke(alice, "kv", "boom", [])
        assert channel.height() == 0  # nothing was ordered

    def test_query_does_not_write(self):
        net, channel, alice = make_network()
        channel.invoke(alice, "kv", "put", ["k", "v"])
        height = channel.height()
        channel.query(alice, "kv", "get", ["k"])
        assert channel.height() == height

    def test_unregistered_identity_rejected(self):
        net, channel, _ = make_network()
        from repro.fabric import Identity

        mallory = Identity.create("mallory", "org1")  # never enrolled
        from repro.errors import IdentityError

        with pytest.raises(IdentityError):
            channel.invoke(mallory, "kv", "put", ["k", "v"])

    def test_whoami_sees_creator(self):
        net, channel, alice = make_network()
        out = json.loads(channel.query(alice, "kv", "whoami", []))
        assert out == {"name": "alice", "org": "org1", "role": "client"}

    def test_composite_key_flow(self):
        net, channel, alice = make_network()
        channel.invoke(alice, "kv", "put_indexed", ["fruit", "apple", "1"])
        channel.invoke(alice, "kv", "put_indexed", ["fruit", "banana", "2"])
        channel.invoke(alice, "kv", "put_indexed", ["veg", "carrot", "3"])
        rows = json.loads(channel.query(alice, "kv", "list_category", ["fruit"]))
        assert {r["item"] for r in rows} == {"apple", "banana"}

    def test_history_tracks_writes(self):
        net, channel, alice = make_network()
        channel.invoke(alice, "kv", "put", ["k", "v1"])
        channel.invoke(alice, "kv", "put", ["k", "v2"])
        channel.invoke(alice, "kv", "delete", ["k"])
        history = json.loads(channel.query(alice, "kv", "history", ["k"]))
        assert [h["value"] for h in history] == ["v1", "v2", None]

    def test_tx_result_lookup(self):
        net, channel, alice = make_network()
        result = channel.invoke(alice, "kv", "put", ["k", "v"])
        assert channel.result(result.tx_id) == result
        with pytest.raises(FabricError):
            channel.result("unknown")


class TestMVCC:
    def test_increment_sequence(self):
        net, channel, alice = make_network()
        for _ in range(5):
            channel.invoke(alice, "kv", "increment", ["counter"])
        out = json.loads(channel.query(alice, "kv", "get", ["counter"]))
        assert out["value"] == "5"

    def test_conflicting_concurrent_increments_one_wins(self):
        """Two txs endorsed against the same state: second gets MVCC conflict."""
        net, channel, alice = make_network(max_batch_size=2)
        tx1 = channel.invoke_async(alice, "kv", "increment", ["counter"])
        tx2 = channel.invoke_async(alice, "kv", "increment", ["counter"])
        channel.flush()
        codes = {channel.result(tx1).code, channel.result(tx2).code}
        assert codes == {ValidationCode.VALID, ValidationCode.MVCC_READ_CONFLICT}
        out = json.loads(channel.query(alice, "kv", "get", ["counter"]))
        assert out["value"] == "1"  # exactly one increment survived

    def test_non_conflicting_batch_all_valid(self):
        net, channel, alice = make_network(max_batch_size=3)
        ids = [
            channel.invoke_async(alice, "kv", "put", [f"k{i}", str(i)]) for i in range(3)
        ]
        channel.flush()
        assert all(channel.result(t).ok for t in ids)

    def test_blind_writes_do_not_conflict(self):
        """put() has no read set, so concurrent puts to one key both commit."""
        net, channel, alice = make_network(max_batch_size=2)
        tx1 = channel.invoke_async(alice, "kv", "put", ["k", "a"])
        tx2 = channel.invoke_async(alice, "kv", "put", ["k", "b"])
        channel.flush()
        assert channel.result(tx1).ok and channel.result(tx2).ok
        out = json.loads(channel.query(alice, "kv", "get", ["k"]))
        assert out["value"] == "b"  # later tx in the block wins


class TestEndorsementPolicies:
    def test_all_orgs_policy_satisfied(self):
        net = FabricNetwork()
        channel = net.create_channel("ch", orgs=["org1", "org2"])
        channel.install_chaincode(KvChaincode(), policy=AllOf("org1", "org2"))
        alice = net.register_identity("alice", "org1")
        result = channel.invoke(alice, "kv", "put", ["k", "v"])
        assert result.ok
        # Both orgs endorsed.
        _, tx, _ = list(channel.peers.values())[0].ledger.find_tx(result.tx_id)
        assert tx.endorsing_orgs() == {"org1", "org2"}

    def test_missing_org_endorsement_fails_policy(self):
        net = FabricNetwork()
        channel = net.create_channel("ch", orgs=["org1", "org2"])
        channel.install_chaincode(KvChaincode(), policy=AllOf("org1", "org2"))
        alice = net.register_identity("alice", "org1")
        # Force endorsement by org1 only: policy check must fail at commit.
        result = channel.invoke(alice, "kv", "put", ["k", "v"], endorsing_orgs=["org1"])
        assert result.code is ValidationCode.ENDORSEMENT_POLICY_FAILURE
        assert channel.query(alice, "kv", "whoami", [])  # channel still healthy
        assert list(channel.peers.values())[0].world.get("k") is None


class TestEvents:
    def test_chaincode_event_delivered(self):
        net, channel, alice = make_network()
        seen = []
        channel.events.subscribe_chaincode("kv", "Data*", lambda r: seen.append(r))
        channel.invoke(alice, "kv", "emit", ["DataStored"])
        assert len(seen) == 1
        assert seen[0].event.name == "DataStored"

    def test_pattern_filters_events(self):
        net, channel, alice = make_network()
        seen = []
        channel.events.subscribe_chaincode("kv", "Trust*", lambda r: seen.append(r))
        channel.invoke(alice, "kv", "emit", ["DataStored"])
        assert seen == []

    def test_block_events(self):
        net, channel, alice = make_network()
        blocks = []
        channel.events.subscribe_blocks(lambda e: blocks.append(e.block.number))
        channel.invoke(alice, "kv", "put", ["a", "1"])
        channel.invoke(alice, "kv", "put", ["b", "2"])
        assert blocks == [0, 1]


class TestGossip:
    def test_offline_peer_catches_up(self):
        net, channel, alice = make_network(peers_per_org=2)
        lagging = list(channel.peers.values())[-1]
        lagging.online = False
        for i in range(3):
            channel.invoke(alice, "kv", "put", [f"k{i}", str(i)])
        assert lagging.ledger.height == 0
        lagging.online = True
        copied = channel.anti_entropy()
        assert copied == 3
        assert lagging.ledger.height == 3
        assert lagging.world.get("k2") == b"2"

    def test_sync_detects_divergence(self):
        net, channel, alice = make_network(peers_per_org=2)
        channel.invoke(alice, "kv", "put", ["k", "v"])
        peers = list(channel.peers.values())
        # Corrupt one peer's world state to force disagreement on replay.
        behind, ahead = peers[0], peers[1]
        fresh_net, fresh_channel, _ = make_network()
        # A fresh peer with no chaincode installed can't validate the same way;
        # instead check honest sync path equality:
        assert behind.ledger.last_hash() == ahead.ledger.last_hash()


class TestBftOrderedChannel:
    def test_invoke_through_bft_consensus(self):
        net, channel, alice = make_network(consensus="bft")
        result = channel.invoke(alice, "kv", "put", ["k", "v"])
        assert result.ok
        out = json.loads(channel.query(alice, "kv", "get", ["k"]))
        assert out["value"] == "v"

    def test_bft_validators_exchange_messages(self):
        net, channel, alice = make_network(consensus="bft")
        channel.invoke(alice, "kv", "put", ["k", "v"])
        assert channel.orderer.consensus_messages > 0

    def test_forged_endorsement_rejected_by_consensus(self):
        """A transaction whose endorsement signature is corrupt is voted
        invalid by the BFT validators and lands flagged in the block."""
        from repro.fabric import Endorsement, Transaction

        net, channel, alice = make_network(consensus="bft")
        proposal, responses = channel.endorse(alice, "kv", "put", ["k", "v"])
        good = channel.assemble(proposal, responses)
        forged = Transaction(
            proposal=good.proposal,
            rwset=good.rwset,
            response=good.response,
            endorsements=tuple(
                Endorsement(endorser=e.endorser, signature=b"\x00" * 64)
                for e in good.endorsements
            ),
            events=good.events,
        )
        channel.orderer.submit(forged)
        channel.flush()
        result = channel.result(forged.tx_id)
        assert result.code is ValidationCode.REJECTED_BY_CONSENSUS
        assert list(channel.peers.values())[0].world.get("k") is None

    def test_byzantine_validator_tolerated(self):
        from repro.consensus import Behaviour

        net, channel, alice = make_network(
            consensus="bft",
            bft_behaviours={"validator-3": Behaviour.ALWAYS_INVALID},
        )
        result = channel.invoke(alice, "kv", "put", ["k", "v"])
        assert result.ok
