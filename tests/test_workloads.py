"""Tests for the workload generators."""

import pytest

from repro.workloads import DEFAULT_SIZES, IngestItem, ingest_stream, payload, payload_series


class TestFileSizes:
    def test_payload_exact_size(self):
        for size in (0, 1, 1000, 1 << 16):
            assert len(payload(size)) == size

    def test_payload_deterministic(self):
        assert payload(1024, seed=3) == payload(1024, seed=3)

    def test_payload_varies_by_seed_and_label(self):
        assert payload(64, seed=1) != payload(64, seed=2)
        assert payload(64, label="a") != payload(64, label="b")

    def test_payload_incompressible(self):
        import zlib

        data = payload(1 << 16)
        assert len(zlib.compress(data)) > 0.95 * len(data)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            payload(-1)

    def test_series_matches_grid(self):
        series = payload_series()
        assert [len(p) for p in series] == list(DEFAULT_SIZES)


class TestIngestStream:
    def test_shape(self):
        items = list(ingest_stream(n_videos=2, frames_per_video=3, seed=9))
        assert len(items) == 6
        assert all(isinstance(i, IngestItem) for i in items)
        assert len({i.source_id for i in items}) == 2

    def test_metadata_complete(self):
        item = next(iter(ingest_stream(n_videos=1, frames_per_video=1, seed=9)))
        assert "timestamp" in item.metadata
        assert "detections" in item.metadata
        assert item.metadata["data_hash"]
        assert item.observation.source_id == item.source_id

    def test_payload_is_frame_bytes(self):
        item = next(iter(ingest_stream(n_videos=1, frames_per_video=1, seed=9)))
        assert len(item.payload) == 192 * 108 * 3

    def test_deterministic(self):
        a = [i.payload for i in ingest_stream(n_videos=1, frames_per_video=2, seed=4)]
        b = [i.payload for i in ingest_stream(n_videos=1, frames_per_video=2, seed=4)]
        assert a == b

    def test_drone_stream(self):
        items = list(ingest_stream(n_videos=1, frames_per_video=2, seed=9, kind="drone"))
        assert all(i.metadata["source_kind"] == "drone" for i in items)
