"""Tests for trust scoring: historical reliability and combination."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trust import HistoricalReliability, TrustScore, TrustWeights
from repro.trust.crossval import endorsement_score


class TestHistoricalReliability:
    def test_prior_is_neutral(self):
        assert HistoricalReliability().score == pytest.approx(0.5)

    def test_accepts_raise_score(self):
        h = HistoricalReliability()
        for _ in range(20):
            h.record(True)
        assert h.score > 0.9

    def test_rejects_lower_score(self):
        h = HistoricalReliability()
        for _ in range(20):
            h.record(False)
        assert h.score < 0.1

    def test_decay_forgets_old_behaviour(self):
        """A reformed source recovers; with decay=1.0 it would stay low."""
        punished = HistoricalReliability(decay=0.9)
        unforgiving = HistoricalReliability(decay=1.0)
        for h in (punished, unforgiving):
            for _ in range(30):
                h.record(False)
            for _ in range(30):
                h.record(True)
        assert punished.score > unforgiving.score
        assert punished.score > 0.85

    def test_confidence_grows_with_evidence(self):
        h = HistoricalReliability()
        assert h.confidence == pytest.approx(0.0)
        for _ in range(10):
            h.record(True)
        assert 0.3 < h.confidence < 1.0

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            HistoricalReliability(decay=0.0)
        with pytest.raises(ValueError):
            HistoricalReliability(decay=1.5)

    @given(st.lists(st.booleans(), max_size=200))
    def test_property_score_bounded(self, outcomes):
        h = HistoricalReliability()
        for o in outcomes:
            h.record(o)
        assert 0.0 <= h.score <= 1.0

    @given(st.integers(min_value=1, max_value=50))
    def test_property_monotone_in_accepts(self, n):
        """More accepts (same rejects) never lowers the score."""
        a = HistoricalReliability()
        b = HistoricalReliability()
        for _ in range(n):
            a.record(True)
            b.record(True)
        b.record(True)
        assert b.score >= a.score


class TestTrustScore:
    def test_new_source_near_neutral(self):
        assert 0.4 <= TrustScore("s").value <= 0.6

    def test_consistent_good_source_converges_high(self):
        t = TrustScore("s")
        for _ in range(30):
            t.update(True, cross_validation=0.9, endorsement=0.9)
        assert t.value > 0.85

    def test_consistent_bad_source_converges_low(self):
        t = TrustScore("s")
        for _ in range(30):
            t.update(False, cross_validation=0.1, endorsement=0.1)
        assert t.value < 0.15

    def test_history_weight_scales_with_confidence(self):
        """Early on, cross-validation dominates; later, history does."""
        t = TrustScore("s")
        # One good cross-validated sample, then bad history with neutral cv.
        t.update(True, cross_validation=1.0, endorsement=0.5)
        early = t.value
        for _ in range(40):
            t.update(False, cross_validation=1.0, endorsement=0.5)
        late = t.value
        assert late < early  # accumulated bad history dragged it down

    def test_invalid_signal_ranges_rejected(self):
        t = TrustScore("s")
        with pytest.raises(ValueError):
            t.update(True, cross_validation=1.5)
        with pytest.raises(ValueError):
            t.update(True, endorsement=-0.1)

    def test_chain_record_shape(self):
        t = TrustScore("cam-1")
        t.update(True, cross_validation=0.8, endorsement=0.7)
        record = t.to_chain_record()
        assert record["source_id"] == "cam-1"
        assert 0.0 <= record["score"] <= 1.0
        assert record["observations"] == 1

    def test_custom_weights(self):
        heavy_cv = TrustScore("s", weights=TrustWeights(history=0.0, cross_validation=1.0, endorsement=0.0))
        heavy_cv.update(False, cross_validation=1.0, endorsement=0.0)
        assert heavy_cv.value == pytest.approx(1.0)

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            TrustWeights(history=-1.0)
        with pytest.raises(ValueError):
            TrustWeights(history=0.0, cross_validation=0.0, endorsement=0.0)

    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.floats(min_value=0, max_value=1),
                st.floats(min_value=0, max_value=1),
            ),
            max_size=50,
        )
    )
    def test_property_value_bounded(self, updates):
        t = TrustScore("s")
        for correct, cv, en in updates:
            t.update(correct, cross_validation=cv, endorsement=en)
        assert 0.0 <= t.value <= 1.0


class TestEndorsementScore:
    def test_unanimous_valid_high(self):
        assert endorsement_score(10, 0) > 0.9

    def test_unanimous_invalid_low(self):
        assert endorsement_score(0, 10) < 0.1

    def test_split_neutral(self):
        assert endorsement_score(5, 5) == pytest.approx(0.5)

    def test_laplace_smoothing_tempers_single_vote(self):
        assert endorsement_score(1, 0) == pytest.approx(2 / 3)

    def test_negative_votes_rejected(self):
        with pytest.raises(ValueError):
            endorsement_score(-1, 0)
