"""Regression tests for QueryEngine thread safety and error mapping.

The stats counters and the result cache are shared across the fetch pool
and any caller threads; every mutation must hold ``_stats_lock`` (the
locks sanitizer's SAN402 rule watches the cache through ``guard_shared``).
``fetch_payload_verified`` must map *every* malformed-record shape to a
typed :class:`~repro.errors.QueryError`, not leak parser internals.
"""

import threading
from types import SimpleNamespace

import pytest

from repro.analysis import lockcheck
from repro.analysis import runtime as analysis_runtime
from repro.core import Client, Framework, FrameworkConfig
from repro.errors import QueryError
from repro.query import QueryEngine
from repro.trust import SourceTier

META = {"timestamp": 1.0, "camera_id": "race-cam",
        "detections": [{"vehicle_class": "car", "confidence": 0.9}]}


@pytest.fixture(autouse=True)
def _reset_sanitizer_globals():
    yield
    lockcheck.deactivate()
    analysis_runtime._ACTIVE = None


class TestStatsRaces:
    def test_concurrent_runs_keep_exact_counters_and_pass_san402(self):
        """N threads x M queries: counters must be exact and the locks
        sanitizer must see no unguarded cache mutation."""
        framework = Framework(FrameworkConfig(consensus="solo", sanitize="locks"))
        client = Client(
            framework, framework.register_source("race-cam", tier=SourceTier.TRUSTED)
        )
        client.submit(b"row-1", dict(META))
        client.submit(b"row-2", dict(META))
        engine = client.engine
        n_threads, per_thread = 8, 12
        # A mix of repeated (cache-hitting) and distinct query texts, all
        # index-routable so execution stays on lock-free world-state reads.
        texts = ["source_id = 'race-cam'"] + [
            f"source_id = 'race-cam' AND metadata.timestamp >= {i}"
            for i in range(per_thread - 1)
        ]
        errors = []

        def worker():
            try:
                for text in texts:
                    engine.run(text)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # The racy pre-fix counters lost increments under contention; every
        # run() must be counted exactly once, hit or miss.
        assert engine.stats.queries == n_threads * per_thread
        assert engine.stats.cache_hits <= engine.stats.queries
        # Each distinct text was really executed at least once.
        assert engine.stats.queries - engine.stats.cache_hits >= len(texts)
        report = framework.sanitizer.finalize()
        assert not any(f.rule_id == "SAN402" for f in report.findings), (
            report.render()
        )

    def test_cache_is_guarded_under_lock_registry(self):
        """With the lock registry active the cache is a GuardedShared proxy;
        a bare mutation outside the guard is a SAN402 finding."""
        registry = lockcheck.LockRegistry()
        lockcheck.activate(registry)
        engine = QueryEngine(
            channel=SimpleNamespace(),
            cluster=SimpleNamespace(),
            identity=SimpleNamespace(),
        )
        assert isinstance(engine._cache, lockcheck.GuardedShared)
        engine._cache["rogue"] = (0, [])  # no lock held
        assert any(f.rule_id == "SAN402" for f in registry.findings())


class TestMalformedCid:
    def _engine(self):
        return QueryEngine(
            channel=SimpleNamespace(),
            cluster=SimpleNamespace(),
            identity=SimpleNamespace(),
        )

    def test_missing_cid_is_query_error(self):
        with pytest.raises(QueryError):
            self._engine().fetch_payload_verified({"entry_id": "e1"})

    def test_malformed_cid_is_query_error_not_parse_exception(self):
        engine = self._engine()
        for bad in ("not-a-cid", "", "zzz", 42, None):
            with pytest.raises(QueryError):
                engine.fetch_payload_verified({"entry_id": "e1", "cid": bad})
