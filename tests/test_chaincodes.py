"""Tests for the paper's chaincodes, run through a real channel."""

import json

import pytest

from repro.errors import ChaincodeError
from repro.chaincodes import (
    AdminEnrollmentChaincode,
    DataRetrievalChaincode,
    DataUploadChaincode,
    ProvenanceChaincode,
    TrustScoreChaincode,
    UserRegistrationChaincode,
)
from repro.fabric import FabricNetwork, Role


@pytest.fixture()
def env():
    net = FabricNetwork()
    channel = net.create_channel("traffic", orgs=["org1", "org2"])
    for cc in (
        AdminEnrollmentChaincode(),
        UserRegistrationChaincode(),
        DataUploadChaincode(),
        DataRetrievalChaincode(),
        ProvenanceChaincode(),
        TrustScoreChaincode(),
    ):
        channel.install_chaincode(cc)
    client = net.register_identity("client", "org1", role=Role.CLIENT)
    return net, channel, client


def q(channel, client, cc, fn, args):
    return json.loads(channel.query(client, cc, fn, args))


class TestAdminEnrollment:
    def test_enroll_and_get(self, env):
        _, channel, client = env
        result = channel.invoke(client, "admin_enrollment", "enroll_admin", ["admin-1"])
        assert result.ok
        admin = q(channel, client, "admin_enrollment", "get_admin", ["admin-1"])
        assert admin["role"] == "admin"
        assert admin["enrolled_by"] == "client"
        assert "created_at" in admin

    def test_duplicate_rejected(self, env):
        _, channel, client = env
        channel.invoke(client, "admin_enrollment", "enroll_admin", ["admin-1"])
        with pytest.raises(ChaincodeError, match="already exists"):
            channel.invoke(client, "admin_enrollment", "enroll_admin", ["admin-1"])

    def test_exists(self, env):
        _, channel, client = env
        assert not q(channel, client, "admin_enrollment", "admin_exists", ["a"])
        channel.invoke(client, "admin_enrollment", "enroll_admin", ["a"])
        assert q(channel, client, "admin_enrollment", "admin_exists", ["a"])

    def test_revoke_requires_acting_admin(self, env):
        _, channel, client = env
        channel.invoke(client, "admin_enrollment", "enroll_admin", ["a"])
        with pytest.raises(ChaincodeError, match="not an admin"):
            channel.invoke(client, "admin_enrollment", "revoke_admin", ["a", "stranger"])

    def test_revoke_not_self(self, env):
        _, channel, client = env
        channel.invoke(client, "admin_enrollment", "enroll_admin", ["a"])
        with pytest.raises(ChaincodeError, match="cannot revoke themselves"):
            channel.invoke(client, "admin_enrollment", "revoke_admin", ["a", "a"])

    def test_revoke_flow(self, env):
        _, channel, client = env
        channel.invoke(client, "admin_enrollment", "enroll_admin", ["a"])
        channel.invoke(client, "admin_enrollment", "enroll_admin", ["b"])
        channel.invoke(client, "admin_enrollment", "revoke_admin", ["b", "a"])
        assert not q(channel, client, "admin_enrollment", "admin_exists", ["b"])
        admins = q(channel, client, "admin_enrollment", "list_admins", [])
        assert [a["admin_id"] for a in admins] == ["a"]

    def test_empty_id_rejected(self, env):
        _, channel, client = env
        with pytest.raises(ChaincodeError):
            channel.invoke(client, "admin_enrollment", "enroll_admin", [""])


class TestUserRegistration:
    KEY = "ab" * 32

    def test_register_and_get(self, env):
        _, channel, client = env
        channel.invoke(
            client, "user_registration", "register_user",
            ["cam-1", "city", "trusted", self.KEY],
        )
        user = q(channel, client, "user_registration", "get_user", ["cam-1"])
        assert user["tier"] == "trusted"
        assert user["active"] is True

    def test_duplicate_rejected(self, env):
        _, channel, client = env
        channel.invoke(client, "user_registration", "register_user", ["u", "o", "untrusted", self.KEY])
        with pytest.raises(ChaincodeError, match="already registered"):
            channel.invoke(client, "user_registration", "register_user", ["u", "o", "untrusted", self.KEY])

    def test_bad_tier_rejected(self, env):
        _, channel, client = env
        with pytest.raises(ChaincodeError, match="tier"):
            channel.invoke(client, "user_registration", "register_user", ["u", "o", "vip", self.KEY])

    def test_bad_key_rejected(self, env):
        _, channel, client = env
        with pytest.raises(ChaincodeError, match="public key"):
            channel.invoke(client, "user_registration", "register_user", ["u", "o", "trusted", "short"])

    def test_deactivate(self, env):
        _, channel, client = env
        channel.invoke(client, "user_registration", "register_user", ["u", "o", "untrusted", self.KEY])
        assert q(channel, client, "user_registration", "is_active", ["u"])
        channel.invoke(client, "user_registration", "deactivate_user", ["u"])
        assert not q(channel, client, "user_registration", "is_active", ["u"])

    def test_list_by_tier(self, env):
        _, channel, client = env
        channel.invoke(client, "user_registration", "register_user", ["cam", "o", "trusted", self.KEY])
        channel.invoke(client, "user_registration", "register_user", ["mob", "o", "untrusted", self.KEY])
        trusted = q(channel, client, "user_registration", "list_users", ["trusted"])
        assert [u["user_id"] for u in trusted] == ["cam"]
        everyone = q(channel, client, "user_registration", "list_users", [""])
        assert len(everyone) == 2


META = {
    "source_id": "cam-7",
    "camera_id": "cam-7",
    "timestamp": 1000.0,
    "location": {"lat": 12.97, "lon": 77.59},
    "detections": [
        {"vehicle_class": "car", "confidence": 0.93},
        {"vehicle_class": "truck", "confidence": 0.88},
    ],
}


def upload(channel, client, cid="bafyfake", data_hash="0" * 64, meta=None):
    result = channel.invoke(
        client, "data_upload", "add_data",
        [cid, data_hash, json.dumps(meta or META)],
    )
    return json.loads(result.response)["entry_id"]


class TestDataUploadRetrieval:
    def test_upload_and_get(self, env):
        _, channel, client = env
        entry_id = upload(channel, client)
        record = q(channel, client, "data_retrieval", "get_data", [entry_id])
        assert record["cid"] == "bafyfake"
        assert record["metadata"]["camera_id"] == "cam-7"
        assert record["source_id"] == "cam-7"

    def test_get_cid(self, env):
        _, channel, client = env
        entry_id = upload(channel, client, cid="bafyXYZ")
        assert q(channel, client, "data_retrieval", "get_cid", [entry_id]) == "bafyXYZ"

    def test_missing_entry_raises_paper_message(self, env):
        _, channel, client = env
        with pytest.raises(ChaincodeError, match="No metadata found for transaction ID"):
            channel.query(client, "data_retrieval", "get_data", ["ghost"])

    def test_invalid_metadata_rejected(self, env):
        _, channel, client = env
        with pytest.raises(ChaincodeError, match="not valid JSON"):
            channel.invoke(client, "data_upload", "add_data", ["cid", "0" * 64, "{bad"])
        with pytest.raises(ChaincodeError, match="JSON object"):
            channel.invoke(client, "data_upload", "add_data", ["cid", "0" * 64, "[1]"])

    def test_bad_hash_rejected(self, env):
        _, channel, client = env
        with pytest.raises(ChaincodeError, match="sha-256"):
            channel.invoke(client, "data_upload", "add_data", ["cid", "zz", "{}"])

    def test_list_by_source(self, env):
        _, channel, client = env
        upload(channel, client)
        other = dict(META, source_id="mobile-3", camera_id="")
        upload(channel, client, meta=other)
        records = q(channel, client, "data_retrieval", "list_by_source", ["cam-7"])
        assert len(records) == 1
        assert records[0]["source_id"] == "cam-7"

    def test_list_by_camera(self, env):
        _, channel, client = env
        upload(channel, client)
        records = q(channel, client, "data_retrieval", "list_by_camera", ["cam-7"])
        assert len(records) == 1

    def test_list_by_vehicle_class(self, env):
        _, channel, client = env
        upload(channel, client)
        no_truck = dict(META, detections=[{"vehicle_class": "car", "confidence": 0.9}])
        upload(channel, client, meta=no_truck)
        trucks = q(channel, client, "data_retrieval", "list_by_vehicle_class", ["truck"])
        cars = q(channel, client, "data_retrieval", "list_by_vehicle_class", ["car"])
        assert len(trucks) == 1
        assert len(cars) == 2

    def test_list_by_time_range(self, env):
        _, channel, client = env
        upload(channel, client, meta=dict(META, timestamp=100.0))
        upload(channel, client, meta=dict(META, timestamp=5000.0))
        upload(channel, client, meta=dict(META, timestamp=90000.0))
        hits = q(channel, client, "data_retrieval", "list_by_time_range", ["0", "6000"])
        assert sorted(r["metadata"]["timestamp"] for r in hits) == [100.0, 5000.0]

    def test_time_range_validation(self, env):
        _, channel, client = env
        with pytest.raises(ChaincodeError, match="end before start"):
            channel.query(client, "data_retrieval", "list_by_time_range", ["100", "0"])


class TestProvenance:
    def test_record_and_lineage(self, env):
        _, channel, client = env
        for action in ("captured", "validated", "stored"):
            channel.invoke(
                client, "provenance", "record", ["entry-1", action, "cam-7", "{}"]
            )
        chain = q(channel, client, "provenance", "lineage", ["entry-1"])
        assert [e["action"] for e in chain] == ["captured", "validated", "stored"]
        assert [e["seq"] for e in chain] == [0, 1, 2]

    def test_chain_links(self, env):
        _, channel, client = env
        channel.invoke(client, "provenance", "record", ["e", "captured", "a", "{}"])
        channel.invoke(client, "provenance", "record", ["e", "stored", "a", "{}"])
        chain = q(channel, client, "provenance", "lineage", ["e"])
        assert chain[0]["prev_hash"] == "0" * 64
        assert chain[1]["prev_hash"] == chain[0]["entry_hash"]

    def test_verify_ok(self, env):
        _, channel, client = env
        for action in ("captured", "validated", "stored", "accessed"):
            channel.invoke(client, "provenance", "record", ["e", action, "a", "{}"])
        result = q(channel, client, "provenance", "verify", ["e"])
        assert result["length"] == 4

    def test_verify_empty_rejected(self, env):
        _, channel, client = env
        with pytest.raises(ChaincodeError, match="no provenance"):
            channel.query(client, "provenance", "verify", ["nothing"])

    def test_lineages_are_isolated(self, env):
        _, channel, client = env
        channel.invoke(client, "provenance", "record", ["e1", "captured", "a", "{}"])
        channel.invoke(client, "provenance", "record", ["e2", "captured", "b", "{}"])
        assert len(q(channel, client, "provenance", "lineage", ["e1"])) == 1

    def test_details_payload(self, env):
        _, channel, client = env
        channel.invoke(
            client, "provenance", "record",
            ["e", "validated", "bft", json.dumps({"votes": 4})],
        )
        chain = q(channel, client, "provenance", "lineage", ["e"])
        assert chain[0]["details"] == {"votes": 4}


class TestTrustScoreChaincode:
    def test_put_get(self, env):
        _, channel, client = env
        channel.invoke(
            client, "trust_score", "put_score",
            ["mob-1", json.dumps({"score": 0.7, "tier": "untrusted"})],
        )
        record = q(channel, client, "trust_score", "get_score", ["mob-1"])
        assert record["score"] == 0.7
        assert record["source_id"] == "mob-1"

    def test_score_validation(self, env):
        _, channel, client = env
        with pytest.raises(ChaincodeError, match="in \\[0, 1\\]"):
            channel.invoke(client, "trust_score", "put_score", ["s", json.dumps({"score": 1.5})])
        with pytest.raises(ChaincodeError, match="'score' field"):
            channel.invoke(client, "trust_score", "put_score", ["s", json.dumps({})])

    def test_history_trajectory(self, env):
        _, channel, client = env
        for score in (0.5, 0.6, 0.72):
            channel.invoke(client, "trust_score", "put_score", ["s", json.dumps({"score": score})])
        history = q(channel, client, "trust_score", "score_history", ["s"])
        assert [h["score"] for h in history] == [0.5, 0.6, 0.72]

    def test_validator_flag_and_remove(self, env):
        _, channel, client = env
        channel.invoke(client, "trust_score", "flag_validator", ["v3", "endorsed invalid tx"])
        channel.invoke(client, "trust_score", "flag_validator", ["v3", "again"])
        record = q(channel, client, "trust_score", "get_validator", ["v3"])
        assert record["flags"] == 2
        channel.invoke(client, "trust_score", "remove_validator", ["v3", "repeated misbehaviour"])
        record = q(channel, client, "trust_score", "get_validator", ["v3"])
        assert record["removed"] is True

    def test_list_scores(self, env):
        _, channel, client = env
        channel.invoke(client, "trust_score", "put_score", ["a", json.dumps({"score": 0.2})])
        channel.invoke(client, "trust_score", "put_score", ["b", json.dumps({"score": 0.9})])
        scores = q(channel, client, "trust_score", "list_scores", [])
        assert {s["source_id"] for s in scores} == {"a", "b"}
