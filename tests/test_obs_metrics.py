"""Prometheus exposition conformance tests for the metrics layer."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry
from repro.obs.export import metrics_json, render_prometheus
from repro.obs.metrics import Histogram, labelset, render_labels


class TestLabels:
    def test_labelset_is_sorted_and_stringified(self):
        assert labelset({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))
        assert labelset(None) == ()
        assert labelset({}) == ()

    def test_label_order_does_not_split_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"a": 1, "b": 2}).inc()
        reg.counter("hits", labels={"b": 2, "a": 1}).inc()
        assert reg.snapshot()["counters"]['hits{a="1",b="2"}'] == 2

    def test_render_labels_escapes_quotes_and_backslashes(self):
        rendered = render_labels(labelset({"msg": 'say "hi"\\now'}))
        assert rendered == '{msg="say \\"hi\\"\\\\now"}'


class TestLabelEscaping:
    """Exposition-format escaping: ``\\`` -> ``\\\\``, ``"`` -> ``\\"``,
    newline -> ``\\n`` — and backslash must be escaped *first*, or the
    escapes introduced for quotes/newlines get double-escaped."""

    def test_each_special_character(self):
        from repro.obs.metrics import escape_label_value

        assert escape_label_value("back\\slash") == "back\\\\slash"
        assert escape_label_value('qu"ote') == 'qu\\"ote'
        assert escape_label_value("new\nline") == "new\\nline"
        assert escape_label_value("plain") == "plain"

    def test_backslash_escaped_before_other_escapes(self):
        from repro.obs.metrics import escape_label_value

        # A literal backslash-n must stay distinguishable from a newline.
        assert escape_label_value("a\\nb") == "a\\\\nb"
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_trailing_backslash_cannot_eat_the_closing_quote(self):
        rendered = render_labels(labelset({"path": "C:\\"}))
        assert rendered == '{path="C:\\\\"}'

    def test_hostile_values_round_trip_through_exposition(self):
        reg = MetricsRegistry()
        hostile = 'peer\\1 "quoted"\nnext'
        reg.counter("evil_total", labels={"peer": hostile}).inc()
        text = render_prometheus(reg)
        (line,) = [l for l in text.splitlines() if "evil_total{" in l]
        assert "\n" not in line  # one line per sample, always
        assert line.endswith('{peer="peer\\\\1 \\"quoted\\"\\nnext"} 1.0')

    def test_export_reexports_the_escaper(self):
        from repro.obs.export import escape_label_value as from_export
        from repro.obs.metrics import escape_label_value as from_metrics

        assert from_export is from_metrics


class TestExpositionFormat:
    def _registry(self):
        reg = MetricsRegistry(prefix="t")
        reg.counter("txs_total", labels={"code": "valid"}).inc(3)
        reg.counter("txs_total", labels={"code": "bad_sig"}).inc()
        reg.gauge("height").set(7)
        hist = reg.histogram("lat_seconds", (0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(v)
        return reg

    def test_one_type_line_per_family(self):
        text = self._registry().render()
        assert text.count("# TYPE t_txs_total counter") == 1
        assert text.count("# TYPE t_height gauge") == 1
        assert text.count("# TYPE t_lat_seconds histogram") == 1

    def test_type_line_precedes_its_samples(self):
        lines = self._registry().render().splitlines()
        type_idx = lines.index("# TYPE t_txs_total counter")
        sample_idxs = [i for i, l in enumerate(lines) if l.startswith("t_txs_total{")]
        assert sample_idxs and all(i > type_idx for i in sample_idxs)

    def test_labeled_counter_series(self):
        text = self._registry().render()
        assert 't_txs_total{code="valid"} 3.0' in text
        assert 't_txs_total{code="bad_sig"} 1.0' in text

    def test_histogram_buckets_are_cumulative(self):
        text = self._registry().render()
        assert 't_lat_seconds_bucket{le="0.1"} 1' in text
        assert 't_lat_seconds_bucket{le="1.0"} 3' in text
        assert 't_lat_seconds_bucket{le="10.0"} 4' in text

    def test_histogram_inf_bucket_equals_count(self):
        text = self._registry().render()
        assert 't_lat_seconds_bucket{le="+Inf"} 5' in text
        assert "t_lat_seconds_count 5" in text

    def test_histogram_sum(self):
        text = self._registry().render()
        assert f"t_lat_seconds_sum {0.05 + 0.5 + 0.5 + 5.0 + 50.0}" in text

    def test_render_ends_with_newline(self):
        assert self._registry().render().endswith("\n")

    def test_render_prometheus_helper_uses_given_registry(self):
        reg = self._registry()
        assert render_prometheus(reg) == reg.render()


class TestRegistryBehaviour:
    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("x").inc(-1)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram(name="bad", buckets=(2.0, 1.0))

    def test_same_name_same_labels_is_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a", labels={"x": 1}) is reg.counter("a", labels={"x": 1})
        assert reg.counter("a", labels={"x": 1}) is not reg.counter("a", labels={"x": 2})

    def test_clear_empties_registry(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.clear()
        assert reg.render() == "\n"
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}

    def test_metrics_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("ops", labels={"kind": "read"}).inc(2)
        reg.histogram("lat", (1.0,)).observe(0.5)
        snap = json.loads(metrics_json(reg))
        assert snap["counters"]['ops{kind="read"}'] == 2
        assert snap["histograms"]["lat"]["n"] == 1


class TestHistogramQuantiles:
    def _hist(self, buckets=(1.0, 2.0, 4.0, 8.0)):
        return Histogram(name="q", buckets=buckets)

    def test_empty_histogram_quantile_is_zero(self):
        assert self._hist().quantile(0.5) == 0.0

    def test_out_of_range_q_rejected(self):
        hist = self._hist()
        for q in (-0.1, 1.1):
            with pytest.raises(ObservabilityError):
                hist.quantile(q)

    def test_quantiles_are_monotone_in_q(self):
        hist = self._hist()
        for v in (0.2, 0.9, 1.5, 3.0, 3.5, 7.0, 7.5):
            hist.observe(v)
        qs = [hist.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)]
        assert qs == sorted(qs)

    def test_overflow_clamps_to_highest_finite_bound(self):
        hist = self._hist()
        for v in (100.0, 200.0, 300.0):
            hist.observe(v)
        assert hist.quantile(0.5) == 8.0
        assert hist.quantile(0.99) == 8.0

    def test_quantile_vs_brute_force_oracle(self):
        """Bucket interpolation must land within one bucket width of the
        exact percentile, for a few hundred deterministic samples."""
        import math
        import random

        rng = random.Random(42)
        buckets = tuple(0.25 * i for i in range(1, 41))  # 0.25 .. 10.0
        hist = Histogram(name="oracle", buckets=buckets)
        samples = [rng.uniform(0.0, 10.0) for _ in range(500)]
        for v in samples:
            hist.observe(v)
        ordered = sorted(samples)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99):
            exact = ordered[min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1)]
            estimate = hist.quantile(q)
            # The estimate can never be off by more than the width of the
            # bucket the target rank falls in.
            assert abs(estimate - exact) <= 0.25 + 1e-9, (q, estimate, exact)

    def test_snapshot_and_exposition_carry_quantiles(self):
        reg = MetricsRegistry(prefix="t")
        hist = reg.histogram("lat_seconds", (0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            hist.observe(v)
        snap = reg.snapshot()["histograms"]["lat_seconds"]
        for key in ("p50", "p95", "p99"):
            assert key in snap
        assert snap["p50"] == hist.quantile(0.5)
        text = reg.render()
        assert 't_lat_seconds{quantile="0.5"}' in text
        assert 't_lat_seconds{quantile="0.95"}' in text
        assert 't_lat_seconds{quantile="0.99"}' in text
