"""Prometheus exposition conformance tests for the metrics layer."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry
from repro.obs.export import metrics_json, render_prometheus
from repro.obs.metrics import Histogram, labelset, render_labels


class TestLabels:
    def test_labelset_is_sorted_and_stringified(self):
        assert labelset({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))
        assert labelset(None) == ()
        assert labelset({}) == ()

    def test_label_order_does_not_split_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"a": 1, "b": 2}).inc()
        reg.counter("hits", labels={"b": 2, "a": 1}).inc()
        assert reg.snapshot()["counters"]['hits{a="1",b="2"}'] == 2

    def test_render_labels_escapes_quotes_and_backslashes(self):
        rendered = render_labels(labelset({"msg": 'say "hi"\\now'}))
        assert rendered == '{msg="say \\"hi\\"\\\\now"}'


class TestExpositionFormat:
    def _registry(self):
        reg = MetricsRegistry(prefix="t")
        reg.counter("txs_total", labels={"code": "valid"}).inc(3)
        reg.counter("txs_total", labels={"code": "bad_sig"}).inc()
        reg.gauge("height").set(7)
        hist = reg.histogram("lat_seconds", (0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(v)
        return reg

    def test_one_type_line_per_family(self):
        text = self._registry().render()
        assert text.count("# TYPE t_txs_total counter") == 1
        assert text.count("# TYPE t_height gauge") == 1
        assert text.count("# TYPE t_lat_seconds histogram") == 1

    def test_type_line_precedes_its_samples(self):
        lines = self._registry().render().splitlines()
        type_idx = lines.index("# TYPE t_txs_total counter")
        sample_idxs = [i for i, l in enumerate(lines) if l.startswith("t_txs_total{")]
        assert sample_idxs and all(i > type_idx for i in sample_idxs)

    def test_labeled_counter_series(self):
        text = self._registry().render()
        assert 't_txs_total{code="valid"} 3.0' in text
        assert 't_txs_total{code="bad_sig"} 1.0' in text

    def test_histogram_buckets_are_cumulative(self):
        text = self._registry().render()
        assert 't_lat_seconds_bucket{le="0.1"} 1' in text
        assert 't_lat_seconds_bucket{le="1.0"} 3' in text
        assert 't_lat_seconds_bucket{le="10.0"} 4' in text

    def test_histogram_inf_bucket_equals_count(self):
        text = self._registry().render()
        assert 't_lat_seconds_bucket{le="+Inf"} 5' in text
        assert "t_lat_seconds_count 5" in text

    def test_histogram_sum(self):
        text = self._registry().render()
        assert f"t_lat_seconds_sum {0.05 + 0.5 + 0.5 + 5.0 + 50.0}" in text

    def test_render_ends_with_newline(self):
        assert self._registry().render().endswith("\n")

    def test_render_prometheus_helper_uses_given_registry(self):
        reg = self._registry()
        assert render_prometheus(reg) == reg.render()


class TestRegistryBehaviour:
    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("x").inc(-1)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram(name="bad", buckets=(2.0, 1.0))

    def test_same_name_same_labels_is_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a", labels={"x": 1}) is reg.counter("a", labels={"x": 1})
        assert reg.counter("a", labels={"x": 1}) is not reg.counter("a", labels={"x": 2})

    def test_clear_empties_registry(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.clear()
        assert reg.render() == "\n"
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}

    def test_metrics_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("ops", labels={"kind": "read"}).inc(2)
        reg.histogram("lat", (1.0,)).observe(0.5)
        snap = json.loads(metrics_json(reg))
        assert snap["counters"]['ops{kind="read"}'] == 2
        assert snap["histograms"]["lat"]["n"] == 1
