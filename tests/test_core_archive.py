"""Tests for signed evidence bundles (export/import across deployments)."""

import pytest

from repro.core import Client, Framework, FrameworkConfig
from repro.core.archive import export_bundle, import_bundle
from repro.crypto.cid import CID
from repro.errors import IntegrityError, SignatureError, StorageError
from repro.ipfs.blockstore import MemoryBlockstore
from repro.ipfs.unixfs import UnixFS
from repro.trust import SourceTier


@pytest.fixture(scope="module")
def exporting_env():
    framework = Framework(FrameworkConfig(consensus="solo", chunk_size=4096))
    client = Client(
        framework, framework.register_source("export-cam", tier=SourceTier.TRUSTED)
    )
    payloads = {}
    for i in range(3):
        data = f"evidence-frame-{i}".encode() * 200
        receipt = client.submit(
            data,
            {"timestamp": 100.0 * i, "camera_id": "export-cam",
             "detections": [{"vehicle_class": "truck", "confidence": 0.9}]},
        )
        payloads[receipt.entry_id] = data
    return framework, client, payloads


class TestExportImport:
    def test_roundtrip(self, exporting_env):
        _, client, payloads = exporting_env
        raw = export_bundle(client, "source_id = 'export-cam'")
        bundle, store = import_bundle(raw)
        assert len(bundle.entries) == 3
        fs = UnixFS(store)
        for entry in bundle.entries:
            assert fs.read_file(entry.cid) == payloads[entry.entry_id]

    def test_provenance_travels(self, exporting_env):
        _, client, _ = exporting_env
        raw = export_bundle(client, "source_id = 'export-cam'")
        bundle, _ = import_bundle(raw)
        for entry in bundle.entries:
            actions = [e["action"] for e in entry.provenance]
            assert actions[:2] == ["captured", "stored"]
            # Hash chain intact in transit.
            assert entry.provenance[1]["prev_hash"] == entry.provenance[0]["entry_hash"]

    def test_exporter_identity_verified(self, exporting_env):
        _, client, _ = exporting_env
        raw = export_bundle(client, "source_id = 'export-cam'")
        bundle, _ = import_bundle(raw, expected_exporter=client.identity.keypair.public)
        assert bundle.exporter["name"] == "export-cam"

    def test_wrong_expected_exporter_rejected(self, exporting_env):
        from repro.crypto.keys import KeyPair

        _, client, _ = exporting_env
        raw = export_bundle(client, "source_id = 'export-cam'")
        with pytest.raises(SignatureError, match="not the expected"):
            import_bundle(raw, expected_exporter=KeyPair.from_seed("stranger").public)

    def test_tampered_manifest_rejected(self, exporting_env):
        _, client, _ = exporting_env
        raw = bytearray(export_bundle(client, "source_id = 'export-cam'"))
        # Flip a byte inside the manifest region (skip the varint prefix).
        idx = raw.index(b"export-cam"[0:1], 5)
        raw[idx + 3] ^= 0x01
        with pytest.raises((SignatureError, Exception)):
            import_bundle(bytes(raw))

    def test_tampered_car_rejected(self, exporting_env):
        _, client, _ = exporting_env
        raw = bytearray(export_bundle(client, "source_id = 'export-cam'"))
        raw[-10] ^= 0xFF  # inside the CAR payload
        with pytest.raises(IntegrityError, match="CAR does not match"):
            import_bundle(bytes(raw))

    def test_empty_query_rejected(self, exporting_env):
        _, client, _ = exporting_env
        with pytest.raises(StorageError, match="matched nothing"):
            export_bundle(client, "source_id = 'nonexistent'")

    def test_selective_export(self, exporting_env):
        _, client, _ = exporting_env
        raw = export_bundle(
            client, "source_id = 'export-cam' AND metadata.timestamp >= 150 "
                    "AND metadata.timestamp <= 250"
        )
        bundle, _ = import_bundle(raw)
        assert len(bundle.entries) == 1
        assert bundle.entries[0].record["metadata"]["timestamp"] == 200.0

    def test_import_into_other_cluster_node(self, exporting_env):
        """The receiving jurisdiction serves imported data from its own IPFS."""
        _, client, payloads = exporting_env
        raw = export_bundle(client, "source_id = 'export-cam'")
        receiver = Framework(FrameworkConfig(consensus="solo", n_ipfs_nodes=2))
        target = receiver.ipfs.node("ipfs-0")
        bundle, _ = import_bundle(raw, blockstore=target.blockstore)
        for entry in bundle.entries:
            target.pin(entry.cid)
            receiver.ipfs.dht.provide("ipfs-0", entry.cid)
            assert receiver.ipfs.cat(entry.cid, node="ipfs-1") == payloads[entry.entry_id]
