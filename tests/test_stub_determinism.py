"""Endorsement determinism: the same proposal, simulated twice against the
same world state, must produce byte-identical read/write sets — the property
the DET1xx lint rules and the divergence sanitizer (SAN301) both protect.
Exercised over the real application chaincodes (data / provenance / trust)."""

import hashlib
import json

import pytest

from repro.chaincodes import (
    DataUploadChaincode,
    ProvenanceChaincode,
    TrustScoreChaincode,
)
from repro.fabric import FabricNetwork, Role
from repro.util.serialization import canonical_json

PAYLOAD_HASH = hashlib.sha256(b"frame-bytes").hexdigest()

METADATA = json.dumps(
    {
        "source_id": "cam-7",
        "camera_id": "cam-7",
        "timestamp": 1700000000.0,
        "detections": [{"vehicle_class": "car"}],
        "violations": [{"violation_type": "speeding"}],
    }
)

CASES = [
    ("data_upload", "add_data", ["bafy-demo-cid", PAYLOAD_HASH, METADATA]),
    ("provenance", "record", ["entry-1", "stored", "cam-7", "{}"]),
    ("trust_score", "put_score", ["cam-7", json.dumps({"score": 0.75})]),
]


@pytest.fixture()
def channel_and_client():
    net = FabricNetwork()
    channel = net.create_channel(
        "traffic", orgs=["org1", "org2"], peers_per_org=1, consensus="solo"
    )
    for chaincode in (DataUploadChaincode(), ProvenanceChaincode(), TrustScoreChaincode()):
        channel.install_chaincode(chaincode)
    client = net.register_identity("alice", "org1", role=Role.CLIENT)
    return channel, client


def rwset_bytes(rwset) -> bytes:
    return canonical_json(rwset.to_dict())


@pytest.mark.parametrize("chaincode,fn,args", CASES, ids=[c[0] for c in CASES])
class TestRepeatedSimulation:
    def test_two_simulations_are_byte_identical(self, channel_and_client, chaincode, fn, args):
        channel, client = channel_and_client
        proposal, responses = channel.endorse(client, chaincode, fn, args)
        peer = next(iter(channel.peers.values()))
        first = peer.resimulate(proposal)
        second = peer.resimulate(proposal)
        assert rwset_bytes(first[0]) == rwset_bytes(second[0])
        assert first[0].digest() == second[0].digest()
        assert first[1] == second[1]  # response strings too
        assert first[2] and second[2]

    def test_resimulation_matches_the_endorsed_rwset(
        self, channel_and_client, chaincode, fn, args
    ):
        channel, client = channel_and_client
        proposal, responses = channel.endorse(client, chaincode, fn, args)
        peer = next(iter(channel.peers.values()))
        resim_rwset, resim_response, ok = peer.resimulate(proposal)
        assert ok
        assert resim_rwset.digest() == responses[0].rwset.digest()
        assert rwset_bytes(resim_rwset) == rwset_bytes(responses[0].rwset)
        assert resim_response == responses[0].response


class TestCrossPeerAgreement:
    @pytest.mark.parametrize("chaincode,fn,args", CASES, ids=[c[0] for c in CASES])
    def test_all_endorsers_agree_byte_for_byte(self, channel_and_client, chaincode, fn, args):
        channel, client = channel_and_client
        _, responses = channel.endorse(client, chaincode, fn, args)
        assert len(responses) >= 2
        digests = {r.rwset.digest() for r in responses}
        blobs = {rwset_bytes(r.rwset) for r in responses}
        assert len(digests) == 1 and len(blobs) == 1
