"""Shared helpers for fabric tests: a simple KV chaincode and network setup."""

from __future__ import annotations

import json

from repro.errors import ChaincodeError
from repro.fabric import Chaincode, ChaincodeStub, FabricNetwork, Role


class KvChaincode(Chaincode):
    """Minimal chaincode exercising the whole stub API."""

    name = "kv"

    def put(self, stub: ChaincodeStub, key: str, value: str):
        stub.put_state(key, value.encode())
        return {"key": key}

    def get(self, stub: ChaincodeStub, key: str):
        value = stub.get_state(key)
        if value is None:
            raise ChaincodeError(f"key {key!r} not found")
        return {"key": key, "value": value.decode()}

    def delete(self, stub: ChaincodeStub, key: str):
        stub.del_state(key)
        return {"deleted": key}

    def increment(self, stub: ChaincodeStub, key: str):
        """Read-modify-write: the MVCC conflict generator."""
        raw = stub.get_state(key)
        current = int(raw.decode()) if raw is not None else 0
        stub.put_state(key, str(current + 1).encode())
        return {"key": key, "value": current + 1}

    def put_indexed(self, stub: ChaincodeStub, category: str, item: str, value: str):
        key = stub.create_composite_key("cat", [category, item])
        stub.put_state(key, value.encode())
        return {"key": "composite"}

    def list_category(self, stub: ChaincodeStub, category: str):
        rows = stub.get_state_by_partial_composite_key("cat", [category])
        out = []
        for key, value in rows:
            _, attrs = stub.split_composite_key(key)
            out.append({"item": attrs[1], "value": value.decode()})
        return out

    def history(self, stub: ChaincodeStub, key: str):
        return [
            {"tx_id": e.tx_id, "value": e.value.decode() if e.value else None}
            for e in stub.get_history_for_key(key)
        ]

    def emit(self, stub: ChaincodeStub, name: str):
        stub.set_event(name, {"from": stub.get_creator().name})
        return {"emitted": name}

    def whoami(self, stub: ChaincodeStub):
        creator = stub.get_creator()
        return {"name": creator.name, "org": creator.org, "role": creator.role.value}

    def boom(self, stub: ChaincodeStub):
        raise ChaincodeError("deliberate failure")

    def call_other(self, stub: ChaincodeStub, chaincode: str, key: str, value: str):
        nested = stub.invoke_chaincode(chaincode, "put", [key, value])
        return {"nested": json.loads(nested)}


def make_network(consensus="solo", orgs=("org1", "org2"), peers_per_org=1, **kwargs):
    """One channel, the paper's shape: two orgs, one peer each, one orderer."""
    net = FabricNetwork()
    channel = net.create_channel(
        "traffic", orgs=list(orgs), peers_per_org=peers_per_org, consensus=consensus, **kwargs
    )
    channel.install_chaincode(KvChaincode())
    client = net.register_identity("alice", "org1", role=Role.CLIENT)
    return net, channel, client
