"""Tests for the Kademlia-style DHT."""

import pytest

from repro.crypto.cid import CID
from repro.ipfs.dht import (
    DhtRegistry,
    RoutingTable,
    bucket_index,
    key_for_cid,
    key_for_peer,
    xor_distance,
)


def build_swarm(n, replication=20):
    reg = DhtRegistry(replication=replication)
    bootstrap = None
    for i in range(n):
        reg.join(f"peer-{i}", bootstrap=bootstrap)
        if bootstrap is None:
            bootstrap = "peer-0"
    return reg


class TestKeySpace:
    def test_peer_keys_stable(self):
        assert key_for_peer("a") == key_for_peer("a")

    def test_peer_and_cid_keys_domain_separated(self):
        # Even equal strings hash differently as peer vs cid inputs.
        cid = CID.for_data(b"x")
        assert key_for_peer(cid.encode()) != key_for_cid(cid)

    def test_xor_distance_symmetric(self):
        a, b = key_for_peer("a"), key_for_peer("b")
        assert xor_distance(a, b) == xor_distance(b, a)
        assert xor_distance(a, a) == 0

    def test_bucket_index_range(self):
        a, b = key_for_peer("a"), key_for_peer("b")
        assert 0 <= bucket_index(a, b) <= 255

    def test_bucket_index_self_rejected(self):
        a = key_for_peer("a")
        with pytest.raises(ValueError):
            bucket_index(a, a)


class TestRoutingTable:
    def test_add_and_closest(self):
        table = RoutingTable(own_key=key_for_peer("me"))
        for i in range(50):
            table.add(f"peer-{i}")
        target = key_for_peer("target")
        closest = table.closest(target, 5)
        assert len(closest) == 5
        # Result must actually be the closest among known peers.
        all_sorted = sorted(
            table.peers(), key=lambda p: xor_distance(key_for_peer(p), target)
        )
        assert closest == all_sorted[:5]

    def test_ignores_self(self):
        table = RoutingTable(own_key=key_for_peer("me"))
        table.add("me")
        assert len(table) == 0

    def test_bucket_capacity_evicts_lru(self):
        table = RoutingTable(own_key=key_for_peer("me"), bucket_size=2)
        # Force many peers; no bucket may exceed its size.
        for i in range(200):
            table.add(f"peer-{i}")
        assert all(len(b) <= 2 for b in table._buckets.values())

    def test_re_adding_moves_to_tail(self):
        table = RoutingTable(own_key=key_for_peer("me"), bucket_size=3)
        table.add("a")
        table.add("a")  # no duplicate
        assert table.peers().count("a") == 1

    def test_remove(self):
        table = RoutingTable(own_key=key_for_peer("me"))
        table.add("a")
        table.remove("a")
        assert "a" not in table.peers()


class TestDhtRegistry:
    def test_join_duplicate_rejected(self):
        reg = build_swarm(2)
        with pytest.raises(ValueError):
            reg.join("peer-0")

    def test_provide_and_find(self):
        reg = build_swarm(10)
        cid = CID.for_data(b"content")
        reg.provide("peer-3", cid)
        assert "peer-3" in reg.find_providers("peer-7", cid)

    def test_find_without_providers_empty(self):
        reg = build_swarm(5)
        assert reg.find_providers("peer-1", CID.for_data(b"unknown")) == set()

    def test_multiple_providers_all_found(self):
        reg = build_swarm(12)
        cid = CID.for_data(b"popular")
        for p in ("peer-2", "peer-5", "peer-9"):
            reg.provide(p, cid)
        found = reg.find_providers("peer-0", cid)
        assert {"peer-2", "peer-5", "peer-9"} <= found

    def test_records_survive_unrelated_churn(self):
        reg = build_swarm(20)
        cid = CID.for_data(b"durable")
        reg.provide("peer-1", cid)
        # Removing one non-provider peer must not erase all replicas.
        reg.leave("peer-15")
        assert "peer-1" in reg.find_providers("peer-2", cid)

    def test_departed_provider_filtered(self):
        reg = build_swarm(10)
        cid = CID.for_data(b"gone")
        reg.provide("peer-4", cid)
        reg.leave("peer-4")
        assert "peer-4" not in reg.find_providers("peer-0", cid)

    def test_replication_count(self):
        reg = build_swarm(30, replication=5)
        replicas = reg.provide("peer-0", CID.for_data(b"replicated"))
        assert replicas == 5

    def test_single_node_swarm(self):
        reg = build_swarm(1)
        cid = CID.for_data(b"solo")
        reg.provide("peer-0", cid)
        assert reg.find_providers("peer-0", cid) == {"peer-0"}

    def test_lookup_cost_scales_sublinearly(self):
        """Routing should not query every peer in a large swarm."""
        reg = build_swarm(100, replication=8)
        cid = CID.for_data(b"needle")
        reg.provide("peer-50", cid)
        before = reg.lookup_hops
        reg.find_providers("peer-99", cid)
        assert reg.lookup_hops - before < 60  # far fewer than n=100 queried
