"""Tests for the figure-regeneration harness (small parameterizations)."""

import numpy as np
import pytest

from repro.bench import (
    Timing,
    fig2_sample_record,
    fig3_confidence,
    fig4_extraction_scatter,
    fig5_storage_times,
    fig6_retrieval_times,
    format_table,
    human_size,
    measure,
)


class TestTimer:
    def test_measure_collects_samples(self):
        timing = measure(lambda: sum(range(1000)), repeat=3, warmup=1)
        assert len(timing.samples) == 3
        assert timing.mean > 0
        assert timing.minimum <= timing.median <= timing.mean + timing.std + 1e-9

    def test_invalid_repeat(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeat=0)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], ["xx", 0.0001]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "1.000e-04" in text  # small floats in scientific notation

    def test_human_size(self):
        assert human_size(512) == "512 B"
        assert human_size(8 << 10) == "8 KiB"
        assert human_size(4 << 20) == "4 MiB"


class TestFigureFunctions:
    def test_fig2_record_schema(self):
        record = fig2_sample_record(seed=3)
        assert {"camera_id", "timestamp", "location", "detections", "counts",
                "data_hash"} <= set(record)

    def test_fig3_shape_small(self):
        series = fig3_confidence(n_videos=4, frames_per_video=2, seed=3)
        assert series["static"].mean > series["drone"].mean

    def test_fig3_night_series_present(self):
        series = fig3_confidence(n_videos=2, frames_per_video=2, seed=3, include_night=True)
        assert set(series) == {"static", "drone", "static-night", "drone-night"}
        assert series["static-night"].mean < series["static"].mean

    def test_fig4_points(self):
        points = fig4_extraction_scatter(n_frames=9, seed=3)
        assert len(points) == 9
        assert all(size > 0 and t >= 0 for size, t in points)

    def test_fig5_linear_shape_small(self):
        timings = fig5_storage_times(sizes=(1 << 10, 64 << 10, 512 << 10), repeats=2)
        sizes = np.array([t.size for t in timings], dtype=float)
        ipfs = np.array([t.ipfs_only_s for t in timings])
        assert float(np.corrcoef(sizes, ipfs)[0, 1]) > 0.8
        assert all(t.with_blockchain_s > t.ipfs_only_s for t in timings)

    def test_fig6_reads_cheaper_than_writes(self):
        store = fig5_storage_times(sizes=(64 << 10,), repeats=2)[0]
        read = fig6_retrieval_times(sizes=(64 << 10,), repeats=2)[0]
        # Reads skip consensus entirely: full read path beats full write path.
        assert read.with_blockchain_s < store.with_blockchain_s
