"""Unit and property tests for unsigned LEB128 varints."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.util.varint import MAX_VARINT_BYTES, decode_varint, encode_varint


class TestEncode:
    def test_zero_is_single_zero_byte(self):
        assert encode_varint(0) == b"\x00"

    def test_small_values_single_byte(self):
        assert encode_varint(1) == b"\x01"
        assert encode_varint(127) == b"\x7f"

    def test_128_needs_two_bytes(self):
        assert encode_varint(128) == b"\x80\x01"

    def test_known_multiformats_vectors(self):
        # Vectors from the unsigned-varint spec.
        assert encode_varint(255) == b"\xff\x01"
        assert encode_varint(300) == b"\xac\x02"
        assert encode_varint(16384) == b"\x80\x80\x01"

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            encode_varint(-1)

    def test_over_nine_bytes_rejected(self):
        with pytest.raises(EncodingError):
            encode_varint(1 << 63)

    def test_largest_encodable(self):
        value = (1 << 63) - 1
        assert len(encode_varint(value)) == MAX_VARINT_BYTES


class TestDecode:
    def test_decode_returns_value_and_offset(self):
        assert decode_varint(b"\xac\x02") == (300, 2)

    def test_decode_with_offset(self):
        data = b"\xff\xac\x02\xff"
        value, pos = decode_varint(data, offset=1)
        assert (value, pos) == (300, 3)

    def test_truncated_raises(self):
        with pytest.raises(EncodingError):
            decode_varint(b"\x80")

    def test_empty_raises(self):
        with pytest.raises(EncodingError):
            decode_varint(b"")

    def test_overlong_raises(self):
        with pytest.raises(EncodingError):
            decode_varint(b"\x80" * 10 + b"\x01")


@given(st.integers(min_value=0, max_value=(1 << 63) - 1))
def test_roundtrip(value):
    encoded = encode_varint(value)
    decoded, pos = decode_varint(encoded)
    assert decoded == value
    assert pos == len(encoded)


@given(st.integers(min_value=0, max_value=(1 << 63) - 1),
       st.integers(min_value=0, max_value=(1 << 63) - 1))
def test_concatenated_varints_decode_in_sequence(a, b):
    data = encode_varint(a) + encode_varint(b)
    va, pos = decode_varint(data)
    vb, end = decode_varint(data, pos)
    assert (va, vb, end) == (a, b, len(data))


@given(st.integers(min_value=0, max_value=(1 << 63) - 1))
def test_encoding_is_minimal_length(value):
    # LEB128 minimal length is ceil(bit_length / 7), with 1 byte for zero.
    expected = max(1, -(-value.bit_length() // 7))
    assert len(encode_varint(value)) == expected
