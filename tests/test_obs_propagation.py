"""Cross-node trace-context propagation through the simulated network.

``SimNetwork.send`` stamps the sender's :class:`SpanContext` onto each
message; ``SimNetwork._deliver`` opens a ``net.deliver`` span with that
context as *remote parent*, so per-node span trees join into one causal
DAG per transaction. These tests pin the propagation semantics — including
under chaos (drops, duplicates) and ring-buffer eviction, where the causal
graph must degrade without orphaning or crashing the tree walks.
"""

import pytest

from repro import obs
from repro.net import ConstantLatency, FaultAction, NetNode, SimNetwork
from repro.obs.span import SpanContext


@pytest.fixture(autouse=True)
def _no_global_tracer_leak():
    yield
    obs.disable()


class Recorder(NetNode):
    """Opens a handler span per delivery, like fabric/consensus nodes do."""

    def __init__(self, name, network):
        super().__init__(name, network)
        self.received = []

    def on_message(self, msg):
        self.received.append(msg)
        with obs.span("handler.work", attrs={"node": self.name}):
            pass


def make_net():
    net = SimNetwork(latency=ConstantLatency(base=0.01))
    a = Recorder("a", net)
    b = Recorder("b", net)
    return net, a, b


class TestRemoteParent:
    def test_remote_parent_joins_senders_trace(self):
        with obs.enabled() as tracer:
            ctx = SpanContext(trace_id="t-1", span_id="s-1")
            with tracer.span("delivery", remote_parent=ctx):
                pass
        (sp,) = tracer.spans("delivery")
        assert sp.trace_id == "t-1"
        assert sp.parent_id == "s-1"
        assert sp.remote is True

    def test_remote_parent_keeps_exec_context_separately(self):
        with obs.enabled() as tracer:
            ctx = SpanContext(trace_id="t-1", span_id="s-1")
            with tracer.span("frame") as frame:
                with tracer.span("delivery", remote_parent=ctx):
                    pass
        (sp,) = tracer.spans("delivery")
        assert sp.parent_id == "s-1"  # causal: the sender
        assert sp.exec_parent_id == frame.span_id  # exec: the running frame
        # The two views expose the same span through different edges.
        assert sp in tracer.children(frame, view="exec")
        assert sp not in tracer.children(frame, view="causal")

    def test_ordinary_span_has_matching_causal_and_exec_parent(self):
        with obs.enabled() as tracer:
            with tracer.span("outer") as outer:
                with tracer.span("inner"):
                    pass
        (inner,) = tracer.spans("inner")
        assert inner.parent_id == inner.exec_parent_id == outer.span_id
        assert inner.remote is False

    def test_context_headers_round_trip(self):
        ctx = SpanContext(trace_id="t", span_id="s")
        assert SpanContext.from_headers(ctx.to_headers()) == ctx
        assert SpanContext.from_headers(None) is None
        assert SpanContext.from_headers({"trace_id": "t"}) is None


class TestSimnetPropagation:
    def test_delivery_span_parents_to_sender_span(self):
        net, a, b = make_net()
        with obs.enabled() as tracer:
            with tracer.span("client.op") as op:
                a.send("b", "x", kind="ping")
            net.run()
        (deliver,) = tracer.spans("net.deliver")
        assert deliver.parent_id == op.span_id
        assert deliver.trace_id == op.trace_id
        assert deliver.remote is True
        assert deliver.attrs == {"src": "a", "node": "b", "kind": "ping"}
        # The handler's own span nests under the delivery, same trace.
        (work,) = tracer.spans("handler.work")
        assert work.parent_id == deliver.span_id
        assert work.trace_id == op.trace_id

    def test_multi_hop_chains_stay_in_one_trace(self):
        """a -> b -> a: the second hop's delivery parents to b's handler."""

        class Relay(Recorder):
            def on_message(self, msg):
                super().on_message(msg)
                if msg.payload == "fwd":
                    self.send(msg.src, "ack", kind="reply")

        net = SimNetwork(latency=ConstantLatency(base=0.01))
        a, b = Relay("a", net), Relay("b", net)
        with obs.enabled() as tracer:
            with tracer.span("client.op") as op:
                a.send("b", "fwd", kind="req")
            net.run()
        assert {s.trace_id for s in tracer.finished} == {op.trace_id}
        hops = tracer.spans("net.deliver")
        assert [h.attrs["kind"] for h in hops] == ["req", "reply"]
        # Second hop's causal parent lives inside the first hop's subtree.
        first_subtree = {hops[0].span_id}
        first_subtree.update(s.span_id for s in tracer.descendants(hops[0]))
        assert hops[1].parent_id in first_subtree

    def test_send_outside_any_span_starts_a_fresh_trace(self):
        net, a, b = make_net()
        with obs.enabled() as tracer:
            a.send("b", "x", kind="ping")
            net.run()
        (deliver,) = tracer.spans("net.deliver")
        assert deliver.parent_id is None
        assert deliver.remote is False
        assert deliver in tracer.roots()

    def test_tracing_disabled_leaves_messages_unstamped(self):
        net, a, b = make_net()
        a.send("b", "x")
        net.run()
        assert b.received[0].trace_ctx is None


class TestChaosPropagation:
    def test_dropped_message_leaves_no_orphan_spans(self):
        net, a, b = make_net()
        net.fault_injector = lambda m: FaultAction(drop=True)
        with obs.enabled() as tracer:
            with tracer.span("client.op") as op:
                a.send("b", "x")
            net.run()
        assert net.stats.dropped_chaos == 1
        assert tracer.spans("net.deliver") == []
        # The only trace is the sender's; no parentless stragglers appear.
        assert {s.trace_id for s in tracer.finished} == {op.trace_id}
        assert tracer.roots() == [op]

    def test_duplicated_message_yields_two_deliveries_one_parent(self):
        net, a, b = make_net()
        net.fault_injector = lambda m: FaultAction(duplicate=True)
        with obs.enabled() as tracer:
            with tracer.span("client.op") as op:
                a.send("b", "x")
            net.run()
        deliveries = tracer.spans("net.deliver")
        assert len(deliveries) == len(b.received) == 2
        assert {d.parent_id for d in deliveries} == {op.span_id}
        assert {d.trace_id for d in deliveries} == {op.trace_id}
        assert tracer.children(op) == deliveries

    def test_spans_dropped_total_counts_ring_evictions_exactly(self):
        reg = obs.MetricsRegistry()
        net, a, b = make_net()
        with obs.enabled(registry=reg, max_spans=3) as tracer:
            with tracer.span("client.op"):
                for _ in range(4):
                    a.send("b", "x")
            net.run()
        # 4 deliveries + 4 handler spans + 1 client span finished; ring
        # keeps 3, so exactly finished-3 were evicted and counted.
        assert len(tracer.finished) == 3
        assert tracer.dropped == 9 - 3
        assert reg.counter("spans_dropped_total").value == tracer.dropped


class TestEvictionConsistency:
    def test_parent_evicted_before_remote_child_finishes(self):
        """The sender span can be evicted (tiny ring) while its remote
        child is still in flight; the child must keep its causal parent_id
        and every tree walk must stay consistent, never crash."""
        net, a, b = make_net()
        with obs.enabled(max_spans=2) as tracer:
            with tracer.span("client.op") as op:
                a.send("b", "x")
                # Churn the ring until the sender's slot is gone.
                for _ in range(4):
                    with tracer.span("filler"):
                        pass
            net.run()  # delivery runs after `op` was evicted
        assert op not in tracer.finished
        (deliver,) = tracer.spans("net.deliver")
        assert deliver.parent_id == op.span_id  # causal link survives
        assert deliver.trace_id == op.trace_id
        # Walks over the retained window don't crash and stay O(retained).
        for root in tracer.roots():
            tracer.descendants(root)
        tracer.tree()
        tracer.tree_lines()

    def test_eviction_keeps_indexes_consistent(self):
        with obs.enabled(max_spans=4) as tracer:
            for _ in range(6):
                with tracer.span("outer"):
                    with tracer.span("inner"):
                        pass
        assert len(tracer.finished) == 4
        assert tracer.dropped == 12 - 4
        retained = set(tracer.finished)
        assert set(tracer.roots()) <= retained
        indexed = {
            s.span_id
            for bucket in tracer._children_ix.values()
            for s in bucket.values()
        } | {s.span_id for s in tracer._roots_ix.values()}
        assert indexed == {s.span_id for s in tracer.finished}

    def test_clear_resets_indexes(self):
        with obs.enabled() as tracer:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
            tracer.clear()
        assert tracer.finished == type(tracer.finished)()
        assert tracer.roots() == []
        assert tracer._children_ix == {}
        assert tracer._exec_ix == {}
