"""Tests for admitting a new organization to a running channel."""

import json

import pytest

from repro.fabric import FabricNetwork
from repro.fabric.snapshot import states_agree

from tests.fabric_helpers import KvChaincode, make_network


class TestOrgAddition:
    def test_new_org_peer_catches_up_with_history(self):
        net, channel, alice = make_network()
        for i in range(4):
            channel.invoke(alice, "kv", "put", [f"k{i}", str(i)])
        joined = net.add_org_to_channel("traffic", "org3")
        assert len(joined) == 1
        new_peer = joined[0]
        assert new_peer.ledger.height == channel.height()
        assert new_peer.world.get("k2") == b"2"
        assert states_agree(new_peer, list(channel.peers.values())[0])

    def test_new_org_endorsement_rejected_until_policy_updated(self):
        """Faithful Fabric semantics: admitting an org does not silently
        widen existing endorsement policies."""
        net, channel, alice = make_network()
        channel.invoke(alice, "kv", "put", ["pre", "x"])
        net.add_org_to_channel("traffic", "org3")
        from repro.fabric import ValidationCode

        result = channel.invoke(alice, "kv", "put", ["post", "y"], endorsing_orgs=["org3"])
        assert result.code is ValidationCode.ENDORSEMENT_POLICY_FAILURE

    def test_new_org_can_endorse_after_policy_update(self):
        net, channel, alice = make_network()
        net.add_org_to_channel("traffic", "org3")
        from repro.fabric import AnyOf

        channel.update_chaincode_policy("kv", AnyOf("org1", "org2", "org3"))
        result = channel.invoke(alice, "kv", "put", ["post", "y"], endorsing_orgs=["org3"])
        assert result.ok
        _, tx, _ = list(channel.peers.values())[0].ledger.find_tx(result.tx_id)
        assert tx.endorsing_orgs() == {"org3"}

    def test_policy_update_unknown_chaincode_rejected(self):
        net, channel, _ = make_network()
        from repro.errors import FabricError
        from repro.fabric import AnyOf

        with pytest.raises(FabricError):
            channel.update_chaincode_policy("nope", AnyOf("org1"))

    def test_new_org_commits_future_blocks(self):
        net, channel, alice = make_network()
        joined = net.add_org_to_channel("traffic", "org3", peers=2)
        channel.invoke(alice, "kv", "put", ["after-join", "v"])
        for peer in joined:
            assert peer.world.get("after-join") == b"v"

    def test_new_org_clients_can_transact(self):
        net, channel, alice = make_network()
        net.add_org_to_channel("traffic", "org3")
        from repro.fabric import Role

        newcomer = net.register_identity("carol", "org3", Role.CLIENT)
        result = channel.invoke(newcomer, "kv", "put", ["carols-key", "1"])
        assert result.ok
        out = json.loads(channel.query(newcomer, "kv", "whoami", []))
        assert out["org"] == "org3"

    def test_existing_org_reuse_allowed(self):
        net, channel, alice = make_network()
        joined = net.add_org_to_channel("traffic", "org1")  # extra org1 peer
        assert joined[0].org == "org1"
        assert joined[0].ledger.height == channel.height()

    def test_unknown_channel_rejected(self):
        net = FabricNetwork()
        from repro.errors import FabricError

        with pytest.raises(FabricError):
            net.add_org_to_channel("ghost", "org1")
