"""Tests for IPNS-style mutable naming."""

import pytest

from repro.crypto.cid import CID
from repro.crypto.keys import KeyPair
from repro.errors import SignatureError, StorageError
from repro.ipfs.naming import IpnsRecord, NameRegistry, make_record, name_for_key


def cid_of(data: bytes) -> CID:
    return CID.for_data(data)


class TestRecords:
    def test_make_and_verify(self):
        kp = KeyPair.from_seed("publisher")
        record = make_record(kp, cid_of(b"v1"), seq=1)
        record.verify()  # must not raise
        assert record.name == name_for_key(kp.public)

    def test_tampered_cid_rejected(self):
        kp = KeyPair.from_seed("publisher")
        record = make_record(kp, cid_of(b"v1"), seq=1)
        forged = IpnsRecord(
            name=record.name, cid=cid_of(b"evil").encode(), seq=record.seq,
            valid_from=record.valid_from, valid_until=record.valid_until,
            public_key_hex=record.public_key_hex, signature=record.signature,
        )
        with pytest.raises(SignatureError):
            forged.verify()

    def test_wrong_key_cannot_claim_name(self):
        owner = KeyPair.from_seed("owner")
        thief = KeyPair.from_seed("thief")
        record = make_record(thief, cid_of(b"v1"), seq=1)
        forged = IpnsRecord(
            name=name_for_key(owner.public),  # claims someone else's name
            cid=record.cid, seq=record.seq,
            valid_from=record.valid_from, valid_until=record.valid_until,
            public_key_hex=record.public_key_hex, signature=record.signature,
        )
        with pytest.raises(SignatureError, match="does not own"):
            forged.verify()

    def test_invalid_cid_rejected_early(self):
        with pytest.raises(Exception):
            make_record(KeyPair.from_seed("p"), "not-a-cid", seq=1)


class TestNameRegistry:
    def test_publish_resolve(self):
        kp = KeyPair.from_seed("city")
        registry = NameRegistry()
        target = cid_of(b"manifest-v1")
        registry.publish(make_record(kp, target, seq=1))
        assert registry.resolve(name_for_key(kp.public)) == target

    def test_update_supersedes(self):
        kp = KeyPair.from_seed("city")
        registry = NameRegistry()
        registry.publish(make_record(kp, cid_of(b"v1"), seq=1))
        registry.publish(make_record(kp, cid_of(b"v2"), seq=2))
        assert registry.resolve(name_for_key(kp.public)) == cid_of(b"v2")

    def test_replay_of_old_record_rejected(self):
        kp = KeyPair.from_seed("city")
        registry = NameRegistry()
        old = make_record(kp, cid_of(b"v1"), seq=1)
        registry.publish(make_record(kp, cid_of(b"v2"), seq=2))
        with pytest.raises(StorageError, match="stale"):
            registry.publish(old)

    def test_unknown_name(self):
        with pytest.raises(StorageError, match="unknown name"):
            NameRegistry().resolve("k51doesnotexist")

    def test_validity_window_enforced(self):
        kp = KeyPair.from_seed("city")
        registry = NameRegistry()
        registry.publish(make_record(kp, cid_of(b"v1"), seq=1, valid_from=100.0, lifetime_s=50.0))
        name = name_for_key(kp.public)
        assert registry.resolve(name, now=120.0) == cid_of(b"v1")
        with pytest.raises(StorageError, match="validity"):
            registry.resolve(name, now=200.0)
        with pytest.raises(StorageError, match="validity"):
            registry.resolve(name, now=50.0)

    def test_independent_names_coexist(self):
        registry = NameRegistry()
        a, b = KeyPair.from_seed("a"), KeyPair.from_seed("b")
        registry.publish(make_record(a, cid_of(b"a-data"), seq=1))
        registry.publish(make_record(b, cid_of(b"b-data"), seq=1))
        assert len(registry.names()) == 2
        assert registry.resolve(name_for_key(a.public)) == cid_of(b"a-data")

    def test_end_to_end_latest_pointer(self):
        """The framework use case: 'latest dataset export' pointer."""
        from repro.ipfs import IpfsCluster

        cluster = IpfsCluster(n_nodes=2)
        registry = NameRegistry()
        kp = KeyPair.from_seed("trust-registry")
        seq = 0
        for version in (b"export-v1" * 100, b"export-v2" * 100):
            seq += 1
            result = cluster.add(version)
            registry.publish(make_record(kp, result.cid, seq=seq))
        latest = registry.resolve(name_for_key(kp.public))
        assert cluster.cat(latest) == b"export-v2" * 100
