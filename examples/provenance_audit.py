#!/usr/bin/env python
"""Provenance and tamper detection: the framework's integrity guarantees.

Demonstrates every integrity mechanism the paper claims, by attacking each:

1. hash-chained provenance per data entry (verify, then show a break),
2. content addressing — serving different bytes under a stored CID fails,
3. on-chain data-hash verification at retrieval,
4. the ledger's block hash chain detecting history rewrites,
5. Byzantine validators voting a forged endorsement out (2/3 rule).

Run:  python examples/provenance_audit.py
"""

import hashlib
import json

from repro.core import Client, Framework, FrameworkConfig
from repro.errors import IntegrityError, LedgerError
from repro.trust import SourceTier


def main() -> None:
    framework = Framework(FrameworkConfig(consensus="bft"))
    client = Client(framework, framework.register_source("audit-cam", tier=SourceTier.TRUSTED))

    print("== Building an audit trail ==")
    receipt = client.submit(
        b"evidence-frame: junction collision 14:02",
        {"timestamp": 50520.0, "camera_id": "audit-cam",
         "detections": [{"vehicle_class": "car", "confidence": 0.97}]},
    )
    client.retrieve(receipt.entry_id)   # analyst pulls the evidence
    client.retrieve(receipt.entry_id)   # and again during review
    lineage = client.provenance(receipt.entry_id)
    print(f"  entry {receipt.entry_id[:12]}… has {len(lineage)} provenance events:")
    for event in lineage:
        print(f"    {event['seq']}: {event['action']:<9} prev={event['prev_hash'][:8]}… "
              f"hash={event['entry_hash'][:8]}…")
    print(f"  verify: {client.verify_provenance(receipt.entry_id)}")

    print("\n== Attack 1: tampered provenance entry ==")
    from repro.chaincodes.provenance import _entry_hash

    forged = dict(lineage[1])
    forged["actor"] = "someone-else"
    recomputed = _entry_hash(forged)
    print(f"  stored hash    : {lineage[1]['entry_hash'][:16]}…")
    print(f"  hash of forgery: {recomputed[:16]}…")
    print(f"  detected: {recomputed != lineage[1]['entry_hash']}")

    print("\n== Attack 2: wrong bytes under the stored data hash ==")
    record = dict(client.get_metadata(receipt.entry_id))
    record["data_hash"] = hashlib.sha256(b"doctored evidence").hexdigest()
    try:
        client.engine.fetch_payload(record)
        print("  NOT detected — bug!")
    except IntegrityError as exc:
        print(f"  detected: {exc}")

    print("\n== Attack 3: rewriting ledger history ==")
    peer = next(iter(framework.channel.peers.values()))
    block0 = peer.ledger.block(0)
    from repro.fabric.ledger import Block

    peer.ledger._blocks[0] = Block(header=block0.header, transactions=())
    try:
        peer.ledger.verify_chain()
        print("  NOT detected — bug!")
    except LedgerError as exc:
        print(f"  detected: {exc}")
    peer.ledger._blocks[0] = block0  # restore for the rest of the demo
    peer.ledger.verify_chain()
    print("  history restored; chain verifies again")

    print("\n== Attack 4: forged endorsement through BFT ordering ==")
    from repro.fabric import Endorsement, Transaction, ValidationCode

    proposal, responses = framework.channel.endorse(
        client.identity, "data_upload", "add_data",
        ["bafyforged", "0" * 64, json.dumps({"timestamp": 1.0})],
    )
    good = framework.channel.assemble(proposal, responses)
    forged_tx = Transaction(
        proposal=good.proposal,
        rwset=good.rwset,
        response=good.response,
        endorsements=tuple(
            Endorsement(endorser=e.endorser, signature=b"\x11" * 64)
            for e in good.endorsements
        ),
    )
    framework.channel.orderer.submit(forged_tx)
    framework.channel.flush()
    outcome = framework.channel.result(forged_tx.tx_id)
    votes = framework.consensus_votes(forged_tx.tx_id)
    print(f"  validator votes: {votes}")
    print(f"  outcome: {outcome.code.value} "
          f"(expected {ValidationCode.REJECTED_BY_CONSENSUS.value})")

    print("\n== Final audit ==")
    for name, peer in framework.channel.peers.items():
        peer.ledger.verify_chain()
        print(f"  {name}: height {peer.ledger.height}, hash chain OK")


if __name__ == "__main__":
    main()
