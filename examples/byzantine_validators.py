#!/usr/bin/env python
"""Byzantine validators: the 2/3 consensus rule under attack.

The paper claims "the BFT mechanism allows the network to tolerate up to
one-third of malicious validators" and that misbehaving validators "are
flagged and removed from the validator pool". This example drives a
7-validator network (f=2) through escalating attacks and shows:

1. honest operation — unanimous validation,
2. one corrupt validator endorsing garbage — outvoted, then flagged and
   removed by the accountability pool,
3. two corrupt validators (= f) — still safe,
4. three corrupt validators (> f) — acceptance integrity breaks, exactly
   at the bound the paper states.

Run:  python examples/byzantine_validators.py
"""

from repro.consensus import Behaviour, BftCluster
from repro.net import ConstantLatency, SimNetwork
from repro.trust import ValidatorPool

N = 7  # f = 2


def run_cluster(behaviours, n_requests=6, validator=None):
    cluster = BftCluster(
        n_replicas=N,
        network=SimNetwork(latency=ConstantLatency(base=0.001)),
        behaviours=behaviours,
        validator=validator or (lambda name, req: req.payload["valid"]),
        view_timeout=0.5,
    )
    requests = []
    for i in range(n_requests):
        # Even-numbered submissions are genuine, odd ones are garbage.
        requests.append(cluster.submit({"n": i, "valid": i % 2 == 0}))
    cluster.run(until=30.0)
    return cluster, requests


def describe(cluster, requests):
    log = {d.request.request_id: d for d in cluster.decided_log()}
    ok_accepted = sum(
        1 for r in requests if r.payload["valid"] and log.get(r.request_id) and log[r.request_id].accepted
    )
    bad_rejected = sum(
        1 for r in requests if not r.payload["valid"] and log.get(r.request_id) and not log[r.request_id].accepted
    )
    n_valid = sum(1 for r in requests if r.payload["valid"])
    n_invalid = len(requests) - n_valid
    print(f"    genuine data accepted : {ok_accepted}/{n_valid}")
    print(f"    garbage data rejected : {bad_rejected}/{n_invalid}")
    return log


def main() -> None:
    print(f"== Scenario 1: {N} honest validators ==")
    cluster, requests = run_cluster({})
    describe(cluster, requests)

    print(f"\n== Scenario 2: 1 corrupt validator endorses everything ==")
    cluster, requests = run_cluster({"validator-6": Behaviour.ALWAYS_VALID}, n_requests=12)
    log = describe(cluster, requests)

    print("    accountability pool processing the vote record…")
    pool = ValidatorPool(min_votes=3, flags_to_remove=2)
    for name in cluster.replica_names:
        pool.add_validator(name)
    for decision in sorted(log.values(), key=lambda d: d.seq):
        removed = pool.observe_decision(decision.accepted, decision.votes)
        for name in removed:
            print(f"    -> {name} REMOVED from the validator pool")
    print(f"    flagged: {pool.flagged() or 'none'}  removed: {pool.removed() or 'none'}")

    print(f"\n== Scenario 3: f=2 censoring validators (the tolerance bound) ==")
    cluster, requests = run_cluster({
        "validator-5": Behaviour.ALWAYS_INVALID,
        "validator-6": Behaviour.ALWAYS_INVALID,
    })
    describe(cluster, requests)

    print(f"\n== Scenario 4: 3 censoring validators (> f — past the bound) ==")
    cluster, requests = run_cluster({
        "validator-4": Behaviour.ALWAYS_INVALID,
        "validator-5": Behaviour.ALWAYS_INVALID,
        "validator-6": Behaviour.ALWAYS_INVALID,
    })
    describe(cluster, requests)
    print("    with more than a third corrupted, genuine data gets censored —")
    print("    exactly the bound the paper's design assumes.")


if __name__ == "__main__":
    main()
