#!/usr/bin/env python
"""Smart-city dashboard: aggregation, violations, and live ledger metrics.

The paper's stakeholders — urban planners, law enforcement, emergency
responders — consume summaries, not raw frames. This example batch-ingests
a multi-camera corpus with violation detection enabled, then renders the
analyst views: traffic volume per camera, confidence per vehicle class,
speeding citations, a time series, and the ledger's own health metrics
(the Grafana/Explorer substitution).

Run:  python examples/smart_city_dashboard.py
"""

from repro.core import BatchIngestor, Client, Framework, FrameworkConfig
from repro.fabric.monitor import ChannelMonitor, channel_summary
from repro.query import Avg, Count, Max, aggregate, explode, time_series
from repro.trust import SourceTier
from repro.vision import TrafficDataset, ViolationDetector, attach_violations
from repro.workloads.traffic import IngestItem, ingest_stream

N_CAMERAS = 4
FRAMES = 3


def build_items():
    """The ingest stream, enriched with speed-enforcement records."""
    dataset = TrafficDataset(seed=19, frames_per_video=FRAMES, n_videos=N_CAMERAS)
    detector = ViolationDetector(speed_limit_kmh=25.0)
    items = []
    base = list(ingest_stream(n_videos=N_CAMERAS, frames_per_video=FRAMES, seed=19))
    by_camera = {}
    for i in range(N_CAMERAS):
        clip = dataset.static_clip(i)
        by_camera[clip.camera_id] = detector.detect_clip(clip)
    frame_iter = iter(
        frame for i in range(N_CAMERAS) for frame in dataset.static_clip(i).frames
    )
    for item in base:
        frame = next(frame_iter)
        metadata = attach_violations(item.metadata, by_camera[item.source_id], frame.frame_id)
        items.append(IngestItem(item.source_id, item.payload, metadata, item.observation))
    return items


def print_block(title, table):
    print(f"\n== {title} ==")
    for key, metrics in table.items():
        cells = "  ".join(f"{name}={value:.3g}" if isinstance(value, float) else f"{name}={value}"
                          for name, value in metrics.items())
        print(f"  {str(key):<22} {cells}")


def main() -> None:
    framework = Framework(FrameworkConfig(consensus="bft", max_batch_size=16))
    monitor = ChannelMonitor(framework.channel)
    ingestor = BatchIngestor(framework, record_provenance=False)
    items = build_items()
    identity = None
    for source in sorted({i.source_id for i in items}):
        identity = framework.register_source(source, tier=SourceTier.TRUSTED)
        ingestor.register(identity)
    report = ingestor.ingest(items)
    print(f"ingested {report.committed} frames from {N_CAMERAS} cameras "
          f"({report.tx_per_s:.0f} tx/s, {report.blocks} blocks)")

    analyst = Client(framework, identity)
    records = [r.record for r in analyst.query("")]

    print_block(
        "Traffic volume per camera",
        aggregate(records, [Count("frames")], group_by="source_id"),
    )

    detections = explode(records, "metadata.detections")
    print_block(
        "Detections per vehicle class",
        aggregate(
            detections,
            [Count("n"), Avg("confidence", "avg_conf"), Max("confidence", "max_conf")],
            group_by="vehicle_class",
        ),
    )

    citations = explode(records, "metadata.violations")
    if citations:
        print_block(
            "Speed citations by vehicle class",
            aggregate(
                citations,
                [Count("citations"), Avg("measured", "avg_kmh"), Max("measured", "max_kmh")],
                group_by="vehicle_class",
            ),
        )

    print_block(
        "Frames over time (10-minute buckets)",
        time_series(records, [Count("frames")], bucket_s=600.0),
    )

    print("\n== Ledger health (Explorer view) ==")
    summary = channel_summary(framework.channel)
    print(f"  channel {summary['channel']!r} at height {summary['height']}; "
          f"tx outcomes: {summary['tx_by_code']}")
    for name, info in summary["peers"].items():
        print(f"  {name:<14} org={info['org']:<6} height={info['height']} "
              f"state_keys={info['state_keys']}")

    print("\n== Prometheus-style metrics (first lines) ==")
    for line in monitor.render().splitlines()[:8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
