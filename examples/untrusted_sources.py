#!/usr/bin/env python
"""Untrusted sources: trust scoring, cross-validation, and quarantine.

The paper's framework accepts crowd-sourced data (mobile users, social
platforms) alongside institutional sources, scoring the untrusted tier on
historical reliability, cross-validation against trusted records, and peer
endorsements (§III-A). This example runs three sources against one junction:

* a trusted camera providing ground truth,
* an honest mobile user whose reports match the camera,
* a fabricator whose reports contradict it,

and shows the fabricator's trust score collapse into quarantine while the
honest user's score climbs — all recorded on-chain.

Run:  python examples/untrusted_sources.py
"""

from repro.core import Client, Framework, FrameworkConfig
from repro.errors import UntrustedSourceError
from repro.trust import SourceTier
from repro.trust.crossval import Observation

JUNCTION = dict(lat=12.9716, lon=77.5946)


def main() -> None:
    framework = Framework(FrameworkConfig(consensus="bft"))
    camera = Client(framework, framework.register_source("junction-cam", tier=SourceTier.TRUSTED))
    honest = Client(framework, framework.register_source("mobile-honest"))
    liar = Client(framework, framework.register_source("mobile-fabricator"))

    print("== Sources ==")
    for source in ("junction-cam", "mobile-honest", "mobile-fabricator"):
        print(f"  {source:<18} tier={framework.trust.tier(source).value:<9} "
              f"score={framework.trust.score(source):.3f}")

    print("\n== 12 rounds of observations at the junction ==")
    print(f"  {'round':>5}  {'honest':>7}  {'fabricator':>10}")
    for round_no in range(12):
        t = 100.0 * round_no
        true_cars = 3 + round_no % 4

        # Camera reports ground truth.
        camera.submit(
            f"cam-frame-{round_no}".encode(),
            {"timestamp": t, "detections": []},
            observation=Observation("junction-cam", timestamp=t, counts={"car": true_cars}, **JUNCTION),
        )

        # Honest mobile agrees (within one vehicle).
        honest.submit(
            f"honest-photo-{round_no}".encode(),
            {"timestamp": t, "detections": []},
            observation=Observation("mobile-honest", timestamp=t, counts={"car": true_cars}, **JUNCTION),
        )

        # Fabricator reports phantom trucks and misses the cars. The
        # validators' cross-validation check votes it invalid.
        fabricated = Observation(
            "mobile-fabricator", timestamp=t, counts={"truck": 9, "car": 0}, **JUNCTION
        )
        cross = framework.trust.cross_validate(fabricated)
        try:
            receipt = liar.submit(
                f"fake-photo-{round_no}".encode(),
                {"timestamp": t, "detections": []},
                observation=fabricated,
            )
            # Consensus ordered it, but cross-validation drags the score.
            framework.trust.record_validation(
                "mobile-fabricator", accepted=cross > 0.5,
                valid_votes=int(cross > 0.5), invalid_votes=int(cross <= 0.5),
                observation=fabricated,
            )
        except UntrustedSourceError as exc:
            print(f"  {round_no:>5}  {framework.trust.score('mobile-honest'):>7.3f}  "
                  f"QUARANTINED ({exc})")
            break
        print(f"  {round_no:>5}  {framework.trust.score('mobile-honest'):>7.3f}  "
              f"{framework.trust.score('mobile-fabricator'):>10.3f}")

    print("\n== Final state ==")
    for source in ("mobile-honest", "mobile-fabricator"):
        tier = framework.trust.tier(source)
        print(f"  {source:<18} tier={tier.value:<12} score={framework.trust.score(source):.3f}")

    print("\n== On-chain trust trajectory of the fabricator ==")
    import json

    history = json.loads(
        framework.channel.query(
            framework.admin, "trust_score", "score_history", ["mobile-fabricator"]
        )
    )
    trajectory = " -> ".join(f"{h['score']:.2f}" for h in history)
    print(f"  {trajectory}")

    print("\n== Quarantined source attempts another submission ==")
    try:
        liar.submit(b"one-more-try", {"timestamp": 9999.0, "detections": []})
        print("  unexpectedly accepted!")
    except UntrustedSourceError as exc:
        print(f"  rejected as designed: {exc}")

    print("\n== Release path: corroborated accepts under supervision ==")
    for _ in range(60):
        framework.trust.record_corroborated_accept("mobile-fabricator", cross_validation=0.9)
        if framework.trust.tier("mobile-fabricator") is SourceTier.UNTRUSTED:
            break
    print(f"  after corroborated accepts: tier="
          f"{framework.trust.tier('mobile-fabricator').value}, "
          f"score={framework.trust.score('mobile-fabricator'):.3f}")


if __name__ == "__main__":
    main()
