#!/usr/bin/env python
"""Quickstart: store and retrieve one data item through the full framework.

Walks the paper's Figure 1 once: stand up the network (2 orgs, BFT
validators, 2 IPFS nodes), register a source, submit data (signature →
trust gate → IPFS → metadata on-chain via BFT consensus), then query it
back with integrity verification and inspect its provenance.

Run:  python examples/quickstart.py
"""

from repro.core import Client, Framework, FrameworkConfig
from repro.trust import SourceTier


def main() -> None:
    print("== Standing up the framework (paper testbed shape) ==")
    framework = Framework(
        FrameworkConfig(consensus="bft", n_validators=4, n_ipfs_nodes=2)
    )
    print(f"  channel: {framework.channel.name!r}, "
          f"peers: {sorted(framework.channel.peers)}, "
          f"ipfs nodes: {framework.ipfs.peer_ids()}")

    print("\n== Registering a trusted traffic camera ==")
    identity = framework.register_source("camera-mg-road", tier=SourceTier.TRUSTED)
    camera = Client(framework, identity)
    print(f"  registered {identity.name!r} in org {identity.org!r}")

    print("\n== Submitting a data item (store path ①–⑦) ==")
    payload = b"\x00" * 4096  # stands in for a video frame
    metadata = {
        "timestamp": 1700000000.0,
        "camera_id": "camera-mg-road",
        "location": {"lat": 12.9758, "lon": 77.6096},
        "detections": [
            {"vehicle_class": "car", "confidence": 0.94, "color": "white"},
            {"vehicle_class": "two-wheeler", "confidence": 0.88, "color": "black"},
        ],
    }
    receipt = camera.submit(payload, metadata)
    print(f"  entry id : {receipt.entry_id[:16]}…")
    print(f"  CID      : {receipt.cid}")
    print(f"  committed: block {receipt.block_number}, {receipt.validation_code.value}")

    print("\n== Retrieving it back (retrieval path Ⓐ–Ⓓ) ==")
    result = camera.retrieve(receipt.entry_id)
    print(f"  bytes fetched from IPFS : {len(result.data)}")
    print(f"  integrity verified      : {result.verified}")
    print(f"  on-chain detections     : {len(result.record['metadata']['detections'])}")

    print("\n== Querying metadata (no consensus cost on reads) ==")
    query_text = "vehicle_class = 'car' ORDER BY metadata.timestamp"
    rows = camera.query(query_text)
    plan = camera.engine.plan(query_text).explain()
    print(f"  query matched {len(rows)} record(s); plan: {plan}")

    print("\n== Provenance ==")
    for event in camera.provenance(receipt.entry_id):
        print(f"  seq {event['seq']}: {event['action']:<9} by {event['actor']}  "
              f"hash {event['entry_hash'][:12]}…")
    check = camera.verify_provenance(receipt.entry_id)
    print(f"  chain verified: {check['length']} linked events")

    print("\nDone: data off-chain in IPFS, metadata + provenance on-chain.")


if __name__ == "__main__":
    main()
