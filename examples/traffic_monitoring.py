#!/usr/bin/env python
"""Traffic monitoring: the paper's motivating smart-city scenario.

A city runs static cameras and a drone over its road network (the
IUDX-like synthetic dataset). Each frame goes through the vision pipeline
(simulated YOLO detection → Figure-2 metadata) and into the framework:
pixels to IPFS, metadata to the blockchain. A law-enforcement analyst then
queries the on-chain index — "which frames show trucks around 10-minute
window X?" — and pulls the matching raw frames with integrity verification.

Run:  python examples/traffic_monitoring.py
"""

from collections import Counter

from repro.core import Client, Framework, FrameworkConfig
from repro.trust import SourceTier
from repro.vision import TrafficDataset

N_CAMERAS = 4
FRAMES_PER_CAMERA = 3


def main() -> None:
    print("== City deployment: cameras + drone over the blockchain framework ==")
    framework = Framework(FrameworkConfig(consensus="bft", chunk_size=32 * 1024))
    dataset = TrafficDataset(seed=7, frames_per_video=FRAMES_PER_CAMERA,
                             n_videos=N_CAMERAS + 1)

    # Register each capture device as a trusted-tier source.
    clients: dict[str, Client] = {}
    for i in range(N_CAMERAS):
        clip = dataset.static_clip(i)
        identity = framework.register_source(clip.camera_id, tier=SourceTier.TRUSTED)
        clients[clip.camera_id] = Client(framework, identity)
    drone_clip = dataset.drone_clip(0)
    drone_identity = framework.register_source(drone_clip.camera_id, tier=SourceTier.TRUSTED)
    clients[drone_clip.camera_id] = Client(framework, drone_identity)

    print(f"  registered sources: {sorted(clients)}")

    print("\n== Ingesting frames (detect → extract → IPFS + chain) ==")
    receipts = []
    detection_counter: Counter[str] = Counter()
    clips = [dataset.static_clip(i) for i in range(N_CAMERAS)] + [drone_clip]
    for clip in clips:
        client = clients[clip.camera_id]
        for frame in clip.frames:
            receipt = client.submit_frame(frame)
            receipts.append(receipt)
            record = client.get_metadata(receipt.entry_id)
            for det in record["metadata"]["detections"]:
                detection_counter[det["vehicle_class"]] += 1
    print(f"  ingested {len(receipts)} frames "
          f"({framework.channel.height()} blocks on-chain)")
    print(f"  vehicles detected: {dict(detection_counter)}")

    analyst = clients[drone_clip.camera_id]  # any registered identity can query

    print("\n== Analyst query 1: all truck sightings ==")
    truck_query = "vehicle_class = 'truck' ORDER BY metadata.timestamp"
    rows = analyst.query(truck_query)
    print(f"  plan: {analyst.engine.plan(truck_query).explain()}")
    for row in rows[:5]:
        meta = row.record["metadata"]
        trucks = [d for d in meta["detections"] if d["vehicle_class"] == "truck"]
        print(f"  {meta['camera_id']:<10} t={meta['timestamp']:>8.1f}  "
              f"trucks={len(trucks)}  best-conf={max(d['confidence'] for d in trucks):.2f}")

    print("\n== Analyst query 2: one camera's window, with raw frames ==")
    cam_id = dataset.static_clip(0).camera_id
    rows = analyst.query(f"source_id = '{cam_id}' ORDER BY metadata.timestamp", fetch_data=True)
    total_bytes = sum(len(r.data or b"") for r in rows)
    print(f"  {len(rows)} frames from {cam_id}; {total_bytes} raw bytes fetched "
          f"from IPFS, all integrity-verified: {all(r.verified for r in rows)}")

    print("\n== Static vs drone confidence (the Figure 3 effect) ==")
    for kind in ("static", "drone"):
        rows = analyst.query(f"metadata.source_kind = '{kind}'")
        confs = [
            d["confidence"]
            for r in rows
            for d in r.record["metadata"]["detections"]
        ]
        if confs:
            mean = sum(confs) / len(confs)
            print(f"  {kind:<7} n={len(confs):>3}  mean confidence {mean:.3f}")

    print("\n== Ledger audit ==")
    for name, peer in framework.channel.peers.items():
        peer.ledger.verify_chain()
    print(f"  every peer's hash chain verified at height {framework.channel.height()}")


if __name__ == "__main__":
    main()
